"""Linkage execution backends and the chunked job driver.

Three interchangeable :class:`LinkageRunner` backends score a chunk's
pairs with the private T² protocol:

* :class:`SerialLinkageRunner` — pair-at-a-time in this process (the
  baseline the benchmark measures chunked throughput against);
* :class:`EngineLinkageRunner` — a
  :class:`~repro.engine.engine.ProtocolEngine` worker fleet, kept alive
  across chunks and settled per chunk via :meth:`ProtocolEngine.sync`;
* :class:`ServiceLinkageRunner` — a
  :class:`~repro.net.service.TrainerClientPool` fanning sessions out to
  a remote :class:`~repro.net.service.TrainerServer` hosting the left
  collection (protocol v2 pipelines the window).

All three produce **bit-identical** scores for a given spec: the
per-pair protocol seed is a pure function of record keys
(:meth:`~repro.linkage.spec.LinkageJobSpec.pair_seed`), never of job
ids, scheduling, or transport.

:func:`run_linkage` drives a spec through a runner against a
:class:`~repro.linkage.store.LinkageResultStore`: completed chunks are
skipped on resume, damaged files are quarantined and recomputed,
threshold filtering is applied *before* a chunk is persisted (only
survivors materialize), and top-k is applied per left record at
finalize over the stored survivors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.similarity import (
    evaluate_similarity_private,
    evaluate_similarity_private_nonlinear,
)
from repro.engine.engine import EnginePolicy, ProtocolEngine
from repro.exceptions import (
    BatchItemError,
    LinkageError,
    ResultStoreCorruption,
)
from repro.linkage.spec import LinkageChunk, LinkageJobSpec
from repro.linkage.store import LinkageResultStore, PairScore


class LinkageRunner:
    """One strategy for scoring a chunk's pairs.

    Lifecycle: :meth:`prepare` once per job, :meth:`run_chunk` per
    chunk, :meth:`close` once at the end (also on error paths —
    :func:`run_linkage` guarantees it).  ``run_chunk`` returns scores
    in the chunk's ``right_keys`` order, unfiltered; the driver owns
    filtering and persistence.
    """

    def prepare(self, spec: LinkageJobSpec) -> None:
        pass

    def run_chunk(
        self, spec: LinkageJobSpec, chunk: LinkageChunk
    ) -> List[PairScore]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "LinkageRunner":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


class SerialLinkageRunner(LinkageRunner):
    """Pair-at-a-time scoring in the calling process (the baseline)."""

    def run_chunk(
        self, spec: LinkageJobSpec, chunk: LinkageChunk
    ) -> List[PairScore]:
        left = spec.left[chunk.left_key]
        scores = []
        for right_key in chunk.right_keys:
            right = spec.right[right_key]
            evaluate = (
                evaluate_similarity_private
                if left.is_linear()
                else evaluate_similarity_private_nonlinear
            )
            outcome = evaluate(
                left,
                right,
                spec.params,
                config=spec.config,
                seed=spec.pair_seed(chunk.left_key, right_key),
            )
            scores.append(
                PairScore.from_outcome(
                    chunk.left_key, right_key, outcome.t, outcome.t_squared
                )
            )
        return scores


class EngineLinkageRunner(LinkageRunner):
    """Chunked scoring over a :class:`ProtocolEngine` worker fleet.

    The fleet hosts the *entire left collection* (keyed models in the
    worker spec) and stays alive across chunks; each chunk submits one
    similarity job per pair — seed pinned to the spec's per-pair seed,
    ``left_key`` selecting the model, ``tag`` carrying the right key —
    and settles with :meth:`ProtocolEngine.sync`.  :meth:`close` drains
    the fleet so worker metrics merge into the active registry.
    """

    def __init__(
        self,
        workers: int = 2,
        pool_size: int = 16,
        queue_capacity: int = 64,
        policy: Optional[EnginePolicy] = None,
        seed: int = 0,
    ) -> None:
        self.workers = workers
        self.pool_size = pool_size
        self.queue_capacity = queue_capacity
        self.policy = policy
        self.seed = seed
        self._engine: Optional[ProtocolEngine] = None

    def prepare(self, spec: LinkageJobSpec) -> None:
        self._engine = ProtocolEngine(
            models=spec.left,
            config=spec.config,
            workers=self.workers,
            pool_size=self.pool_size,
            queue_capacity=self.queue_capacity,
            policy=self.policy,
            seed=self.seed,
            params=spec.params,
        ).start()

    def run_chunk(
        self, spec: LinkageJobSpec, chunk: LinkageChunk
    ) -> List[PairScore]:
        if self._engine is None:
            raise LinkageError("runner is not prepared (no engine fleet)")
        submitted: Dict[int, str] = {}
        for right_key in chunk.right_keys:
            job_id = self._engine.submit_similarity(
                spec.right[right_key],
                seed=spec.pair_seed(chunk.left_key, right_key),
                left_key=chunk.left_key,
                tag=right_key,
            )
            submitted[job_id] = right_key
        by_right: Dict[str, PairScore] = {}
        for result in self._engine.sync():
            right_key = submitted.get(result.job_id)
            if right_key is None:  # pragma: no cover - defensive
                raise LinkageError(
                    f"chunk {chunk.chunk_id}: engine returned unknown "
                    f"job {result.job_id}"
                )
            if not result.ok:
                raise LinkageError(
                    f"chunk {chunk.chunk_id} pair "
                    f"({chunk.left_key!r}, {right_key!r}): {result.error}"
                )
            by_right[right_key] = PairScore.from_outcome(
                chunk.left_key, right_key, result.t, result.t_squared
            )
        return [by_right[right_key] for right_key in chunk.right_keys]

    def close(self) -> None:
        if self._engine is None:
            return
        engine, self._engine = self._engine, None
        try:
            if not engine._closed:
                engine.drain()
        finally:
            engine.close()


class ServiceLinkageRunner(LinkageRunner):
    """Chunked scoring through a :class:`TrainerClientPool`.

    The remote :class:`~repro.net.service.TrainerServer` must host the
    spec's left collection under the same keys (``models=``); each
    chunk fans one batch out with ``server_models`` pinning the left
    key and per-pair seeds pinning the protocol randomness.  The pool
    is caller-owned: :meth:`close` leaves it open unless
    ``owns_pool=True``.
    """

    def __init__(self, pool, owns_pool: bool = False) -> None:
        self._pool = pool
        self._owns_pool = owns_pool

    def run_chunk(
        self, spec: LinkageJobSpec, chunk: LinkageChunk
    ) -> List[PairScore]:
        right_models = [spec.right[key] for key in chunk.right_keys]
        seeds = [
            spec.pair_seed(chunk.left_key, key) for key in chunk.right_keys
        ]
        outcomes = self._pool.evaluate_similarity_many(
            right_models,
            seeds=seeds,
            server_models=[chunk.left_key] * len(right_models),
            return_errors=True,
        )
        scores = []
        for right_key, outcome in zip(chunk.right_keys, outcomes):
            if isinstance(outcome, BatchItemError):
                raise LinkageError(
                    f"chunk {chunk.chunk_id} pair "
                    f"({chunk.left_key!r}, {right_key!r}): {outcome}"
                ) from outcome
            scores.append(
                PairScore.from_outcome(
                    chunk.left_key, right_key, outcome.t, outcome.t_squared
                )
            )
        return scores

    def close(self) -> None:
        if self._owns_pool:
            self._pool.close()


@dataclass(frozen=True)
class LinkageReport:
    """What one :func:`run_linkage` invocation did and found."""

    #: The final filtered pair set, sorted by ``(left, T², right)``.
    matches: Tuple[PairScore, ...]
    pairs_total: int
    pairs_scored: int
    chunks_total: int
    chunks_computed: int
    chunks_resumed: int
    chunks_quarantined: int
    corrupt: Tuple[ResultStoreCorruption, ...]
    elapsed_s: float

    @property
    def pairs_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.pairs_scored / self.elapsed_s

    def summary(self) -> dict:
        return {
            "matches": len(self.matches),
            "pairs_total": self.pairs_total,
            "pairs_scored": self.pairs_scored,
            "chunks_total": self.chunks_total,
            "chunks_computed": self.chunks_computed,
            "chunks_resumed": self.chunks_resumed,
            "chunks_quarantined": self.chunks_quarantined,
            "elapsed_s": self.elapsed_s,
            "pairs_per_second": self.pairs_per_second,
        }


def _threshold_filter(
    spec: LinkageJobSpec, scores: List[PairScore]
) -> List[PairScore]:
    if spec.threshold is None:
        return scores
    return [score for score in scores if score.t <= spec.threshold]


def _finalize(
    spec: LinkageJobSpec, store: LinkageResultStore
) -> Tuple[PairScore, ...]:
    """Merge stored survivors into the final filtered pair set.

    Top-k runs here, per left record over *all* its chunks (a chunk
    only sees one contiguous right block, so per-chunk top-k would be
    wrong).  Ordering uses the exact ``T²`` fraction, not the float
    ``T``, so ties break identically everywhere.
    """
    per_left: Dict[str, List[PairScore]] = {}
    for chunk in spec.chunks():
        for score in store.load_chunk(chunk.chunk_id):
            per_left.setdefault(score.left, []).append(score)
    matches: List[PairScore] = []
    for left_key in spec.left_keys:
        candidates = per_left.get(left_key, [])
        candidates.sort(key=lambda s: (s.t_squared, s.right))
        if spec.top_k is not None:
            candidates = candidates[: spec.top_k]
        matches.extend(candidates)
    return tuple(matches)


def run_linkage(
    spec: LinkageJobSpec,
    runner: LinkageRunner,
    store,
    resume: bool = True,
) -> LinkageReport:
    """Drive a linkage spec through a runner against a result store.

    ``store`` is a directory path or an open
    :class:`LinkageResultStore`; its manifest must carry this spec's
    fingerprint (a fresh directory is initialised, a mismatched one is
    refused).  With ``resume=True`` (the default) chunks whose files
    verify complete are **not recomputed** — their stored scores feed
    the final set directly — and damaged files are quarantined with a
    typed record in ``report.corrupt``, then recomputed.
    """
    if not isinstance(store, LinkageResultStore):
        store = LinkageResultStore(store, spec.fingerprint())
    elif store.fingerprint != spec.fingerprint():
        raise LinkageError(
            "store was opened with a different spec fingerprint"
        )
    chunks = spec.chunks()
    scan = (
        store.scan(chunk.chunk_id for chunk in chunks)
        if resume
        else None
    )
    completed = set(scan.completed) if scan else set()
    corrupt = scan.corrupt if scan else ()

    started = time.perf_counter()
    pairs_scored = 0
    chunks_computed = 0
    runner.prepare(spec)
    try:
        for chunk in chunks:
            if chunk.chunk_id in completed:
                continue
            scores = runner.run_chunk(spec, chunk)
            if len(scores) != chunk.pairs:  # pragma: no cover - defensive
                raise LinkageError(
                    f"chunk {chunk.chunk_id}: runner returned "
                    f"{len(scores)} scores for {chunk.pairs} pairs"
                )
            store.write_chunk(chunk.chunk_id, _threshold_filter(spec, scores))
            pairs_scored += chunk.pairs
            chunks_computed += 1
    finally:
        runner.close()
    elapsed = time.perf_counter() - started

    matches = _finalize(spec, store)
    metrics = obs.get_metrics()
    if metrics.enabled:
        pairs_counter = metrics.counter(
            "repro_linkage_pairs_total",
            "Similarity pairs scored by the linkage pipeline",
        )
        if pairs_scored:
            pairs_counter.inc(pairs_scored)
        chunk_counter = metrics.counter(
            "repro_linkage_chunks_total",
            "Linkage chunks by disposition",
        )
        if chunks_computed:
            chunk_counter.inc(chunks_computed, status="computed")
        if completed:
            chunk_counter.inc(len(completed), status="resumed")
        if corrupt:
            chunk_counter.inc(len(corrupt), status="quarantined")
        metrics.gauge(
            "repro_linkage_matches",
            "Surviving pairs in the final filtered set",
        ).set(len(matches))

    return LinkageReport(
        matches=matches,
        pairs_total=spec.total_pairs,
        pairs_scored=pairs_scored,
        chunks_total=len(chunks),
        chunks_computed=chunks_computed,
        chunks_resumed=len(completed),
        chunks_quarantined=len(corrupt),
        corrupt=corrupt,
        elapsed_s=elapsed,
    )
