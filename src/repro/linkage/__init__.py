"""Bulk linkage: chunked N×M private similarity with a resumable store.

The pipeline links two keyed model collections (e.g. PPRL record
encodings trained as SVM models) by scoring every left×right pair with
the private T² protocol, in deterministic chunks, against an on-disk
result store that survives hard crashes:

* :mod:`repro.linkage.spec` — :class:`LinkageJobSpec`: the chunk plan,
  per-pair seeds, and the spec fingerprint, all pure functions of the
  keyed inputs;
* :mod:`repro.linkage.store` — :class:`LinkageResultStore`: canonical
  per-chunk JSONL with done markers; resume skips verified chunks and
  quarantines damaged ones;
* :mod:`repro.linkage.runner` — :func:`run_linkage` over
  interchangeable backends (serial baseline, engine worker fleet, TCP
  client pool), all bit-identical.
"""

from repro.linkage.runner import (
    EngineLinkageRunner,
    LinkageReport,
    LinkageRunner,
    SerialLinkageRunner,
    ServiceLinkageRunner,
    run_linkage,
)
from repro.linkage.spec import LinkageChunk, LinkageJobSpec
from repro.linkage.store import LinkageResultStore, PairScore, StoreScan

__all__ = [
    "EngineLinkageRunner",
    "LinkageChunk",
    "LinkageJobSpec",
    "LinkageReport",
    "LinkageResultStore",
    "LinkageRunner",
    "PairScore",
    "SerialLinkageRunner",
    "ServiceLinkageRunner",
    "StoreScan",
    "run_linkage",
]
