"""Crash-resumable on-disk result store for bulk linkage jobs.

Layout (one directory per job)::

    store/
      manifest.json          # {"version": 1, "fingerprint": <spec digest>}
      chunks/<chunk_id>.jsonl
      quarantine/            # damaged chunk files, moved aside on resume

Each chunk file is **append-only JSONL in canonical encoding**: one
line per surviving pair (``json.dumps(..., sort_keys=True,
separators=(",", ":"))``, the exact ``T²`` as an integer
numerator/denominator pair so no backend-dependent rounding can creep
in), terminated by a *done marker* line carrying the chunk id and the
pair count.  A chunk counts as completed **iff** its done marker is
present and consistent; anything else — a truncated tail from a hard
kill mid-write, a corrupted line, a count mismatch — is quarantined
with a typed :class:`~repro.exceptions.ResultStoreCorruption` recorded
in the scan report (never raised mid-resume) and the chunk is simply
recomputed.  Because pair values are pure functions of the spec (see
:mod:`repro.linkage.spec`), a recomputed chunk file is byte-identical
to the one an uninterrupted run would have written.

The manifest pins the spec fingerprint: resuming a store with a
different spec raises :class:`~repro.exceptions.ResultStoreError`
instead of silently mixing incompatible scores.

Fault injection: ``REPRO_LINKAGE_CRASH_AFTER_LINES=<n>`` makes
:meth:`LinkageResultStore.write_chunk` hard-kill the process (SIGKILL,
uncatchable) after persisting ``n`` pair lines *cumulatively across
chunks* — chunks sealed before the budget runs out stay complete, the
chunk in flight is left deterministically truncated.  The
crash-recovery suite and the resume benchmark drive a ``repro link``
subprocess with it.
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro import obs
from repro.exceptions import ResultStoreCorruption, ResultStoreError

#: Environment hook: hard-kill the process after this many pair lines
#: have been flushed to the first chunk written (crash tests only).
CRASH_ENV = "REPRO_LINKAGE_CRASH_AFTER_LINES"

_MANIFEST = "manifest.json"
_CHUNK_SUFFIX = ".jsonl"


@dataclass(frozen=True)
class PairScore:
    """One scored pair: the exact ``T²`` plus its float ``T``."""

    left: str
    right: str
    t: float
    t2_num: int
    t2_den: int

    @classmethod
    def from_outcome(
        cls, left: str, right: str, t: float, t_squared
    ) -> "PairScore":
        exact = Fraction(t_squared)
        return cls(
            left=left,
            right=right,
            t=float(t),
            t2_num=exact.numerator,
            t2_den=exact.denominator,
        )

    @property
    def t_squared(self) -> Fraction:
        return Fraction(self.t2_num, self.t2_den)

    def encode(self) -> str:
        """The canonical JSONL line for this pair (no newline)."""
        return json.dumps(
            {
                "left": self.left,
                "right": self.right,
                "t": self.t,
                "t2": [self.t2_num, self.t2_den],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def decode(cls, line: str) -> "PairScore":
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError(f"pair line is not an object: {line!r}")
        t2 = record["t2"]
        if (
            not isinstance(t2, list)
            or len(t2) != 2
            or not all(isinstance(v, int) for v in t2)
        ):
            raise ValueError(f"pair line has a malformed 't2': {line!r}")
        if not isinstance(record["left"], str) or not isinstance(
            record["right"], str
        ):
            raise ValueError(f"pair line has malformed keys: {line!r}")
        return cls(
            left=record["left"],
            right=record["right"],
            t=float(record["t"]),
            t2_num=t2[0],
            t2_den=t2[1],
        )


def _done_marker(chunk_id: str, pairs: int) -> str:
    return json.dumps(
        {"chunk": chunk_id, "done": True, "pairs": pairs},
        sort_keys=True,
        separators=(",", ":"),
    )


@dataclass(frozen=True)
class StoreScan:
    """What a resume found on disk."""

    #: Chunk id → surviving-pair count, for every verified-complete chunk.
    completed: Dict[str, int]
    #: Typed record of every damaged file that was quarantined.
    corrupt: Tuple[ResultStoreCorruption, ...]


class LinkageResultStore:
    """One job's result directory (see module docstring for layout)."""

    def __init__(self, root, fingerprint: str) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint
        self._chunks_dir = self.root / "chunks"
        self._quarantine_dir = self.root / "quarantine"
        self.root.mkdir(parents=True, exist_ok=True)
        self._chunks_dir.mkdir(exist_ok=True)
        manifest_path = self.root / _MANIFEST
        if manifest_path.exists():
            try:
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError) as error:
                raise ResultStoreError(
                    f"unreadable store manifest {manifest_path}: {error}"
                ) from error
            recorded = (
                manifest.get("fingerprint")
                if isinstance(manifest, dict)
                else None
            )
            if recorded != fingerprint:
                raise ResultStoreError(
                    f"store at {self.root} was written by a different "
                    f"linkage spec (manifest fingerprint {recorded!r}, "
                    f"this spec {fingerprint!r}); refusing to mix results"
                )
        else:
            document = {"version": 1, "fingerprint": fingerprint}
            with open(manifest_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True, indent=2)
                handle.write("\n")

    # -- paths --------------------------------------------------------------

    def chunk_path(self, chunk_id: str) -> Path:
        return self._chunks_dir / f"{chunk_id}{_CHUNK_SUFFIX}"

    # -- writing ------------------------------------------------------------

    def write_chunk(self, chunk_id: str, scores: Iterable[PairScore]) -> Path:
        """Persist one completed chunk (truncating any partial file).

        Lines are appended in score order and the done marker seals the
        file; the content is a pure function of ``(chunk_id, scores)``,
        so recomputing a chunk rewrites identical bytes.
        """
        path = self.chunk_path(chunk_id)
        with open(path, "w", encoding="utf-8") as handle:
            written = 0
            for score in scores:
                handle.write(score.encode() + "\n")
                written += 1
                if _crash_tick():
                    handle.flush()
                    os.fsync(handle.fileno())
                    os.kill(os.getpid(), signal.SIGKILL)
            handle.write(_done_marker(chunk_id, written) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return path

    # -- reading ------------------------------------------------------------

    def load_chunk(self, chunk_id: str) -> List[PairScore]:
        """The surviving pairs of one verified-complete chunk."""
        scores, _ = self._read_chunk_file(self.chunk_path(chunk_id), chunk_id)
        return scores

    def read_chunk_bytes(self, chunk_id: str) -> bytes:
        return self.chunk_path(chunk_id).read_bytes()

    def scan(self, expected_chunk_ids: Iterable[str]) -> StoreScan:
        """Verify every expected chunk file; quarantine the damaged ones.

        Corruption — a missing or inconsistent done marker, an
        unparseable line — never crashes the resume: the file moves to
        ``quarantine/``, a typed error is recorded (and counted under
        ``repro_linkage_store_corruptions_total``), and the chunk is
        treated as not-yet-computed.
        """
        completed: Dict[str, int] = {}
        corrupt: List[ResultStoreCorruption] = []
        for chunk_id in expected_chunk_ids:
            path = self.chunk_path(chunk_id)
            if not path.exists():
                continue
            try:
                scores, pairs = self._read_chunk_file(path, chunk_id)
            except ResultStoreCorruption as error:
                self._quarantine(path, error)
                corrupt.append(error)
                continue
            completed[chunk_id] = pairs
        return StoreScan(completed=completed, corrupt=tuple(corrupt))

    def _read_chunk_file(
        self, path: Path, chunk_id: str
    ) -> Tuple[List[PairScore], int]:
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ResultStoreCorruption(
                chunk_id, f"unreadable chunk file: {error}"
            ) from error
        if not raw.endswith("\n"):
            raise ResultStoreCorruption(
                chunk_id, "truncated chunk file (no trailing newline)"
            )
        lines = raw.splitlines()
        if not lines:
            raise ResultStoreCorruption(chunk_id, "empty chunk file")
        if lines[-1] != _done_marker(chunk_id, len(lines) - 1):
            raise ResultStoreCorruption(
                chunk_id,
                "missing or inconsistent done marker (interrupted write?)",
            )
        scores: List[PairScore] = []
        for number, line in enumerate(lines[:-1], start=1):
            try:
                scores.append(PairScore.decode(line))
            except (ValueError, KeyError, ZeroDivisionError) as error:
                raise ResultStoreCorruption(
                    chunk_id, f"corrupt pair line {number}: {error}"
                ) from error
        return scores, len(scores)

    def _quarantine(self, path: Path, error: ResultStoreCorruption) -> None:
        self._quarantine_dir.mkdir(exist_ok=True)
        target = self._quarantine_dir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self._quarantine_dir / f"{path.name}.{suffix}"
        os.replace(path, target)
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_linkage_store_corruptions_total",
                "Damaged linkage chunk files quarantined on resume",
            ).inc()


#: Lazily-armed line budget for the crash hook; ``None`` = not read
#: yet, ``-1`` = disarmed.  Module-global so the countdown spans every
#: chunk written by the process.
_CRASH_STATE = {"remaining": None}


def _crash_tick() -> bool:
    """Count one persisted pair line; ``True`` means die *right now*."""
    remaining = _CRASH_STATE["remaining"]
    if remaining is None:
        raw = os.environ.get(CRASH_ENV)
        try:
            remaining = int(raw) if raw else -1
        except ValueError:
            remaining = -1
        if remaining <= 0:
            remaining = -1
        _CRASH_STATE["remaining"] = remaining
    if remaining < 0:
        return False
    remaining -= 1
    _CRASH_STATE["remaining"] = remaining
    return remaining == 0
