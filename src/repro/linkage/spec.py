"""Deterministic chunking for bulk N×M similarity (record linkage).

A :class:`LinkageJobSpec` names two keyed model collections — ``left``
(the trainer/Alice side, e.g. a hosted population) and ``right`` (the
querying/Bob side) — and fixes every parameter the N×M similarity
matrix depends on.  From the spec alone, independent of process,
backend, or restart, the following are all pure functions of the keyed
inputs:

* the **chunk plan** (:meth:`LinkageJobSpec.chunks`): left and right
  keys in sorted order, one chunk per ``(left key, contiguous right
  block)`` of at most ``chunk_pairs`` pairs, with a chunk id hashed
  from the member keys — stable ids are what let a resumed run skip
  completed chunks;
* the **per-pair protocol seed** (:meth:`LinkageJobSpec.pair_seed`):
  ``derive_seed(spec seed, "linkage", left key, right key)``, a pure
  function of record keys (never of job ids or scheduling), so the
  engine backend, the TCP backend, and a resumed run all produce
  bit-identical outcomes for every pair;
* the **spec fingerprint** (:meth:`LinkageJobSpec.fingerprint`): a
  digest over the model documents and every scoring parameter, written
  into the result store's manifest so a resume against a store built
  by a *different* job is refused loudly.

Filtering semantics follow the T² metric's orientation: ``t`` is a
distance (smaller = more similar — :mod:`repro.core.similarity.matching`
takes the argmin), so ``threshold`` keeps pairs with ``t <= threshold``
and ``top_k`` keeps the ``k`` *smallest*-``t`` pairs per left record.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.ompe import OMPEConfig
from repro.core.similarity.metric import MetricParams
from repro.exceptions import ValidationError
from repro.ml.svm.model import SVMModel
from repro.ml.svm.persistence import model_to_dict
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class LinkageChunk:
    """One schedulable unit: one left record × a block of right records."""

    chunk_id: str
    left_key: str
    right_keys: Tuple[str, ...]

    @property
    def pairs(self) -> int:
        return len(self.right_keys)


def _chunk_id(left_key: str, right_keys: Tuple[str, ...]) -> str:
    """A stable, filesystem-safe id hashed from the member keys."""
    material = "\x1f".join((left_key,) + right_keys)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def _validate_collection(name: str, collection: Mapping[str, SVMModel]) -> Dict[str, SVMModel]:
    if not collection:
        raise ValidationError(f"the {name} collection must not be empty")
    validated: Dict[str, SVMModel] = {}
    for key, model in collection.items():
        if not isinstance(key, str) or not key:
            raise ValidationError(
                f"{name} keys must be non-empty strings, got {key!r}"
            )
        if not isinstance(model, SVMModel):
            raise ValidationError(
                f"{name}[{key!r}] must be an SVMModel, got {model!r}"
            )
        validated[key] = model
    return validated


class LinkageJobSpec:
    """An N×M bulk similarity job over two keyed model collections."""

    def __init__(
        self,
        left: Mapping[str, SVMModel],
        right: Mapping[str, SVMModel],
        chunk_pairs: int = 128,
        threshold: Optional[float] = None,
        top_k: Optional[int] = None,
        seed: int = 0,
        params: Optional[MetricParams] = None,
        config: Optional[OMPEConfig] = None,
    ) -> None:
        if chunk_pairs < 1:
            raise ValidationError(
                f"chunk_pairs must be at least 1, got {chunk_pairs}"
            )
        if threshold is not None and threshold < 0:
            raise ValidationError(
                f"threshold must be non-negative, got {threshold}"
            )
        if top_k is not None and top_k < 1:
            raise ValidationError(f"top_k must be at least 1, got {top_k}")
        self.left = _validate_collection("left", left)
        self.right = _validate_collection("right", right)
        linear = {m.is_linear() for m in self.left.values()}
        linear |= {m.is_linear() for m in self.right.values()}
        if len(linear) != 1:
            raise ValidationError(
                "all linked models must be of one family (all linear or "
                "all kernel): the similarity protocol compares like with like"
            )
        self.chunk_pairs = chunk_pairs
        self.threshold = threshold
        self.top_k = top_k
        self.seed = seed
        self.params = params or MetricParams()
        self.config = config or OMPEConfig()
        self.left_keys: Tuple[str, ...] = tuple(sorted(self.left))
        self.right_keys: Tuple[str, ...] = tuple(sorted(self.right))

    # -- plan ---------------------------------------------------------------

    @property
    def total_pairs(self) -> int:
        return len(self.left) * len(self.right)

    def chunks(self) -> Tuple[LinkageChunk, ...]:
        """The deterministic chunk plan, in execution order."""
        plan = []
        for left_key in self.left_keys:
            for start in range(0, len(self.right_keys), self.chunk_pairs):
                block = self.right_keys[start : start + self.chunk_pairs]
                plan.append(
                    LinkageChunk(
                        chunk_id=_chunk_id(left_key, block),
                        left_key=left_key,
                        right_keys=block,
                    )
                )
        return tuple(plan)

    def pair_seed(self, left_key: str, right_key: str) -> int:
        """The protocol seed for one pair — a pure function of keys."""
        return derive_seed(self.seed, "linkage", left_key, right_key)

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> str:
        """A digest of everything the scored matrix depends on.

        Two specs share a fingerprint iff they produce byte-identical
        result stores, so the store manifest records it and a resume
        under any other spec is refused.
        """
        group = self.config.resolved_group()
        document = {
            "version": 1,
            "left": {k: model_to_dict(m) for k, m in self.left.items()},
            "right": {k: model_to_dict(m) for k, m in self.right.items()},
            "chunk_pairs": self.chunk_pairs,
            "threshold": self.threshold,
            "top_k": self.top_k,
            "seed": self.seed,
            "params": {
                "l0": self.params.l0,
                "sin_theta0": self.params.sin_theta0,
                "lower": self.params.lower,
                "upper": self.params.upper,
                "resolution": self.params.resolution,
            },
            "config": {
                "security_degree": self.config.security_degree,
                "cover_expansion": self.config.cover_expansion,
                "exact": self.config.exact,
                "coefficient_bound": self.config.coefficient_bound,
                "node_bound": self.config.node_bound,
                "group": [group.p, group.q, group.g],
            },
        }
        canonical = json.dumps(
            document, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
