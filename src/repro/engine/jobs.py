"""Job and result types for the multi-core protocol engine.

A *job* is one unit of protocol work — a private classification of one
sample or a private similarity evaluation against another model — plus
the seed that makes its protocol randomness independent of scheduling.
Jobs cross the process boundary, so everything here is a plain frozen
dataclass of picklable scalars (models travel as the persistence-layer
JSON documents of :mod:`repro.ml.svm.persistence`).

Seeding discipline: each job carries ``seed = derive_seed(root, "job",
job_id)``, so the per-job protocol randomness (masks drawn online, OT
session keys, hiding polynomials) is a pure function of the job id —
never of which worker runs it or in which order.  The only
scheduling-dependent randomness is the precompute *bundle* a worker
pops from its own pool (mask/amplifier material), which randomizes the
masked value but never the label, the similarity metric, or the sign —
those are what the differential suite pins (see
``tests/engine/test_engine.py``).

The failure-injection fields exist for the retry/timeout tests: they
let a test deterministically make the first ``inject_failures``
attempts of a job raise, or stretch a job past the engine's per-job
timeout, exercising the same drop-then-resend semantics as
:class:`repro.net.faults.RetryingChannel` without real crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.exceptions import ValidationError
from repro.math.polynomials import Number
from repro.obs.distributed import TraceContext

#: Job kinds understood by the workers.
CLASSIFICATION = "classification"
SIMILARITY = "similarity"


@dataclass(frozen=True)
class ClassificationJob:
    """Privately classify one sample against the engine's model."""

    job_id: int
    sample: Tuple[float, ...]
    seed: int
    inject_failures: int = 0
    inject_delay_s: float = 0.0
    trace: Optional[TraceContext] = None
    #: Caller-supplied label carried through to the result (and into
    #: the exhausted-retry error text), e.g. a linkage chunk/pair id.
    tag: Optional[str] = None

    kind = CLASSIFICATION

    def __post_init__(self) -> None:
        if not self.sample:
            raise ValidationError("classification job needs a non-empty sample")
        if self.inject_failures < 0:
            raise ValidationError("inject_failures must be non-negative")


@dataclass(frozen=True)
class SimilarityJob:
    """Privately evaluate similarity between the engine's model and
    another party's model (shipped as a persistence document)."""

    job_id: int
    model_document: dict
    seed: int
    inject_failures: int = 0
    inject_delay_s: float = 0.0
    trace: Optional[TraceContext] = None
    #: Caller-supplied label carried through to the result (and into
    #: the exhausted-retry error text), e.g. a linkage chunk/pair id.
    tag: Optional[str] = None
    #: Selects which of the engine's models is the left/Alice side;
    #: ``None`` uses the engine's default model.  Keys come from
    #: ``EngineSpec.model_documents`` (the multi-model collection).
    left_key: Optional[str] = None

    kind = SIMILARITY

    def __post_init__(self) -> None:
        if not isinstance(self.model_document, dict):
            raise ValidationError("similarity job needs a model document dict")
        if self.inject_failures < 0:
            raise ValidationError("inject_failures must be non-negative")


Job = Union[ClassificationJob, SimilarityJob]


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job, as reported back to the parent process.

    ``value`` is the receiver-side output: the masked decision value
    ``r_a·d(t̃)`` for classification (its sign is the label) or the
    similarity metric ``T`` for similarity jobs.  ``label`` is set for
    classification, ``t`` for similarity.  A failed job (after the
    engine's retry budget) has ``ok=False`` and carries the error text.
    """

    job_id: int
    kind: str
    ok: bool
    worker_id: int
    attempts: int
    value: Optional[Number] = None
    label: Optional[float] = None
    t: Optional[float] = None
    #: Exact squared metric ``T²`` for similarity jobs (a Fraction);
    #: what the linkage result store persists for bit-identical
    #: cross-backend comparison.
    t_squared: Optional[Number] = None
    total_bytes: int = 0
    duration_s: float = 0.0
    error: Optional[str] = None
    #: Echo of the job's ``tag``.
    tag: Optional[str] = None
