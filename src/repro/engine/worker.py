"""Worker-side execution for the multi-core protocol engine.

Each worker process owns the mutable, non-picklable protocol state:
the reconstructed model and decision function, its *own*
:class:`~repro.core.ompe.precompute.SenderPool` /
:class:`~repro.core.ompe.precompute.ReceiverPool` bundles (refilled
transparently when drained, mirroring
:class:`~repro.core.classification.session.PrivateClassificationSession`),
a seeded :class:`~repro.utils.rng.ReproRandom` stream forked per
``(engine seed, worker id)``, and an in-process
:class:`~repro.obs.MetricsRegistry` (plus an optional tracer) whose
snapshot travels back to the parent on drain.

The same :func:`execute_job` body also backs :func:`run_jobs_serial`,
the single-process reference path the differential tests compare the
engine against: identical job seeds flow through identical code, so
labels, similarity values, and masked-value signs cannot depend on
worker count or scheduling.
"""

from __future__ import annotations

import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.classification.linear import _label_from_value
from repro.crypto.precompute import get_precompute_service
from repro.math import groups
from repro.core.ompe import OMPEConfig, OMPEFunction, execute_ompe
from repro.core.ompe.precompute import ReceiverPool, SenderPool
from repro.core.similarity import (
    MetricParams,
    evaluate_similarity_private,
    evaluate_similarity_private_nonlinear,
)
from repro.engine.jobs import (
    CLASSIFICATION,
    SIMILARITY,
    ClassificationJob,
    Job,
    JobResult,
    SimilarityJob,
)
from repro.exceptions import EngineError, EngineTimeout, ReproError, ValidationError
from repro.ml.svm.model import SVMModel
from repro.obs.distributed import adopt_context
from repro.ml.svm.persistence import model_from_dict, model_to_dict
from repro.utils.rng import ReproRandom


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs, in picklable form.

    ``model_document`` is the persistence-layer JSON dict (bit-exact
    float round-trip), so workers reconstruct the model identically
    under both ``fork`` and ``spawn`` start methods.
    """

    model_document: dict
    config: OMPEConfig
    seed: int
    pool_size: int = 16
    timeout_s: Optional[float] = None
    trace: bool = False
    #: Optional keyed collection of additional left-side models for
    #: similarity jobs (``SimilarityJob.left_key`` selects one); the
    #: linkage pipeline ships a whole collection this way so one worker
    #: fleet serves every left record.  Workers reconstruct lazily and
    #: cache per key.
    model_documents: Optional[dict] = None
    #: Similarity metric parameters shared by every similarity job
    #: (``None`` means library defaults).
    metric_params: Optional[MetricParams] = None
    #: Serialized warm precompute material (see
    #: :meth:`repro.crypto.precompute.PrecomputeService.export_state`).
    #: Under ``fork`` the worker inherits the warm caches anyway and
    #: installing is a no-op; under ``spawn`` this is what prevents a
    #: silent per-worker generator-table rebuild.
    warm_state: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValidationError(
                f"pool_size must be at least 1, got {self.pool_size}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValidationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )


def make_spec(
    model: SVMModel,
    config: Optional[OMPEConfig] = None,
    seed: int = 0,
    pool_size: int = 16,
    timeout_s: Optional[float] = None,
    trace: bool = False,
    models: Optional[dict] = None,
    params: Optional[MetricParams] = None,
) -> EngineSpec:
    """Build an :class:`EngineSpec` from an in-memory model.

    ``models`` optionally maps string keys to additional
    :class:`SVMModel` instances served as alternative left sides for
    similarity jobs.
    """
    documents = None
    if models is not None:
        for key in models:
            if not isinstance(key, str) or not key:
                raise ValidationError(
                    f"model keys must be non-empty strings, got {key!r}"
                )
        documents = {key: model_to_dict(m) for key, m in models.items()}
    return EngineSpec(
        model_document=model_to_dict(model),
        config=config or OMPEConfig(),
        seed=seed,
        pool_size=pool_size,
        timeout_s=timeout_s,
        trace=trace,
        model_documents=documents,
        metric_params=params,
    )


def _decision_function(model: SVMModel) -> OMPEFunction:
    """The model's decision function as an OMPE sender function
    (same shapes as ``PrivateClassificationSession``)."""
    if model.is_linear():
        return OMPEFunction.from_polynomial(model.linear_decision_polynomial())
    name, params = model.kernel_spec
    if name not in ("poly", "polynomial"):
        raise ValidationError(
            "the engine serves linear and polynomial-kernel models; "
            "polynomialize RBF/sigmoid models first"
        )
    return OMPEFunction.from_callable(
        arity=model.dimension,
        total_degree=int(params.get("degree", 3)),
        evaluate=model.exact_decision_value,
    )


@dataclass
class WorkerState:
    """Per-worker protocol state (model, pools, seeded streams)."""

    worker_id: int
    spec: EngineSpec
    model: SVMModel
    function: OMPEFunction
    root: ReproRandom
    sender_pool: Optional[SenderPool] = None
    receiver_pool: Optional[ReceiverPool] = None
    refills: int = 0
    jobs_done: int = 0
    #: Lazily reconstructed keyed left models (``spec.model_documents``).
    extra_models: Dict[str, SVMModel] = field(default_factory=dict)

    @classmethod
    def from_spec(cls, spec: EngineSpec, worker_id: int) -> "WorkerState":
        model = model_from_dict(spec.model_document)
        return cls(
            worker_id=worker_id,
            spec=spec,
            model=model,
            function=_decision_function(model),
            root=ReproRandom(spec.seed).fork("worker", worker_id),
        )

    def model_for(self, left_key: Optional[str]) -> SVMModel:
        """The left-side model a similarity job asked for."""
        if left_key is None:
            return self.model
        cached = self.extra_models.get(left_key)
        if cached is not None:
            return cached
        documents = self.spec.model_documents or {}
        if left_key not in documents:
            raise EngineError(
                f"unknown left model key {left_key!r}; the engine spec "
                f"carries {sorted(documents)!r}"
            )
        model = model_from_dict(documents[left_key])
        self.extra_models[left_key] = model
        return model

    # -- precompute pools --------------------------------------------------

    def _refill_pools(self) -> None:
        """Regenerate both pools from the worker's seeded stream.

        Raw pools raise :class:`~repro.exceptions.OMPEError` when
        popped empty (pinned in ``tests/core/test_precompute.py``); the
        worker — like ``PrivateClassificationSession`` — refills
        transparently instead, so a long drain never trips exhaustion.
        """
        self.refills += 1
        pool_rng = self.root.fork("pools", self.refills)
        self.sender_pool = SenderPool(
            self.spec.config,
            self.function.total_degree,
            self.spec.pool_size,
            pool_rng.fork("sender"),
        )
        self.receiver_pool = ReceiverPool(
            self.spec.config,
            self.function.arity,
            self.function.total_degree,
            self.spec.pool_size,
            pool_rng.fork("receiver"),
        )
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_engine_pool_refills_total",
                "Precompute pool refills across engine workers",
            ).inc()

    def _pools(self) -> Tuple[SenderPool, ReceiverPool]:
        if (
            self.sender_pool is None
            or self.receiver_pool is None
            or min(len(self.sender_pool), len(self.receiver_pool)) == 0
        ):
            self._refill_pools()
        return self.sender_pool, self.receiver_pool


@contextmanager
def _deadline(timeout_s: Optional[float]):
    """Raise :class:`EngineTimeout` when the body outlives ``timeout_s``.

    Implemented with ``SIGALRM``/``setitimer`` — each worker runs jobs
    on its main thread, so the alarm interrupts exactly the job body.
    On platforms without ``SIGALRM`` the deadline is not enforced.
    """
    if timeout_s is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise EngineTimeout(f"job exceeded its {timeout_s:g}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_job(state: WorkerState, job: Job, attempt: int) -> JobResult:
    """Run one job to completion (or typed failure) inside this process.

    When the job carries a :class:`~repro.obs.distributed.TraceContext`
    (attached by the engine at submission), the per-job span adopts it,
    so worker-side protocol spans stitch under the submitting span even
    across the process boundary.  Every attempt gets its own span —
    resubmissions appear as error-annotated siblings, not orphans.
    """
    start = time.perf_counter()
    span = obs.get_tracer().span(
        "engine.job",
        party="engine",
        phase="engine",
        job=job.job_id,
        kind=getattr(job, "kind", "unknown"),
        worker=state.worker_id,
        attempt=attempt,
    )
    adopt_context(span, getattr(job, "trace", None))
    with span:
        try:
            with _deadline(state.spec.timeout_s):
                if attempt <= getattr(job, "inject_failures", 0):
                    raise EngineError(
                        f"injected failure on attempt {attempt} of job {job.job_id}"
                    )
                if getattr(job, "inject_delay_s", 0.0) > 0.0:
                    time.sleep(job.inject_delay_s)
                if isinstance(job, ClassificationJob):
                    result = _run_classification(state, job, attempt)
                elif isinstance(job, SimilarityJob):
                    result = _run_similarity(state, job, attempt)
                else:
                    raise EngineError(f"unknown job type {type(job).__name__}")
        except ReproError as error:
            error_text = f"{type(error).__name__}: {error}"
            if span.enabled:
                span.set(error=error_text)
            return JobResult(
                job_id=job.job_id,
                kind=getattr(job, "kind", "unknown"),
                ok=False,
                worker_id=state.worker_id,
                attempts=attempt,
                duration_s=time.perf_counter() - start,
                error=error_text,
                tag=getattr(job, "tag", None),
            )
        state.jobs_done += 1
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_engine_jobs_total", "Jobs completed by engine workers"
            ).inc(kind=result.kind)
        return result


def _run_classification(
    state: WorkerState, job: ClassificationJob, attempt: int
) -> JobResult:
    start = time.perf_counter()
    sender_pool, receiver_pool = state._pools()
    outcome = execute_ompe(
        state.function,
        tuple(job.sample),
        config=state.spec.config,
        seed=job.seed,
        amplify=True,
        offset=False,
        sender_pool=sender_pool,
        receiver_pool=receiver_pool,
    )
    return JobResult(
        job_id=job.job_id,
        kind=CLASSIFICATION,
        ok=True,
        worker_id=state.worker_id,
        attempts=attempt,
        value=outcome.value,
        label=_label_from_value(outcome.value),
        total_bytes=outcome.report.total_bytes,
        duration_s=time.perf_counter() - start,
        tag=job.tag,
    )


def _run_similarity(
    state: WorkerState, job: SimilarityJob, attempt: int
) -> JobResult:
    start = time.perf_counter()
    left = state.model_for(job.left_key)
    other = model_from_dict(job.model_document)
    params = state.spec.metric_params or MetricParams()
    if left.is_linear() and other.is_linear():
        outcome = evaluate_similarity_private(
            left,
            other,
            params,
            config=state.spec.config,
            seed=job.seed,
        )
    else:
        outcome = evaluate_similarity_private_nonlinear(
            left,
            other,
            params,
            config=state.spec.config,
            seed=job.seed,
        )
    return JobResult(
        job_id=job.job_id,
        kind=SIMILARITY,
        ok=True,
        worker_id=state.worker_id,
        attempts=attempt,
        value=outcome.t,
        t=float(outcome.t),
        t_squared=outcome.t_squared,
        total_bytes=outcome.total_bytes,
        duration_s=time.perf_counter() - start,
        tag=job.tag,
    )


# -- process entry point ---------------------------------------------------

#: Queue sentinel asking a worker to snapshot its observability state
#: and exit.
DRAIN = None


def worker_main(worker_id: int, spec: EngineSpec, job_queue, result_queue) -> None:
    """Worker process loop: pop ``(job, attempt)``, push results.

    Runs with a private metrics registry (and tracer when
    ``spec.trace``); on the drain sentinel it pushes a final
    ``("drain", worker_id, jobs_done, metrics_snapshot, trace_jsonl)``
    record and exits, letting the parent merge per-worker observability
    into its registry.
    """
    registry = obs.MetricsRegistry()
    obs.set_metrics(registry)
    tracer = None
    if spec.trace:
        tracer = obs.Tracer()
        obs.set_tracer(tracer)
    # Builds charged to this worker must be the worker's own: a fork
    # inherits the parent's (warm) table cache *and* its counters, so
    # zero the counters before installing/serving.  After a warm start
    # the regression suite asserts the per-worker miss count stays 0.
    groups.reset_fixed_base_table_stats()
    if spec.warm_state is not None:
        get_precompute_service().install_state(spec.warm_state)
    try:
        state = WorkerState.from_spec(spec, worker_id)
    except ReproError as error:
        result_queue.put(("fatal", worker_id, f"{type(error).__name__}: {error}"))
        return
    while True:
        item = job_queue.get()
        if item is DRAIN:
            break
        job, attempt = item
        result = execute_job(state, job, attempt)
        result_queue.put(("result", result, job))
    registry.gauge(
        "repro_engine_pool_remaining",
        "Unused precompute bundles per worker at drain",
    ).set(
        min(len(state.sender_pool), len(state.receiver_pool))
        if state.sender_pool is not None and state.receiver_pool is not None
        else 0,
        worker=str(worker_id),
    )
    get_precompute_service().export_metrics(scope=f"worker-{worker_id}")
    result_queue.put(
        (
            "drain",
            worker_id,
            state.jobs_done,
            registry.snapshot(),
            tracer.to_jsonl() if tracer is not None else None,
        )
    )


def run_jobs_serial(
    spec: EngineSpec, jobs: Sequence[Job]
) -> Tuple[List[JobResult], dict]:
    """Reference path: execute ``jobs`` in order in this process.

    Uses the identical :func:`execute_job` body and per-job seeds as
    the worker pool, with one worker state (``worker_id=0``).  Returns
    the results (in submission order) and the metrics snapshot, for
    differential comparison against a parallel drain.
    """
    registry = obs.MetricsRegistry()
    previous = obs.get_metrics()
    obs.set_metrics(registry)
    try:
        state = WorkerState.from_spec(spec, worker_id=0)
        results = [execute_job(state, job, attempt=1) for job in jobs]
    finally:
        obs.set_metrics(previous)
    return results, registry.snapshot()
