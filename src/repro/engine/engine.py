"""Multi-process protocol engine with shared precompute pools.

:class:`ProtocolEngine` shards a stream of classification/similarity
jobs across a pool of worker processes.  Design points, each pinned by
``tests/engine/``:

* **Backpressure** — the submission queue is bounded
  (``queue_capacity``); :meth:`submit` blocks once the in-flight window
  is full, so an unbounded producer cannot balloon memory.
* **Sharding with per-worker precompute** — every worker owns its own
  :class:`~repro.core.ompe.precompute.SenderPool` /
  :class:`~repro.core.ompe.precompute.ReceiverPool` and a seeded
  :class:`~repro.utils.rng.ReproRandom` forked from
  ``(seed, "worker", worker_id)``; per-job protocol randomness derives
  from the job id, so labels/similarity values are
  scheduling-invariant.
* **Timeout/retry policy** — mirrors :mod:`repro.net.faults` semantics:
  a failed or timed-out attempt is resubmitted up to ``max_retries``
  times (the :class:`~repro.net.faults.RetryingChannel` resend path,
  counted in ``repro_engine_retries_total``), then surfaces as a loud
  ``ok=False`` result (the library's fail-loud contract) rather than a
  silent drop.
* **Observability merge** — on :meth:`drain` every worker ships its
  metrics snapshot (and optional trace JSONL) back; the parent merges
  them with :meth:`~repro.obs.MetricsRegistry.merge_snapshot` so e.g.
  ``repro_ompe_runs_total`` equals the serial run's count exactly.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.crypto.precompute import get_precompute_service
from repro.engine.jobs import ClassificationJob, Job, JobResult, SimilarityJob
from repro.engine.worker import DRAIN, make_spec, worker_main
from repro.exceptions import EngineError, ValidationError
from repro.ml.svm.model import SVMModel
from repro.ml.svm.persistence import model_to_dict
from repro.obs.distributed import current_trace_context
from repro.obs.metrics import MetricsRegistry
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class EnginePolicy:
    """Per-job failure policy (timeout + retry budget).

    ``max_retries`` counts *resends after the first attempt*, matching
    :class:`repro.net.faults.RetryingChannel`; ``timeout_s`` is
    enforced inside the worker via an interval timer.
    """

    timeout_s: Optional[float] = None
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValidationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )


@dataclass
class EngineReport:
    """Everything a drain returns.

    ``results`` is sorted by job id (scheduling-independent order);
    ``metrics`` is the parent registry holding the merged per-worker
    snapshots plus the engine's own counters.
    """

    results: Tuple[JobResult, ...]
    metrics: MetricsRegistry
    elapsed_s: float
    jobs_per_second: float
    worker_jobs: Dict[int, int] = field(default_factory=dict)
    worker_traces: Dict[int, str] = field(default_factory=dict)

    @property
    def failed(self) -> Tuple[JobResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    def summary(self) -> Dict[str, object]:
        return {
            "jobs": len(self.results),
            "failed": len(self.failed),
            "elapsed_s": self.elapsed_s,
            "jobs_per_second": self.jobs_per_second,
            "worker_jobs": dict(self.worker_jobs),
        }


class ProtocolEngine:
    """A multi-core job engine over one trainer model.

    Usage::

        with ProtocolEngine(model, config, workers=4, seed=7) as engine:
            for sample in samples:
                engine.submit_classification(sample)   # blocks when full
            report = engine.drain()

    The engine is a context manager; exiting terminates the workers
    even on error paths.
    """

    #: How long (seconds) the parent waits on the result queue before
    #: declaring the worker fleet dead.  Generous: covers one worst-case
    #: job plus scheduling noise.
    _DRAIN_PATIENCE_S = 120.0

    def __init__(
        self,
        model: Optional[SVMModel] = None,
        config=None,
        workers: int = 2,
        pool_size: int = 16,
        queue_capacity: int = 64,
        policy: Optional[EnginePolicy] = None,
        seed: int = 0,
        trace: bool = False,
        precompute: bool = True,
        models: Optional[Mapping[str, SVMModel]] = None,
        params=None,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be at least 1, got {workers}")
        if queue_capacity < 1:
            raise ValidationError(
                f"queue_capacity must be at least 1, got {queue_capacity}"
            )
        if model is None:
            if not models:
                raise ValidationError(
                    "ProtocolEngine needs a model (or a keyed models "
                    "collection)"
                )
            # Deterministic default: the first key in sorted order.
            model = models[sorted(models)[0]]
        self.policy = policy or EnginePolicy()
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.seed = seed
        self.precompute = precompute
        self.spec = make_spec(
            model,
            config=config,
            seed=seed,
            pool_size=pool_size,
            timeout_s=self.policy.timeout_s,
            trace=trace,
            models=dict(models) if models is not None else None,
            params=params,
        )
        self._started = False
        self._closed = False
        self._processes: List = []
        self._next_job_id = 0
        self._in_flight = 0
        self._retries = 0
        self._completed: List[JobResult] = []
        #: Pristine parent-side copies of in-flight jobs, keyed by id.
        #: Retries resubmit from here — never from the copy a worker
        #: echoed back — so a retried job reruns with exactly its
        #: original seed and payload (pinned by the resubmission-
        #: determinism regression tests).
        self._pending: Dict[int, Job] = {}
        self._started_at: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ProtocolEngine":
        """Spawn the worker fleet (idempotent)."""
        if self._started:
            return self
        if self.precompute:
            # Warm the generator table in the *parent* before the fleet
            # exists: fork children inherit the hot cache outright, and
            # the serialized copy in the spec covers spawn contexts.
            # Without this, every worker silently rebuilt the table.
            service = get_precompute_service()
            group = self.spec.config.resolved_group()
            service.warm_group(group)
            self.spec = replace(
                self.spec,
                warm_state=service.export_state(group_list=[group]),
            )
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context("spawn")
        self._job_queue = ctx.Queue(maxsize=self.queue_capacity)
        self._result_queue = ctx.Queue()
        self._processes = [
            ctx.Process(
                target=worker_main,
                args=(worker_id, self.spec, self._job_queue, self._result_queue),
                daemon=True,
            )
            for worker_id in range(self.workers)
        ]
        for process in self._processes:
            process.start()
        self._started = True
        self._started_at = time.perf_counter()
        return self

    def __enter__(self) -> "ProtocolEngine":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Terminate workers unconditionally (safe after drain)."""
        if self._closed:
            return
        self._closed = True
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)

    # -- submission --------------------------------------------------------

    def _require_started(self) -> None:
        if not self._started or self._closed:
            raise EngineError("engine is not running (start() it first)")

    def submit(self, job: Job) -> int:
        """Enqueue one job; blocks while the bounded queue is full."""
        self._require_started()
        self._pending[job.job_id] = job
        self._job_queue.put((job, 1))
        self._in_flight += 1
        return job.job_id

    def submit_classification(self, sample: Sequence[float], **inject) -> int:
        """Build and enqueue a classification job with a derived seed.

        When tracing is enabled and a span is open, the job envelope
        carries a trace context, so the worker-side ``engine.job`` span
        stitches under the submitting span across the process boundary.
        """
        job_id = self._next_job_id
        self._next_job_id += 1
        inject.setdefault("trace", current_trace_context())
        inject.setdefault("seed", derive_seed(self.seed, "job", job_id))
        return self.submit(
            ClassificationJob(
                job_id=job_id,
                sample=tuple(float(v) for v in sample),
                **inject,
            )
        )

    def submit_similarity(self, other_model: SVMModel, **inject) -> int:
        """Build and enqueue a similarity job.

        The seed defaults to ``derive_seed(engine seed, "job", job_id)``
        but callers may pin ``seed=`` explicitly — the linkage pipeline
        does, deriving per-pair seeds from stable record keys so a
        resumed run (whose job ids differ from the clean run's)
        reproduces bit-identical outcomes.  ``left_key=`` selects one of
        the engine's keyed models as the left side; ``tag=`` labels the
        job in results and retry-exhausted errors.
        """
        job_id = self._next_job_id
        self._next_job_id += 1
        inject.setdefault("trace", current_trace_context())
        inject.setdefault("seed", derive_seed(self.seed, "job", job_id))
        return self.submit(
            SimilarityJob(
                job_id=job_id,
                model_document=model_to_dict(other_model),
                **inject,
            )
        )

    # -- drain -------------------------------------------------------------

    def _collect(self, patience_s: float):
        """One record from the result queue, with liveness checks."""
        deadline = time.monotonic() + patience_s
        while True:
            timeout = max(0.1, deadline - time.monotonic())
            try:
                return self._result_queue.get(timeout=timeout)
            except queue_module.Empty:
                if time.monotonic() >= deadline:
                    raise EngineError(
                        f"no worker produced a result within {patience_s:g}s"
                    ) from None
                if not any(p.is_alive() for p in self._processes):
                    raise EngineError(
                        "all engine workers exited with work in flight"
                    ) from None

    def _patience(self) -> float:
        patience = self._DRAIN_PATIENCE_S
        if self.policy.timeout_s:
            patience = max(patience, 10.0 * self.policy.timeout_s)
        return patience

    def _settle(self) -> None:
        """Process results until nothing is in flight (retrying failures).

        A failed attempt inside the retry budget is resubmitted from the
        parent's *pristine* copy of the job (``self._pending``), not the
        copy the worker echoed back — the seed and payload of a retried
        job are therefore exactly the submitted ones.  A job that
        exhausts its budget surfaces with an error message prefixed by
        its job id (and tag, when set) so batch callers can attribute
        the failure to a chunk/pair.
        """
        patience = self._patience()
        while self._in_flight:
            record = self._collect(patience)
            kind = record[0]
            if kind == "fatal":
                _, worker_id, message = record
                raise EngineError(f"worker {worker_id} failed to start: {message}")
            if kind != "result":  # pragma: no cover - defensive
                raise EngineError(f"unexpected worker record {kind!r}")
            _, result, _echoed = record
            if not result.ok and result.attempts <= self.policy.max_retries:
                self._retries += 1
                pristine = self._pending[result.job_id]
                self._job_queue.put((pristine, result.attempts + 1))
                continue
            job = self._pending.pop(result.job_id, None)
            if not result.ok:
                tag = result.tag or getattr(job, "tag", None)
                label = f"job {result.job_id}" + (f" [{tag}]" if tag else "")
                result = replace(
                    result,
                    error=(
                        f"{label} failed after {result.attempts} "
                        f"attempts: {result.error}"
                    ),
                    tag=tag,
                )
            self._in_flight -= 1
            self._completed.append(result)

    def sync(self) -> Tuple[JobResult, ...]:
        """Wait for every in-flight job; keep the fleet running.

        Returns the results completed since the previous ``sync()`` (or
        engine start), sorted by job id, and clears the internal
        completion buffer.  Unlike :meth:`drain` the workers stay alive,
        so a caller can interleave submission waves — the linkage
        pipeline settles one chunk at a time this way.  Worker metrics
        are merged only by the final :meth:`drain`.
        """
        self._require_started()
        self._settle()
        results = tuple(sorted(self._completed, key=lambda r: r.job_id))
        self._completed = []
        return results

    def drain(self) -> EngineReport:
        """Wait for every submitted job, merge observability, report.

        Retries failed attempts (``EnginePolicy.max_retries``), then
        sends the drain sentinel to each worker and folds the
        per-worker metrics/trace snapshots into the parent registry.
        ``results`` covers jobs completed since the last :meth:`sync`.
        """
        self._require_started()
        patience = self._patience()
        self._settle()

        for _ in self._processes:
            self._job_queue.put(DRAIN)

        merged = MetricsRegistry()
        worker_jobs: Dict[int, int] = {}
        worker_traces: Dict[int, str] = {}
        drained = 0
        while drained < len(self._processes):
            record = self._collect(patience)
            if record[0] == "fatal":
                _, worker_id, message = record
                raise EngineError(f"worker {worker_id} died: {message}")
            if record[0] != "drain":  # pragma: no cover - defensive
                raise EngineError(f"unexpected worker record {record[0]!r}")
            _, worker_id, jobs_done, snapshot, trace_jsonl = record
            worker_jobs[worker_id] = jobs_done
            merged.merge_snapshot(snapshot)
            if trace_jsonl:
                worker_traces[worker_id] = trace_jsonl
            drained += 1
        for process in self._processes:
            process.join(timeout=5.0)

        elapsed = time.perf_counter() - (self._started_at or time.perf_counter())
        results = tuple(sorted(self._completed, key=lambda r: r.job_id))
        if self._retries:
            merged.counter(
                "repro_engine_retries_total",
                "Job resends after failed attempts (RetryingChannel semantics)",
            ).inc(self._retries)
        failures = sum(1 for r in results if not r.ok)
        if failures:
            merged.counter(
                "repro_engine_failures_total",
                "Jobs failed after the retry budget",
            ).inc(failures)
        merged.gauge(
            "repro_engine_workers", "Worker processes in the engine fleet"
        ).set(len(self._processes))

        active = obs.get_metrics()
        if active.enabled and active is not merged:
            active.merge_snapshot(merged.snapshot())

        self._closed = True
        jobs_per_second = len(results) / elapsed if elapsed > 0 else 0.0
        return EngineReport(
            results=results,
            metrics=merged,
            elapsed_s=elapsed,
            jobs_per_second=jobs_per_second,
            worker_jobs=worker_jobs,
            worker_traces=worker_traces,
        )


def run_engine(
    model: SVMModel,
    samples: Sequence[Sequence[float]],
    config=None,
    workers: int = 2,
    pool_size: int = 16,
    queue_capacity: int = 64,
    policy: Optional[EnginePolicy] = None,
    seed: int = 0,
    trace: bool = False,
    precompute: bool = True,
) -> EngineReport:
    """One-shot convenience: classify ``samples`` through an engine."""
    with ProtocolEngine(
        model,
        config=config,
        workers=workers,
        pool_size=pool_size,
        queue_capacity=queue_capacity,
        policy=policy,
        seed=seed,
        trace=trace,
        precompute=precompute,
    ) as engine:
        for sample in samples:
            engine.submit_classification(sample)
        return engine.drain()
