"""Multi-core protocol engine (paper §VI scale-out).

Shards classification/similarity jobs across worker processes, each
owning its own precompute pools and seeded randomness, with bounded
submission (backpressure), ``net.faults``-style timeout/retry, and
per-worker observability merged back into the parent registry.
"""

from repro.engine.engine import (
    EnginePolicy,
    EngineReport,
    ProtocolEngine,
    run_engine,
)
from repro.engine.jobs import (
    CLASSIFICATION,
    SIMILARITY,
    ClassificationJob,
    Job,
    JobResult,
    SimilarityJob,
)
from repro.engine.worker import EngineSpec, make_spec, run_jobs_serial

__all__ = [
    "CLASSIFICATION",
    "SIMILARITY",
    "ClassificationJob",
    "EnginePolicy",
    "EngineReport",
    "EngineSpec",
    "Job",
    "JobResult",
    "ProtocolEngine",
    "SimilarityJob",
    "make_spec",
    "run_engine",
    "run_jobs_serial",
]
