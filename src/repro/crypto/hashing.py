"""Hash-based key derivation and one-time-pad wrapping for OT payloads.

The Naor–Pinkas oblivious transfer lets two parties agree on a group
element that only the legitimate receiver can compute.  To transport an
arbitrary-length application message (here: encoded protocol values) we
derive a keystream from that group element with SHA-256 in counter mode
and XOR it over the payload, with an appended integrity tag so a wrong
key is detected rather than silently decoding garbage.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional

from repro.exceptions import DecryptionError, ValidationError

#: Length of the integrity tag appended to wrapped messages.
TAG_BYTES = 16


def kdf(key_material: bytes, length: int, context: bytes = b"") -> bytes:
    """Derive ``length`` pseudorandom bytes from ``key_material``.

    SHA-256 in counter mode:  ``H(counter || context || key_material)``.
    """
    if length < 0:
        raise ValidationError(f"length must be non-negative, got {length}")
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        digest = hashlib.sha256()
        digest.update(counter.to_bytes(8, "big"))
        digest.update(context)
        digest.update(key_material)
        blocks.append(digest.digest())
        counter += 1
    return b"".join(blocks)[:length]


def _xor(data: bytes, keystream: bytes) -> bytes:
    # One big-int XOR instead of a per-byte generator: ~4.5x faster on
    # protocol-sized payloads and trivially identical output.  Length
    # semantics match zip(): truncate to the shorter operand.
    if len(data) != len(keystream):
        shorter = min(len(data), len(keystream))
        data, keystream = data[:shorter], keystream[:shorter]
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
    ).to_bytes(len(data), "big")


def wrap_message(key_material: bytes, plaintext: bytes, context: bytes = b"") -> bytes:
    """Encrypt-and-tag ``plaintext`` under a key derived from ``key_material``."""
    keystream = kdf(key_material, len(plaintext), context + b"|stream")
    ciphertext = _xor(plaintext, keystream)
    mac_key = kdf(key_material, 32, context + b"|mac")
    tag = hmac.new(mac_key, ciphertext, hashlib.sha256).digest()[:TAG_BYTES]
    return ciphertext + tag


def unwrap_message(
    key_material: bytes, wrapped: bytes, context: bytes = b""
) -> Optional[bytes]:
    """Decrypt a wrapped message; returns ``None`` when the tag fails.

    The OT receiver calls this on every slot but only the chosen slots
    authenticate — a ``None`` therefore is the *expected* result for
    unchosen slots, not an error.
    """
    if len(wrapped) < TAG_BYTES:
        raise DecryptionError("wrapped message shorter than its tag")
    ciphertext, tag = wrapped[:-TAG_BYTES], wrapped[-TAG_BYTES:]
    mac_key = kdf(key_material, 32, context + b"|mac")
    expected = hmac.new(mac_key, ciphertext, hashlib.sha256).digest()[:TAG_BYTES]
    if not hmac.compare_digest(tag, expected):
        return None
    keystream = kdf(key_material, len(ciphertext), context + b"|stream")
    return _xor(ciphertext, keystream)


def hash_to_bytes(*parts: bytes) -> bytes:
    """Collision-resistant hash of a sequence of byte strings."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(len(part).to_bytes(8, "big"))
        digest.update(part)
    return digest.digest()
