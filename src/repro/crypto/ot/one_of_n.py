"""1-out-of-n oblivious transfer (Naor–Pinkas style).

Construction (semi-honest, random-oracle model, CDH assumption):

* **Setup.** The sender samples a public group element ``w`` with an
  unknown discrete log (derived from a random exponent it immediately
  forgets — here simply a random element) and a session id.
* **Choice.** To select index ``σ``, the receiver samples a secret
  exponent ``k`` and sends ``V = g^k · w^σ``.  Since ``g^k`` is uniform,
  ``V`` is uniform in the group whatever ``σ`` is — the receiver's
  choice is *perfectly* hidden.
* **Transfer.** For every slot ``i`` the sender samples ``r_i`` and
  derives ``key_i = (V · w^{-i})^{r_i}``, sending ``g^{r_i}`` and the
  message wrapped under ``key_i``.
* **Retrieve.** For ``i = σ``, ``V · w^{-σ} = g^k``, so the receiver
  computes ``key_σ = (g^{r_σ})^k``.  For ``i ≠ σ`` the key equals
  ``g^{k r_i} w^{(σ-i) r_i}`` and computing it requires solving CDH on
  ``(w, g^{r_i})`` — infeasible for the honest-but-curious receiver.

This is the workhorse primitive: the paper's ``m``-out-of-``M`` step
runs ``m`` parallel sessions of this protocol
(:mod:`repro.crypto.ot.k_of_n`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashing import unwrap_message, wrap_message
from repro.crypto.ot.base import (
    OTChoice,
    OTSetup,
    OTTransfer,
    validate_index,
    validate_messages,
)
from repro.exceptions import ObliviousTransferError
from repro.math import fastpath
from repro.math.groups import DUAL_TABLE_MIN_SLOTS, DualBaseExponentiator, SchnorrGroup
from repro.utils.rng import ReproRandom


def _slot_context(session: bytes, slot: int) -> bytes:
    return session + b"|slot:" + str(slot).encode("ascii")


class TransferMaterial:
    """Memoized sender-side material shared by parallel sessions.

    The ``k``-of-``n`` construction answers every one of its ``k·m``
    parallel sessions over the *same* message vector.  Everything about
    that vector that does not depend on the session — the validated
    payload copy and the per-slot key-derivation context suffixes — is
    deterministic, so it is computed once here and reused by every
    session instead of once per session.  Purely a cache: a transfer
    produced through a shared :class:`TransferMaterial` is bit-identical
    to one produced without it (covered by ``tests/crypto/test_ot.py``).
    """

    __slots__ = ("payload", "slot_suffixes", "sessions_served")

    def __init__(self, messages: Sequence[bytes]) -> None:
        self.payload = validate_messages(messages)
        self.slot_suffixes: Tuple[bytes, ...] = tuple(
            b"|slot:" + str(slot).encode("ascii")
            for slot in range(len(self.payload))
        )
        self.sessions_served = 0


class OneOfNSender:
    """Sender side of the 1-out-of-n OT."""

    def __init__(self, group: SchnorrGroup, rng: ReproRandom) -> None:
        self.group = group
        self._rng = rng
        self._setup: Optional[OTSetup] = None

    def setup(self) -> OTSetup:
        """Publish the session's public parameters."""
        session = self._rng.bytes(16)
        w = self.group.random_element(self._rng)
        self._setup = OTSetup(session=session, blinding_points=(w,))
        return self._setup

    def transfer(
        self,
        messages: Sequence[bytes],
        choice: OTChoice,
        material: Optional[TransferMaterial] = None,
        w_inverse: Optional[int] = None,
    ) -> OTTransfer:
        """Wrap every message so only the chosen slot is recoverable.

        ``material`` optionally carries the pre-validated payload and
        per-slot context suffixes shared with sibling parallel sessions
        (see :class:`TransferMaterial`); ``w_inverse`` optionally carries
        the session blinding point's inverse when the caller batch-
        inverted it across sessions (:meth:`SchnorrGroup.batch_inv`).
        The output is identical with or without either.

        Key derivation: the naive reference computes
        ``key_i = (V · w^{-i})^{r_i}`` with one variable-base ``pow``
        per slot.  On the hot path, for transfers with at least
        :data:`DUAL_TABLE_MIN_SLOTS` slots, the identity
        ``(V · w^{-i})^r = V^r · (w^{-1})^{i·r mod q}`` lets a
        :class:`DualBaseExponentiator` serve every slot from two
        session-constant windowed tables — same keys, same transcript
        bytes, ~25–40% less sender time at protocol sizes.

        Both derivations run entirely on the active bignum backend
        (:mod:`repro.math.fastpath.backends`): ``group.exp`` /
        ``exp_g`` dispatch through it and the dual tables hold
        backend-native entries, so installing gmpy2 accelerates the OT
        key schedule with no change to the transcript.
        """
        if self._setup is None:
            raise ObliviousTransferError("transfer before setup")
        if choice.session != self._setup.session:
            raise ObliviousTransferError("choice belongs to a different session")
        if len(choice.blinded_keys) != 1:
            raise ObliviousTransferError("1-of-n choice must carry one blinded key")
        if material is None:
            material = TransferMaterial(messages)
        material.sessions_served += 1
        payload = material.payload
        group = self.group
        (w,) = self._setup.blinding_points
        blinded = choice.blinded_keys[0]
        if not group.contains(blinded):
            raise ObliviousTransferError("blinded key is not a group element")
        if w_inverse is None:
            w_inverse = group.inv(w)
        session = self._setup.session
        derive = None
        if fastpath.enabled() and len(payload) >= DUAL_TABLE_MIN_SLOTS:
            derive = DualBaseExponentiator(group, blinded, w_inverse)
        ephemeral_points: List[int] = []
        wrapped: List[bytes] = []
        shifted = blinded  # V · w^{-i}, updated incrementally per slot.
        for slot, (message, suffix) in enumerate(zip(payload, material.slot_suffixes)):
            r = group.random_exponent(self._rng)
            ephemeral_points.append(group.exp_g(r))
            if derive is not None:
                key_point = derive.key_point(slot, r)
            else:
                key_point = group.exp(shifted, r)
                shifted = group.mul(shifted, w_inverse)
            key_bytes = group.encode_element(key_point)
            wrapped.append(wrap_message(key_bytes, message, session + suffix))
        return OTTransfer(
            session=session,
            ephemeral_points=tuple(ephemeral_points),
            wrapped=tuple(wrapped),
        )


class OneOfNReceiver:
    """Receiver side of the 1-out-of-n OT."""

    def __init__(self, group: SchnorrGroup, rng: ReproRandom) -> None:
        self.group = group
        self._rng = rng
        self._secret: Optional[int] = None
        self._index: Optional[int] = None
        self._session: Optional[bytes] = None

    def choose(self, setup: OTSetup, index: int, count: int) -> OTChoice:
        """Blind the selection ``index`` among ``count`` slots."""
        validate_index(index, count)
        if len(setup.blinding_points) != 1:
            raise ObliviousTransferError("1-of-n setup must carry one blinding point")
        (w,) = setup.blinding_points
        if not self.group.contains(w):
            raise ObliviousTransferError("blinding point is not a group element")
        self._secret = self.group.random_exponent(self._rng)
        self._index = index
        self._session = setup.session
        blinded = self.group.mul(
            self.group.exp_g(self._secret),
            self.group.exp(w, index),
        )
        return OTChoice(session=setup.session, blinded_keys=(blinded,))

    def retrieve(self, transfer: OTTransfer) -> bytes:
        """Unwrap the chosen message; aborts if it fails to authenticate."""
        if self._secret is None or self._index is None:
            raise ObliviousTransferError("retrieve before choose")
        if transfer.session != self._session:
            raise ObliviousTransferError("transfer belongs to a different session")
        if self._index >= transfer.message_count:
            raise ObliviousTransferError(
                f"chosen index {self._index} outside transfer of "
                f"{transfer.message_count} messages"
            )
        point = transfer.ephemeral_points[self._index]
        if not self.group.contains(point):
            raise ObliviousTransferError("ephemeral point is not a group element")
        key_point = self.group.exp(point, self._secret)
        key_bytes = self.group.encode_element(key_point)
        plaintext = unwrap_message(
            key_bytes,
            transfer.wrapped[self._index],
            _slot_context(transfer.session, self._index),
        )
        if plaintext is None:
            raise ObliviousTransferError("chosen slot failed to authenticate")
        return plaintext

    def attempt_all(self, transfer: OTTransfer) -> List[Optional[bytes]]:
        """Adversarial probe: try to unwrap *every* slot with our key.

        Used by the privacy analysis to demonstrate that all non-chosen
        slots fail authentication (returns ``None`` entries).
        """
        if self._secret is None:
            raise ObliviousTransferError("retrieve before choose")
        results: List[Optional[bytes]] = []
        for slot in range(transfer.message_count):
            key_point = self.group.exp(transfer.ephemeral_points[slot], self._secret)
            key_bytes = self.group.encode_element(key_point)
            results.append(
                unwrap_message(
                    key_bytes, transfer.wrapped[slot], _slot_context(transfer.session, slot)
                )
            )
        return results


def run_one_of_n(
    group: SchnorrGroup,
    messages: Sequence[bytes],
    index: int,
    rng: ReproRandom,
) -> Tuple[bytes, OTTransfer]:
    """Convenience one-shot execution (both roles locally).

    Returns the retrieved message and the transfer (for accounting).
    """
    sender = OneOfNSender(group, rng.fork("sender"))
    receiver = OneOfNReceiver(group, rng.fork("receiver"))
    setup = sender.setup()
    choice = receiver.choose(setup, index, len(messages))
    transfer = sender.transfer(messages, choice)
    return receiver.retrieve(transfer), transfer
