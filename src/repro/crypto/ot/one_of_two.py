"""1-out-of-2 oblivious transfer (classic Naor–Pinkas).

The historical base case of the OT hierarchy (paper Section III-B step
1).  The sender publishes a random group element ``C`` whose discrete
log nobody knows.  The receiver with bit ``b`` samples ``k`` and sends
``PK_b = g^k`` implicitly by transmitting ``PK_0``; the sender derives
``PK_1 = C / PK_0``.  Messages are wrapped under ``PK_i^{r_i}``.  The
receiver recovers only slot ``b`` as ``(g^{r_b})^k``; the complementary
key would require knowing ``dlog(C)``.

Functionally subsumed by :mod:`repro.crypto.ot.one_of_n` (n = 2), but
implemented independently because it is the textbook protocol and makes
a good cross-check in tests.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.crypto.hashing import unwrap_message, wrap_message
from repro.crypto.ot.base import OTChoice, OTSetup, OTTransfer, validate_messages
from repro.exceptions import ObliviousTransferError, ValidationError
from repro.math.groups import SchnorrGroup
from repro.utils.rng import ReproRandom


def _slot_context(session: bytes, slot: int) -> bytes:
    return session + b"|bit:" + str(slot).encode("ascii")


class OneOfTwoSender:
    """Sender holding two messages, willing to reveal exactly one."""

    def __init__(self, group: SchnorrGroup, rng: ReproRandom) -> None:
        self.group = group
        self._rng = rng
        self._setup: Optional[OTSetup] = None

    def setup(self) -> OTSetup:
        """Publish the session id and the no-known-dlog constant ``C``."""
        session = self._rng.bytes(16)
        c = self.group.random_element(self._rng)
        self._setup = OTSetup(session=session, blinding_points=(c,))
        return self._setup

    def transfer(self, messages: Sequence[bytes], choice: OTChoice) -> OTTransfer:
        """Wrap both messages under the two derived public keys."""
        if self._setup is None:
            raise ObliviousTransferError("transfer before setup")
        if choice.session != self._setup.session:
            raise ObliviousTransferError("choice belongs to a different session")
        payload = validate_messages(messages)
        if len(payload) != 2:
            raise ValidationError("1-of-2 OT requires exactly two messages")
        if len(choice.blinded_keys) != 1:
            raise ObliviousTransferError("1-of-2 choice must carry one public key")
        group = self.group
        (c,) = self._setup.blinding_points
        pk0 = choice.blinded_keys[0]
        if not group.contains(pk0):
            raise ObliviousTransferError("public key is not a group element")
        pk1 = group.div(c, pk0)
        ephemeral_points = []
        wrapped = []
        for slot, (pk, message) in enumerate(zip((pk0, pk1), payload)):
            r = group.random_exponent(self._rng)
            ephemeral_points.append(group.exp_g(r))
            key_bytes = group.encode_element(group.exp(pk, r))
            wrapped.append(
                wrap_message(key_bytes, message, _slot_context(self._setup.session, slot))
            )
        return OTTransfer(
            session=self._setup.session,
            ephemeral_points=tuple(ephemeral_points),
            wrapped=tuple(wrapped),
        )


class OneOfTwoReceiver:
    """Receiver holding a selection bit ``b``."""

    def __init__(self, group: SchnorrGroup, rng: ReproRandom) -> None:
        self.group = group
        self._rng = rng
        self._secret: Optional[int] = None
        self._bit: Optional[int] = None
        self._session: Optional[bytes] = None

    def choose(self, setup: OTSetup, bit: int) -> OTChoice:
        """Commit to selection bit ``bit`` by sending ``PK_0``."""
        if bit not in (0, 1):
            raise ValidationError(f"bit must be 0 or 1, got {bit}")
        if len(setup.blinding_points) != 1:
            raise ObliviousTransferError("1-of-2 setup must carry one constant")
        (c,) = setup.blinding_points
        if not self.group.contains(c):
            raise ObliviousTransferError("constant is not a group element")
        self._secret = self.group.random_exponent(self._rng)
        self._bit = bit
        self._session = setup.session
        pk_b = self.group.exp_g(self._secret)
        pk0 = pk_b if bit == 0 else self.group.div(c, pk_b)
        return OTChoice(session=setup.session, blinded_keys=(pk0,))

    def retrieve(self, transfer: OTTransfer) -> bytes:
        """Unwrap the chosen message."""
        if self._secret is None or self._bit is None:
            raise ObliviousTransferError("retrieve before choose")
        if transfer.session != self._session:
            raise ObliviousTransferError("transfer belongs to a different session")
        if transfer.message_count != 2:
            raise ObliviousTransferError("1-of-2 transfer must carry two messages")
        point = transfer.ephemeral_points[self._bit]
        key_bytes = self.group.encode_element(self.group.exp(point, self._secret))
        plaintext = unwrap_message(
            key_bytes, transfer.wrapped[self._bit], _slot_context(transfer.session, self._bit)
        )
        if plaintext is None:
            raise ObliviousTransferError("chosen slot failed to authenticate")
        return plaintext


def run_one_of_two(
    group: SchnorrGroup,
    messages: Sequence[bytes],
    bit: int,
    rng: ReproRandom,
) -> Tuple[bytes, OTTransfer]:
    """Convenience one-shot execution (both roles locally)."""
    sender = OneOfTwoSender(group, rng.fork("sender"))
    receiver = OneOfTwoReceiver(group, rng.fork("receiver"))
    setup = sender.setup()
    choice = receiver.choose(setup, bit)
    transfer = sender.transfer(messages, choice)
    return receiver.retrieve(transfer), transfer
