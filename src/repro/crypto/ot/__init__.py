"""Oblivious transfer protocols: 1-of-2, 1-of-n, and k-of-n."""

from repro.crypto.ot.base import OTChoice, OTSetup, OTTransfer
from repro.crypto.ot.k_of_n import KOfNReceiver, KOfNSender, run_k_of_n
from repro.crypto.ot.one_of_n import (
    OneOfNReceiver,
    OneOfNSender,
    TransferMaterial,
    run_one_of_n,
)
from repro.crypto.ot.one_of_two import OneOfTwoReceiver, OneOfTwoSender, run_one_of_two

__all__ = [
    "OTChoice",
    "OTSetup",
    "OTTransfer",
    "KOfNReceiver",
    "KOfNSender",
    "run_k_of_n",
    "OneOfNReceiver",
    "OneOfNSender",
    "TransferMaterial",
    "run_one_of_n",
    "OneOfTwoReceiver",
    "OneOfTwoSender",
    "run_one_of_two",
]
