"""k-out-of-n oblivious transfer.

Paper Section III-B step 3: the receiver holds indices
``{σ_1, ..., σ_k}`` and obtains exactly the corresponding ``k``
messages, while the sender learns nothing about the index set.  The
protocol's ``m``-out-of-``M`` retrieval step (Section IV-A.3) is an
instance with ``k = m`` covers among ``M`` pairs.

Construction: ``k`` parallel, independently-keyed sessions of the
1-out-of-n protocol, all answering over the *same* message vector.  In
the semi-honest model of the paper's threat model (Section III-D) the
receiver follows the protocol and queries ``k`` *distinct* indices; the
receiver class enforces distinctness locally.  (A maliciously chosen
repeated index would yield a duplicate message, never an extra one, so
sender privacy degrades gracefully.)

The transfer bandwidth is ``k`` full wrapped vectors.  For the large
``M`` of the OMPE protocol we also provide a *batched* mode in which
the sender reuses one ephemeral exponent per session across slots —
the "precompute the random polynomials" optimization discussed at the
end of paper Section VI-B.1 applies to this layer as well.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.crypto.ot.base import OTChoice, OTSetup, OTTransfer
from repro.crypto.ot.one_of_n import OneOfNReceiver, OneOfNSender, TransferMaterial
from repro.exceptions import ObliviousTransferError, ValidationError
from repro.math import fastpath
from repro.math.groups import SchnorrGroup
from repro.utils.rng import ReproRandom


class KOfNSender:
    """Sender side: one 1-of-n sub-sender per requested slot."""

    def __init__(self, group: SchnorrGroup, rng: ReproRandom) -> None:
        self.group = group
        self._rng = rng
        self._subsenders: List[OneOfNSender] = []

    def setup(self, k: int) -> List[OTSetup]:
        """Publish parameters for ``k`` parallel sessions."""
        if k < 1:
            raise ValidationError(f"k must be at least 1, got {k}")
        with obs.get_tracer().span("ot.setup", sessions=k):
            self._subsenders = [
                OneOfNSender(self.group, self._rng.fork("session", i))
                for i in range(k)
            ]
            return [sub.setup() for sub in self._subsenders]

    def transfer(
        self, messages: Sequence[bytes], choices: Sequence[OTChoice]
    ) -> List[OTTransfer]:
        """Answer every parallel session over the same message vector.

        The per-slot key-derivation material (validated payload, context
        suffixes) is memoized once in a :class:`TransferMaterial` and
        shared across all ``k`` sessions instead of being rebuilt per
        session — in a batched conversation that is ``k·m`` sessions
        over ``M·batch`` slots.  Outputs are identical to the unshared
        path on the same seeds.
        """
        if len(choices) != len(self._subsenders):
            raise ObliviousTransferError(
                f"{len(choices)} choices for {len(self._subsenders)} sessions"
            )
        material = TransferMaterial(messages)
        # Montgomery batch inversion of every session's blinding point:
        # one extended gcd for all k sessions instead of one each.  The
        # inverses are unique, so transfers are unchanged.
        inverses: Sequence[Optional[int]]
        if fastpath.enabled() and len(self._subsenders) > 1:
            inverses = self.group.batch_inv(
                [sub._setup.blinding_points[0] for sub in self._subsenders]
            )
        else:
            inverses = [None] * len(self._subsenders)
        with obs.get_tracer().span(
            "ot.transfer", sessions=len(choices), slots=len(messages)
        ):
            transfers = [
                sub.transfer(messages, choice, material=material, w_inverse=inverse)
                for sub, choice, inverse in zip(self._subsenders, choices, inverses)
            ]
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_ot_transfers_total",
                "Completed k-of-n OT sessions (sender side)",
            ).inc(len(transfers))
        return transfers


class KOfNReceiver:
    """Receiver side: enforces distinct indices, unwraps each session."""

    def __init__(self, group: SchnorrGroup, rng: ReproRandom) -> None:
        self.group = group
        self._rng = rng
        self._subreceivers: List[OneOfNReceiver] = []
        self._indices: Optional[Tuple[int, ...]] = None

    def choose(
        self, setups: Sequence[OTSetup], indices: Sequence[int], count: int
    ) -> List[OTChoice]:
        """Blind ``k`` distinct selections among ``count`` slots."""
        indices = tuple(indices)
        if len(set(indices)) != len(indices):
            raise ValidationError("k-of-n indices must be distinct")
        if len(setups) != len(indices):
            raise ObliviousTransferError(
                f"{len(setups)} setups for {len(indices)} indices"
            )
        self._indices = indices
        with obs.get_tracer().span(
            "ot.choose", sessions=len(indices), slots=count
        ):
            self._subreceivers = [
                OneOfNReceiver(self.group, self._rng.fork("session", i))
                for i in range(len(indices))
            ]
            return [
                sub.choose(setup, index, count)
                for sub, setup, index in zip(self._subreceivers, setups, indices)
            ]

    def retrieve(self, transfers: Sequence[OTTransfer]) -> List[bytes]:
        """Unwrap the chosen message of each session, in choice order."""
        if self._indices is None:
            raise ObliviousTransferError("retrieve before choose")
        if len(transfers) != len(self._subreceivers):
            raise ObliviousTransferError(
                f"{len(transfers)} transfers for {len(self._subreceivers)} sessions"
            )
        with obs.get_tracer().span("ot.retrieve", sessions=len(transfers)):
            return [
                sub.retrieve(transfer)
                for sub, transfer in zip(self._subreceivers, transfers)
            ]

    @property
    def indices(self) -> Tuple[int, ...]:
        """The chosen indices (receiver side only, for bookkeeping)."""
        if self._indices is None:
            raise ObliviousTransferError("indices requested before choose")
        return self._indices


def run_k_of_n(
    group: SchnorrGroup,
    messages: Sequence[bytes],
    indices: Sequence[int],
    rng: ReproRandom,
) -> Tuple[List[bytes], List[OTTransfer]]:
    """Convenience one-shot execution (both roles locally).

    Returns the retrieved messages (in index order given) and the
    transfers (for communication accounting).
    """
    sender = KOfNSender(group, rng.fork("sender"))
    receiver = KOfNReceiver(group, rng.fork("receiver"))
    setups = sender.setup(len(indices))
    choices = receiver.choose(setups, indices, len(messages))
    transfers = sender.transfer(messages, choices)
    return receiver.retrieve(transfers), transfers


def transfer_size_bytes(transfers: Sequence[OTTransfer], element_bytes: int) -> int:
    """Total wire size of a k-of-n transfer phase."""
    return sum(t.size_bytes(element_bytes) for t in transfers)
