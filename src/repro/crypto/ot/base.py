"""Message types and interfaces shared by the OT constructions.

All OT variants here follow the same four-step shape (paper Section
III-B), expressed as explicit message dataclasses so the protocols can
run either as direct function calls or over the simulated network of
:mod:`repro.net`:

1. sender  → receiver : :class:`OTSetup` (public parameters)
2. receiver → sender  : :class:`OTChoice` (blinded selection)
3. sender  → receiver : :class:`OTTransfer` (all wrapped payloads)
4. receiver unwraps exactly the chosen payload(s) locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import ObliviousTransferError, ValidationError
from repro.utils.serialization import register_payload_type


@register_payload_type("ot/setup")
@dataclass(frozen=True)
class OTSetup:
    """Sender's public parameters for one OT session.

    ``session`` namespaces the key derivation so concurrent sessions
    cannot be cross-fed; ``blinding_points`` carries the construction's
    public group elements (one per OT variant's needs).
    """

    session: bytes
    blinding_points: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.session:
            raise ValidationError("session identifier must be non-empty")


@register_payload_type("ot/choice")
@dataclass(frozen=True)
class OTChoice:
    """Receiver's blinded choice: one group element per parallel slot."""

    session: bytes
    blinded_keys: Tuple[int, ...]


@register_payload_type("ot/transfer")
@dataclass(frozen=True)
class OTTransfer:
    """Sender's payload: per-message ephemeral points and wrapped bytes.

    ``ephemeral_points[i]`` is ``g^{r_i}``; ``wrapped[i]`` is the i-th
    message encrypted under the key only the legitimate chooser of slot
    ``i`` can derive.
    """

    session: bytes
    ephemeral_points: Tuple[int, ...]
    wrapped: Tuple[bytes, ...]

    def __post_init__(self) -> None:
        if len(self.ephemeral_points) != len(self.wrapped):
            raise ObliviousTransferError(
                "ephemeral point and payload counts differ"
            )

    @property
    def message_count(self) -> int:
        return len(self.wrapped)

    def size_bytes(self, element_bytes: int) -> int:
        """Approximate wire size, for communication accounting."""
        return (
            len(self.session)
            + element_bytes * len(self.ephemeral_points)
            + sum(len(w) for w in self.wrapped)
        )


def validate_messages(messages: Sequence[bytes]) -> List[bytes]:
    """Validate the sender's message list (non-empty, all bytes)."""
    items = list(messages)
    if not items:
        raise ValidationError("OT requires at least one message")
    for index, message in enumerate(items):
        if not isinstance(message, (bytes, bytearray)):
            raise ValidationError(
                f"messages[{index}] must be bytes, got {type(message).__name__}"
            )
    return [bytes(m) for m in items]


def validate_index(index: int, count: int) -> int:
    """Validate a receiver index against the message count."""
    if not isinstance(index, int) or isinstance(index, bool):
        raise ValidationError(f"index must be an int, got {type(index).__name__}")
    if not 0 <= index < count:
        raise ValidationError(f"index {index} out of range for {count} messages")
    return index
