"""Cryptographic substrate: OT family, Paillier, KDF wrapping."""

from repro.crypto.hashing import kdf, unwrap_message, wrap_message
from repro.crypto.paillier import (
    FixedPointCodec,
    PaillierCipher,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)

__all__ = [
    "kdf",
    "unwrap_message",
    "wrap_message",
    "FixedPointCodec",
    "PaillierCipher",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "generate_keypair",
]
