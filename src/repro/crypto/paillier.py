"""The Paillier additively homomorphic cryptosystem.

Used as the **baseline comparator**: related work [15] (Rahulamathavan
et al.) evaluates SVM decision functions in the encrypted domain with
Paillier, the approach the paper argues "introduces too much complexity
for the computations".  ``benchmarks/bench_baseline_paillier.py``
quantifies that claim against the OMPE-based protocol.

Standard textbook Paillier with the ``g = n + 1`` simplification:

* public key ``n = p*q``; encryption of ``m`` is
  ``(1 + n)^m * r^n mod n^2`` for random unit ``r``;
* decryption uses ``λ = lcm(p-1, q-1)`` and ``L(x) = (x - 1) / n``.

Homomorphisms: ``E(a) * E(b) = E(a + b)`` and ``E(a)^k = E(k a)``.
Fixed-point encoding maps signed rationals onto ``Z_n``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple, Union

from repro import obs
from repro.exceptions import DecryptionError, KeyGenerationError, ValidationError
from repro.math import fastpath
from repro.math.numtheory import crt_combine, generate_prime, lcm, modular_inverse
from repro.utils.rng import ReproRandom


def _powmod():
    """Active modexp: bignum backend under the hot path, CPython otherwise."""
    if fastpath.enabled():
        return fastpath.get_backend().powmod
    return pow

Number = Union[int, float, Fraction]

#: Default fixed-point scaling factor for encoding reals.
DEFAULT_PRECISION = 10**8


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: modulus ``n`` (with cached ``n^2``)."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    def encrypt_raw(
        self,
        message: int,
        rng: ReproRandom,
        pool: Optional["RandomizerPool"] = None,
    ) -> int:
        """Encrypt an integer already reduced into ``Z_n``.

        ``pool`` optionally supplies a precomputed ``r^n`` randomizer
        (see :class:`RandomizerPool`); the pool draws its ``r`` values
        from the same rng in the same order, so pooled and unpooled
        encryption of the same message sequence yield identical
        ciphertexts.
        """
        if not 0 <= message < self.n:
            raise ValidationError("message out of range for modulus")
        n_sq = self.n_squared
        if pool is not None:
            randomizer = pool.take()
        else:
            r = rng.randrange_coprime(self.n)
            randomizer = _powmod()(r, self.n, n_sq)
        # (1 + n)^m = 1 + m*n (mod n^2) — the g = n + 1 shortcut.
        g_m = (1 + message * self.n) % n_sq
        return (g_m * randomizer) % n_sq

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphic addition of plaintexts."""
        return (ciphertext_a * ciphertext_b) % self.n_squared

    def multiply_plain(self, ciphertext: int, scalar: int) -> int:
        """Homomorphic multiplication by a plaintext integer."""
        powmod = _powmod()
        if scalar < 0:
            inverse = modular_inverse(ciphertext, self.n_squared)
            return powmod(inverse, -scalar, self.n_squared)
        return powmod(ciphertext, scalar, self.n_squared)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key ``(λ, μ)`` bound to its public key.

    When the prime factors ``p`` and ``q`` are retained (the default
    for keys from :func:`generate_keypair`), decryption runs through
    the standard CRT split — two half-size exponentiations modulo
    ``p²`` and ``q²`` instead of one full-size exponentiation modulo
    ``n²``, ~3-4x faster and bit-identical on every decryptable
    ciphertext.  Keys built without factors (``p = q = None``) and the
    naive-arithmetic mode use the textbook ``λ``-based path.
    """

    public_key: PaillierPublicKey
    lam: int
    mu: int
    p: Optional[int] = None
    q: Optional[int] = None

    def decrypt_raw(self, ciphertext: int) -> int:
        """Decrypt to an integer in ``Z_n``."""
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        if not 0 < ciphertext < n_sq:
            raise DecryptionError("ciphertext out of range")
        if fastpath.enabled() and self.p is not None and self.q is not None:
            return self._decrypt_crt(ciphertext)
        x = _powmod()(ciphertext, self.lam, n_sq)
        if (x - 1) % n != 0:
            raise DecryptionError("ciphertext is not a valid Paillier encryption")
        return ((x - 1) // n * self.mu) % n

    def _decrypt_crt(self, ciphertext: int) -> int:
        """CRT decryption: recover ``m mod p`` and ``m mod q`` separately.

        For prime factor ``s``, ``L_s(c^{s-1} mod s²) · h_s mod s``
        equals ``m mod s`` with ``L_s(x) = (x - 1) / s`` and
        ``h_s = (-n/s)^{-1} mod s`` (the ``g = n + 1`` simplification).
        The same validity condition as the textbook path applies:
        ``c^{s-1} ≡ 1 (mod s)`` for units, so a non-unit ciphertext is
        rejected exactly as the ``λ`` path rejects it.
        """
        p, q = self.p, self.q
        powmod = _powmod()
        residues: List[int] = []
        for prime in (p, q):
            prime_sq = prime * prime
            x = powmod(ciphertext, prime - 1, prime_sq)
            if (x - 1) % prime != 0:
                raise DecryptionError("ciphertext is not a valid Paillier encryption")
            l_value = (x - 1) // prime % prime
            h = modular_inverse(-(self.public_key.n // prime) % prime, prime)
            residues.append(l_value * h % prime)
        return crt_combine(residues, (p, q))


def generate_keypair(
    bits: int = 512, rng: Optional[ReproRandom] = None
) -> Tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with an ``n`` of roughly ``bits`` bits."""
    if bits < 16:
        raise KeyGenerationError(f"modulus of {bits} bits is too small")
    rng = rng or ReproRandom()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p != q:
            break
    n = p * q
    lam = lcm(p - 1, q - 1)
    # μ = (L(g^λ mod n²))⁻¹ = λ⁻¹ mod n for g = n + 1.
    mu = modular_inverse(lam, n)
    public = PaillierPublicKey(n=n)
    return public, PaillierPrivateKey(public_key=public, lam=lam, mu=mu, p=p, q=q)


class RandomizerPool:
    """Precomputed ``r^n`` randomizers for Paillier encryption.

    The ``r^n mod n²`` exponentiation dominates encryption cost and is
    independent of the message, so it can be hoisted into an offline
    phase and amortized across a batch — the PINFER-style randomizer
    precomputation.  The pool draws its ``r`` values from the caller's
    rng in encryption order, so the ``i``-th pooled encryption uses
    exactly the randomizer the ``i``-th unpooled encryption would have
    drawn: ciphertext streams are identical.
    """

    def __init__(
        self, public_key: PaillierPublicKey, rng: ReproRandom, batch: int = 32
    ) -> None:
        if batch < 1:
            raise ValidationError(f"batch must be at least 1, got {batch}")
        self.public_key = public_key
        self._rng = rng
        self._batch = batch
        self._ready: List[int] = []
        self.precomputed_total = 0
        self.taken_total = 0
        self.refills_total = 0

    def refill(self, count: Optional[int] = None, trigger: str = "manual") -> None:
        """Precompute ``count`` (default: one batch of) randomizers.

        ``trigger`` labels the refill counter: ``"manual"`` (explicit
        warm-up), ``"empty"`` (a :meth:`take` found the pool dry and
        had to refill inline — the slow path long batch runs should
        avoid), or ``"low-water"`` (a proactive top-up by
        :class:`~repro.crypto.precompute.SharedRandomizerPool`).
        """
        count = self._batch if count is None else count
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        powmod = _powmod()
        started = time.perf_counter()
        fresh = [
            powmod(self._rng.randrange_coprime(n), n, n_sq) for _ in range(count)
        ]
        elapsed = time.perf_counter() - started
        fresh.reverse()  # take() pops from the end, oldest first
        self._ready[:0] = fresh
        self.precomputed_total += count
        self.refills_total += 1
        self._record_health(refill_seconds=elapsed, trigger=trigger)

    def take(self) -> int:
        """Pop the next randomizer, refilling the pool when empty."""
        if not self._ready:
            self.refill(trigger="empty")
        self.taken_total += 1
        randomizer = self._ready.pop()
        self._record_health()
        return randomizer

    @property
    def available(self) -> int:
        """Randomizers currently precomputed and unused."""
        return len(self._ready)

    def export_ready(self) -> List[int]:
        """The unused randomizers, oldest first (for cross-process sharding)."""
        return list(reversed(self._ready))

    def adopt(self, ready: List[int], precomputed_total: Optional[int] = None) -> None:
        """Replace the ready queue with externally precomputed randomizers.

        Used by the precompute service to hand each engine worker a
        *disjoint* shard of a warm batch — randomizers are never
        duplicated across processes (reuse would break semantic
        security), only redistributed.
        """
        self._ready = list(reversed(ready))
        self.precomputed_total = (
            len(ready) if precomputed_total is None else precomputed_total
        )
        self._record_health()

    def _record_health(
        self,
        refill_seconds: Optional[float] = None,
        trigger: Optional[str] = None,
    ) -> None:
        """Export pool health into the metrics registry (when enabled).

        The plain attributes (``precomputed_total``, ``available``,
        ``taken_total``) remain the source of truth; the gauges mirror
        them so ``repro observe`` / ``repro top`` see pool state
        without holding a reference to the pool object.
        """
        metrics = obs.get_metrics()
        if not metrics.enabled:
            return
        bits = str(self.public_key.n.bit_length())
        metrics.gauge(
            "repro_precompute_randomizers_total",
            "Randomizers ever precomputed by a Paillier pool",
        ).set(self.precomputed_total, bits=bits)
        metrics.gauge(
            "repro_precompute_randomizers_available",
            "Randomizers precomputed and not yet consumed",
        ).set(len(self._ready), bits=bits)
        metrics.gauge(
            "repro_precompute_randomizers_outstanding",
            "Randomizers already consumed by encryptions",
        ).set(self.taken_total, bits=bits)
        if refill_seconds is not None:
            metrics.histogram(
                "repro_precompute_refill_seconds",
                "Latency of Paillier randomizer-pool refills",
            ).observe(refill_seconds, bits=bits)
        if trigger is not None:
            metrics.counter(
                "repro_precompute_pool_refills_total",
                "Paillier randomizer-pool refills, by trigger",
            ).inc(trigger=trigger, bits=bits)


class FixedPointCodec:
    """Signed fixed-point encoding of rationals into ``Z_n``.

    Values ``v`` map to ``round(v * precision) mod n``; anything above
    ``n // 2`` decodes as negative.  Homomorphic sums of ``k`` products
    remain decodable while ``|Σ a_i b_i| * precision² < n / 2``.
    """

    def __init__(self, public_key: PaillierPublicKey, precision: int = DEFAULT_PRECISION):
        if precision <= 0:
            raise ValidationError(f"precision must be positive, got {precision}")
        self.public_key = public_key
        self.precision = precision

    def encode(self, value: Number) -> int:
        """Encode a signed rational as an element of ``Z_n``."""
        scaled = round(Fraction(value) * self.precision)
        if abs(scaled) >= self.public_key.n // 2:
            raise ValidationError("value overflows the fixed-point range")
        return scaled % self.public_key.n

    def decode(self, element: int, scale_power: int = 1) -> Fraction:
        """Decode from ``Z_n``; ``scale_power`` counts plain multiplications."""
        n = self.public_key.n
        element %= n
        signed = element - n if element > n // 2 else element
        return Fraction(signed, self.precision**scale_power)


class PaillierCipher:
    """Convenience wrapper pairing keys with a fixed-point codec."""

    def __init__(
        self,
        public_key: PaillierPublicKey,
        private_key: Optional[PaillierPrivateKey] = None,
        precision: int = DEFAULT_PRECISION,
        rng: Optional[ReproRandom] = None,
        pool_batch: Optional[int] = None,
    ) -> None:
        self.public_key = public_key
        self.private_key = private_key
        self.codec = FixedPointCodec(public_key, precision)
        self._rng = rng or ReproRandom()
        self.pool: Optional[RandomizerPool] = None
        if pool_batch is not None:
            self.pool = RandomizerPool(public_key, self._rng, batch=pool_batch)

    def encrypt(self, value: Number) -> int:
        """Encrypt a signed rational (fixed-point).

        With a randomizer pool configured (``pool_batch``), the ``r^n``
        work is taken from the precomputed pool; the ciphertext stream
        is identical to the unpooled one on the same rng seed.
        """
        return self.public_key.encrypt_raw(
            self.codec.encode(value), self._rng, pool=self.pool
        )

    def decrypt(self, ciphertext: int, scale_power: int = 1) -> Fraction:
        """Decrypt to a signed rational."""
        if self.private_key is None:
            raise DecryptionError("no private key available")
        return self.codec.decode(self.private_key.decrypt_raw(ciphertext), scale_power)

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphic plaintext addition."""
        return self.public_key.add(ciphertext_a, ciphertext_b)

    def multiply_plain(self, ciphertext: int, value: Number) -> int:
        """Homomorphic multiplication by a plaintext rational.

        The plaintext is fixed-point encoded, so the result carries one
        extra ``precision`` factor (``scale_power=2`` on decryption).
        """
        scaled = round(Fraction(value) * self.codec.precision)
        return self.public_key.multiply_plain(ciphertext, scaled)
