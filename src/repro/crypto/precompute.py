"""Warm shared precompute service for group and Paillier material.

PR 3 introduced two per-process caches: the window-8 generator tables
in :mod:`repro.math.groups` and the Paillier ``r^n``
:class:`~repro.crypto.paillier.RandomizerPool`.  Both were rebuilt
silently in every process that touched them — notably in *every*
:class:`~repro.engine.engine.ProtocolEngine` worker, because nothing
warmed the parent before the fork.  This module promotes those caches
into an explicit service:

* :meth:`PrecomputeService.warm_group` builds (or confirms) the
  generator table for a ``(p, q, g)`` triple **once**, recording
  ``repro_precompute_hits_total`` / ``repro_precompute_misses_total``
  and build-time histograms in the active metrics registry;
* :meth:`PrecomputeService.export_state` /
  :meth:`PrecomputeService.install_state` serialize warm material into
  a picklable blob — the engine ships it inside the worker spec, so
  workers under both ``fork`` (inherit) and ``spawn`` (install) start
  warm, and :class:`~repro.net.service.TrainerServer` warms at
  construction so every accepted session runs on hot tables;
* :meth:`PrecomputeService.paillier_pool` hands out one shared,
  thread-safe randomizer pool per public key.  Exported pool state is
  **sharded, never duplicated** across workers: reusing an ``r^n``
  randomizer in two ciphertexts would break semantic security.

The service is deliberately process-global (one warm store per
process), mirroring the caches it fronts; :func:`reset_precompute_service`
exists for test isolation.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.crypto.paillier import PaillierPublicKey, RandomizerPool
from repro.exceptions import ValidationError
from repro.math import groups
from repro.math.groups import SchnorrGroup
from repro.utils.rng import ReproRandom, derive_seed


class SharedRandomizerPool:
    """A thread-safe facade over one :class:`RandomizerPool`.

    ``TrainerServer`` sessions run on concurrent threads; the raw pool
    mutates a plain list.  This wrapper serializes ``take``/``refill``
    so one warm pool can serve every session.  It is duck-compatible
    with the raw pool where it matters: ``encrypt_raw(pool=...)`` only
    calls :meth:`take`.

    ``low_water`` keeps sustained batch runs warm: whenever a take
    leaves fewer than that many randomizers ready, the pool tops itself
    up by a batch *before* the next encryption arrives, so
    ``repro_precompute_randomizers_available`` never silently hits zero
    and no encryption ever pays the cold ``trigger="empty"`` refill
    inline.  ``low_water=0`` restores the old drain-then-refill
    behaviour.
    """

    def __init__(self, pool: RandomizerPool, low_water: int = 0) -> None:
        if low_water < 0:
            raise ValidationError(
                f"low_water must be non-negative, got {low_water}"
            )
        self._pool = pool
        self._low_water = low_water
        self._lock = threading.Lock()

    def take(self) -> int:
        with self._lock:
            randomizer = self._pool.take()
            if self._low_water and self._pool.available <= self._low_water:
                self._pool.refill(trigger="low-water")
            return randomizer

    def refill(self, count: Optional[int] = None) -> None:
        with self._lock:
            self._pool.refill(count)

    @property
    def low_water(self) -> int:
        return self._low_water

    @property
    def refills_total(self) -> int:
        return self._pool.refills_total

    @property
    def available(self) -> int:
        return self._pool.available

    @property
    def precomputed_total(self) -> int:
        return self._pool.precomputed_total

    @property
    def public_key(self) -> PaillierPublicKey:
        return self._pool.public_key


class PrecomputeService:
    """Process-wide warm store of group tables and Paillier pools."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._lock = threading.Lock()
        self._pools: Dict[int, SharedRandomizerPool] = {}

    # -- group tables ------------------------------------------------------

    def warm_group(self, group: SchnorrGroup) -> None:
        """Ensure the generator table for ``group`` is built and hot.

        A miss builds the table (counted inside
        :meth:`SchnorrGroup.fixed_base_table` with its build-time
        histogram); a hit is counted here as
        ``repro_precompute_hits_total{kind="fixed-base-table"}``.
        """
        before = groups.fixed_base_table_stats()["builds"]
        group.fixed_base_table()
        if groups.fixed_base_table_stats()["builds"] == before:
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "repro_precompute_hits_total",
                    "Precompute-store hits served from warm material",
                ).inc(kind="fixed-base-table")

    def warm_groups(self, group_list: Sequence[SchnorrGroup]) -> None:
        for group in group_list:
            self.warm_group(group)

    def warmed_group_keys(self) -> List[tuple]:
        """``(p, q, g)`` triples currently warm in this process."""
        return groups.cached_table_keys()

    # -- paillier pools ----------------------------------------------------

    def paillier_pool(
        self,
        public_key: PaillierPublicKey,
        batch: int = 64,
        warm: bool = True,
        low_water: Optional[int] = None,
    ) -> SharedRandomizerPool:
        """One shared randomizer pool per public key, built on demand.

        The pool draws from a dedicated rng seeded by
        ``derive_seed(service seed, "paillier-pool", n)`` — shared
        pools trade the pooled-equals-unpooled ciphertext-stream
        guarantee (which requires the *caller's* rng) for cross-session
        amortization; callers needing that guarantee keep constructing
        private pools via ``PaillierCipher(pool_batch=...)``.

        ``low_water`` defaults to a quarter batch: sustained batch runs
        (the linkage pipeline's million-pair jobs) top the pool up
        proactively instead of letting an encryption hit an empty pool
        and pay a cold inline refill.  Pass ``low_water=0`` for the old
        drain-then-refill behaviour.
        """
        if batch < 1:
            raise ValidationError(f"batch must be at least 1, got {batch}")
        if low_water is None:
            low_water = max(1, batch // 4)
        key = public_key.n
        with self._lock:
            shared = self._pools.get(key)
            if shared is None:
                rng = ReproRandom(derive_seed(self._seed, "paillier-pool", key))
                shared = SharedRandomizerPool(
                    RandomizerPool(public_key, rng, batch=batch),
                    low_water=low_water,
                )
                self._pools[key] = shared
        if warm and shared.available == 0:
            shared.refill()
        return shared

    # -- cross-process hand-off --------------------------------------------

    def export_state(
        self,
        group_list: Optional[Sequence[SchnorrGroup]] = None,
        shard_index: int = 0,
        shard_count: int = 1,
    ) -> dict:
        """Serialize warm material for another process (picklable).

        Tables are exported whole (they are pure public precompute);
        pool randomizers are exported as the ``shard_index``-th of
        ``shard_count`` disjoint slices so no randomizer ever lands in
        two processes.
        """
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ValidationError(
                f"invalid shard {shard_index}/{shard_count}"
            )
        keys = None
        if group_list is not None:
            keys = [(g.p, g.q, g.g) for g in group_list]
        with self._lock:
            pools = [
                {
                    "n": shared.public_key.n,
                    "ready": shared._pool.export_ready()[shard_index::shard_count],
                    "batch": shared._pool._batch,
                }
                for shared in self._pools.values()
            ]
        return {
            "tables": groups.export_fixed_base_tables(keys),
            "pools": pools,
            "shard": (shard_index, shard_count),
        }

    def install_state(self, state: dict) -> Dict[str, int]:
        """Install exported material into this process's warm store.

        Returns ``{"tables": installed, "pools": installed}``.  Under
        ``fork`` the tables already exist (inherited) and install is a
        no-op; under ``spawn`` this is what makes the worker warm.
        """
        installed_tables = groups.install_fixed_base_tables(
            state.get("tables", ())
        )
        installed_pools = 0
        shard_index, shard_count = state.get("shard", (0, 1))
        for blob in state.get("pools", ()):
            public_key = PaillierPublicKey(n=blob["n"])
            shared = self.paillier_pool(
                public_key, batch=blob.get("batch", 64), warm=False
            )
            with shared._lock:
                if blob["ready"]:
                    shared._pool.adopt(blob["ready"])
                    installed_pools += 1
                if shard_count > 1:
                    # Post-shard refills MUST diverge per worker: every
                    # process's pool was seeded with the same
                    # ``(seed, "paillier-pool", n)`` stream, so once a
                    # long batch run drains its shard, identically
                    # seeded refills would hand the *same* ``r^n``
                    # randomizers to every worker — randomizer reuse
                    # across ciphertexts, a semantic-security break.
                    # Re-seed the refill stream with the shard index so
                    # exhausted shards refill disjointly.
                    shared._pool._rng = ReproRandom(
                        derive_seed(
                            self._seed,
                            "paillier-pool-shard",
                            blob["n"],
                            shard_index,
                            shard_count,
                        )
                    )
        return {"tables": installed_tables, "pools": installed_pools}

    # -- observability -----------------------------------------------------

    def export_metrics(self, scope: str = "process") -> None:
        """Mirror the (hot-path-cheap) table cache counters as gauges.

        Table *hits* are tracked in a plain dict because they happen
        once per ``exp_g``; this pushes them into the registry at a
        boundary (engine drain, ``repro observe``) under a ``scope``
        label so per-worker gauges survive the snapshot merge.
        """
        metrics = obs.get_metrics()
        if not metrics.enabled:
            return
        stats = groups.fixed_base_table_stats()
        metrics.gauge(
            "repro_precompute_table_hits",
            "Generator-table cache hits in this scope",
        ).set(stats["hits"], scope=scope)
        metrics.gauge(
            "repro_precompute_table_builds",
            "Generator-table builds in this scope",
        ).set(stats["builds"], scope=scope)

    def stats(self) -> dict:
        """Human-readable snapshot for the CLI."""
        table_stats = groups.fixed_base_table_stats()
        with self._lock:
            pool_stats = {
                str(n): {
                    "available": shared.available,
                    "precomputed_total": shared.precomputed_total,
                }
                for n, shared in self._pools.items()
            }
        return {
            "tables": {
                "cached": len(groups.cached_table_keys()),
                **table_stats,
            },
            "paillier_pools": pool_stats,
        }


_SERVICE: Optional[PrecomputeService] = None
_SERVICE_LOCK = threading.Lock()


def get_precompute_service() -> PrecomputeService:
    """The process-global precompute service (created on first use)."""
    global _SERVICE
    if _SERVICE is None:
        with _SERVICE_LOCK:
            if _SERVICE is None:
                _SERVICE = PrecomputeService()
    return _SERVICE


def reset_precompute_service() -> None:
    """Drop the global service (tests); group tables stay cached."""
    global _SERVICE
    with _SERVICE_LOCK:
        _SERVICE = None
