"""Real TCP transport for the two-party protocols.

The in-memory :class:`~repro.net.channel.Channel` runs both parties
lock-step inside one process; this module runs them over an actual
socket.  Three layers:

* :class:`WireConnection` — length-prefixed framing over a blocking
  socket: each frame is a 4-byte big-endian length followed by one
  encoded message (:func:`repro.utils.serialization.encode_message`).
  All transport failures — peer EOF, resets, timeouts, hostile length
  prefixes — surface as typed :class:`~repro.exceptions.ProtocolError`
  and bump ``repro_wire_faults_total{kind=...}``.
* :class:`WireChannel` — the :class:`Channel` send/receive contract
  (``parties``, ``transcript``, ``pending``, ``assert_drained``) over a
  :class:`WireConnection`, so every protocol in :mod:`repro.core` runs
  unchanged over a real connection.  ``Message.size_bytes`` is the
  *true encoded payload size* — the same number ``measure_size``
  computes for the in-memory transport — so per-phase byte accounting
  (:meth:`~repro.net.transcript.Transcript.bytes_by_phase`) is
  identical across transports.  Frame overhead (version byte, type
  label, length prefix) is accounted separately under
  ``repro_wire_bytes_total``.
* :func:`listen` / :func:`connect` — socket lifecycle helpers; the
  client side retries refused connections with a backoff
  (``repro_wire_retries_total``), the recovery path expected from
  clients of a restarting trainer service.
"""

from __future__ import annotations

import collections
import errno
import select
import socket
import struct
import threading
import time
from typing import Any, Optional, Tuple

from repro import obs
from repro.exceptions import ProtocolError, ValidationError
from repro.net.channel import LinkModel, observe_message
from repro.net.message import Message
from repro.net.transcript import Transcript
from repro.utils.serialization import decode_message, encode_message

#: Hard ceiling on one frame's length prefix.  A hostile peer can claim
#: any 32-bit length; bounding it keeps a malformed or malicious prefix
#: from provoking a multi-gigabyte allocation before the decoder ever
#: sees a byte.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Frame header: unsigned 32-bit big-endian payload length.
_HEADER = struct.Struct(">I")

_FAULT_COUNTER = "repro_wire_faults_total"
_FAULT_DESCRIPTION = "Observed TCP transport faults, by kind"


def _wire_fault(kind: str) -> None:
    obs.record_fault(kind, _FAULT_COUNTER, _FAULT_DESCRIPTION)


class ConnectionClosed(ProtocolError):
    """The peer closed the connection at a frame boundary.

    Distinguishes an orderly hang-up (EOF before any byte of the next
    frame) from a mid-frame truncation: a serve loop can treat the
    former as a departed client and the latter as a corrupted stream.
    """


class AcceptTimeout(ProtocolError):
    """:func:`accept` waited out its timeout with no peer arriving."""


class ListenerClosed(ProtocolError):
    """:func:`accept` found the listening socket closed — the normal
    way another thread stops a serve loop."""


class WireConnection:
    """Length-prefixed message framing over a blocking TCP socket.

    ``timeout`` bounds every blocking socket operation; an expired
    timeout, a peer disconnect, or an oversized frame all raise
    :class:`ProtocolError` (never a bare ``socket`` or ``struct``
    error) so protocol drivers have exactly one failure type to handle.
    """

    #: Transport label for session telemetry (``transport="tcp"``).
    transport = "tcp"

    def __init__(
        self,
        sock: socket.socket,
        timeout: Optional[float] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        if max_frame_bytes < 1:
            raise ValidationError("max_frame_bytes must be positive")
        self._sock = sock
        self.max_frame_bytes = max_frame_bytes
        self.bytes_sent = 0
        self.bytes_received = 0
        self._closed = False
        sock.settimeout(timeout)
        # The protocols are strictly request/response; disabling Nagle
        # keeps each small frame from waiting on a delayed ACK.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (e.g. a socketpair in tests)

    # -- framing -------------------------------------------------------------

    def send_frame(self, data: bytes) -> int:
        """Send one frame; returns the bytes put on the wire."""
        if len(data) > self.max_frame_bytes:
            _wire_fault("oversized-send")
            raise ProtocolError(
                f"frame of {len(data)} bytes exceeds the "
                f"{self.max_frame_bytes}-byte frame cap"
            )
        frame = _HEADER.pack(len(data)) + data
        try:
            self._sock.sendall(frame)
        except socket.timeout as exc:
            _wire_fault("timeout")
            raise ProtocolError("send timed out") from exc
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            _wire_fault("disconnect")
            raise ProtocolError(f"peer connection lost during send: {exc}") from exc
        self.bytes_sent += len(frame)
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_wire_bytes_total", "Raw TCP bytes, by direction"
            ).inc(len(frame), direction="sent")
        return len(frame)

    def recv_frame(self) -> bytes:
        """Receive one frame; returns the message bytes (header stripped).

        A peer that hangs up *between* frames raises
        :class:`ConnectionClosed` (a :class:`ProtocolError` subclass);
        one that vanishes mid-frame raises a plain
        :class:`ProtocolError`.
        """
        header = self._recv_exact(_HEADER.size, "frame header", at_boundary=True)
        (length,) = _HEADER.unpack(header)
        if length > self.max_frame_bytes:
            _wire_fault("oversized-recv")
            raise ProtocolError(
                f"peer announced a {length}-byte frame, above the "
                f"{self.max_frame_bytes}-byte frame cap"
            )
        data = self._recv_exact(length, "frame body")
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_wire_bytes_total", "Raw TCP bytes, by direction"
            ).inc(_HEADER.size + length, direction="received")
        return data

    def _recv_exact(self, count: int, what: str, at_boundary: bool = False) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except socket.timeout as exc:
                _wire_fault("timeout")
                raise ProtocolError(f"timed out waiting for {what}") from exc
            except (ConnectionResetError, OSError) as exc:
                _wire_fault("disconnect")
                raise ProtocolError(
                    f"peer connection lost while reading {what}: {exc}"
                ) from exc
            if not chunk:
                _wire_fault("disconnect")
                if at_boundary and remaining == count:
                    raise ConnectionClosed(
                        f"peer closed the connection before {what}"
                    )
                raise ProtocolError(
                    f"peer closed the connection while reading {what} "
                    f"({count - remaining} of {count} bytes arrived)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
            self.bytes_received += len(chunk)
        return b"".join(chunks)

    def set_timeout(self, timeout: Optional[float]) -> None:
        """Re-bound every subsequent blocking operation."""
        self._sock.settimeout(timeout)

    def detach(self) -> socket.socket:
        """Hand off the underlying socket and retire this wrapper.

        Used when a connection is upgraded to protocol v2: the accept
        thread's blocking :class:`WireConnection` surrenders its socket
        to the multiplexing event loop.  The wrapper reads as closed
        afterwards (so accounting sees it gone) but the socket itself is
        left untouched — the caller owns it from here.
        """
        if self._closed:
            raise ProtocolError("cannot detach a closed connection")
        self._closed = True
        sock, self._sock = self._sock, None
        return sock

    # -- polling -------------------------------------------------------------

    def readable(self) -> bool:
        """True when unread peer data is buffered on the socket."""
        if self._closed:
            return False
        ready, _, _ = select.select([self._sock], [], [], 0)
        if not ready:
            return False
        # EOF also reports readable; peek to tell data from close.
        try:
            return bool(self._sock.recv(1, socket.MSG_PEEK))
        except (BlockingIOError, socket.timeout):
            return False
        except OSError:
            return False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run on this endpoint.

        A blocked peer thread whose receive fails can consult this to
        tell a local, deliberate close (server drain) from a genuine
        peer fault.
        """
        return self._closed

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "WireConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _MemoryPipe:
    """One direction of an in-memory connection: a frame queue.

    Frames are atomic (no mid-frame truncation is representable), so
    the reader only ever observes frame boundaries — exactly the
    guarantee the TCP framing layer provides on top of the stream.
    """

    def __init__(self) -> None:
        self.frames: "collections.deque[bytes]" = collections.deque()
        self.condition = threading.Condition()
        self.writer_closed = False  # EOF for the reader
        self.reader_closed = False  # broken pipe for the writer


class MemoryConnection:
    """A :class:`WireConnection`-shaped endpoint over in-process queues.

    :func:`memory_pair` returns two of these wired back to back.  The
    failure surface mirrors TCP: sending after the peer closed raises
    :class:`ProtocolError` (broken pipe), receiving after the peer
    closed raises :class:`ConnectionClosed` (EOF at a frame boundary),
    and a *local* :meth:`close` wakes this endpoint's own blocked
    receive with a plain :class:`ProtocolError` — the force-close-
    during-drain semantics the trainer server relies on.  Byte and
    fault accounting match :class:`WireConnection` (including the
    4-byte frame header), so per-phase byte counts are identical
    across transports.
    """

    #: Transport label for session telemetry (``transport="memory"``).
    transport = "memory"

    def __init__(
        self,
        inbound: _MemoryPipe,
        outbound: _MemoryPipe,
        timeout: Optional[float] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        if max_frame_bytes < 1:
            raise ValidationError("max_frame_bytes must be positive")
        self._in = inbound
        self._out = outbound
        self._timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self.bytes_sent = 0
        self.bytes_received = 0
        self._closed = False

    # -- framing -------------------------------------------------------------

    def send_frame(self, data: bytes) -> int:
        if len(data) > self.max_frame_bytes:
            _wire_fault("oversized-send")
            raise ProtocolError(
                f"frame of {len(data)} bytes exceeds the "
                f"{self.max_frame_bytes}-byte frame cap"
            )
        with self._out.condition:
            if self._closed or self._out.reader_closed:
                _wire_fault("disconnect")
                raise ProtocolError(
                    "peer connection lost during send: pipe closed"
                )
            self._out.frames.append(bytes(data))
            self._out.condition.notify_all()
        frame_len = _HEADER.size + len(data)
        self.bytes_sent += frame_len
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_wire_bytes_total", "Raw TCP bytes, by direction"
            ).inc(frame_len, direction="sent")
        return frame_len

    def recv_frame(self) -> bytes:
        deadline = (
            time.monotonic() + self._timeout if self._timeout is not None else None
        )
        with self._in.condition:
            while True:
                if self._in.frames:
                    data = self._in.frames.popleft()
                    break
                if self._closed:
                    _wire_fault("disconnect")
                    raise ProtocolError(
                        "peer connection lost while reading frame header: "
                        "connection closed locally"
                    )
                if self._in.writer_closed:
                    _wire_fault("disconnect")
                    raise ConnectionClosed(
                        "peer closed the connection before frame header"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        _wire_fault("timeout")
                        raise ProtocolError("timed out waiting for frame header")
                self._in.condition.wait(remaining)
        self.bytes_received += _HEADER.size + len(data)
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_wire_bytes_total", "Raw TCP bytes, by direction"
            ).inc(_HEADER.size + len(data), direction="received")
        return data

    def set_timeout(self, timeout: Optional[float]) -> None:
        self._timeout = timeout

    # -- polling -------------------------------------------------------------

    def readable(self) -> bool:
        with self._in.condition:
            return bool(self._in.frames) and not self._closed

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._out.condition:
            self._out.writer_closed = True  # peer's reads see EOF
            self._out.condition.notify_all()
        with self._in.condition:
            self._in.reader_closed = True  # peer's sends see broken pipe
            self._in.condition.notify_all()  # wake our own blocked recv

    def __enter__(self) -> "MemoryConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def memory_pair(
    timeout: Optional[float] = None,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> Tuple[MemoryConnection, MemoryConnection]:
    """Two in-memory connection endpoints wired back to back.

    A drop-in replacement for a connected TCP pair in hermetic tests
    (no sockets, no ports, no ``socket`` marker) and the in-memory leg
    of the cross-transport trace conformance suite.
    """
    a_to_b = _MemoryPipe()
    b_to_a = _MemoryPipe()
    first = MemoryConnection(b_to_a, a_to_b, timeout, max_frame_bytes)
    second = MemoryConnection(a_to_b, b_to_a, timeout, max_frame_bytes)
    return first, second


class WireChannel:
    """The :class:`Channel` contract over one TCP connection endpoint.

    Unlike the in-memory channel — one shared object holding both
    inboxes — each process holds *its own* ``WireChannel`` wrapping its
    end of the connection.  ``local`` is this process's party name;
    sends must originate from it and receives are addressed to it.

    The transcript records both the messages this endpoint sends and
    the ones it receives, so after a clean run each side holds the
    complete conversation and ``bytes_by_phase()`` matches the
    in-memory transcript bit for bit.  The simulated clock likewise
    advances on both send and receive, mirroring the shared in-memory
    clock.  Send-side metrics go through the same
    :func:`~repro.net.channel.observe_message` helper as the in-memory
    channel; receives only update the round-trip direction state, so
    two endpoints sharing one registry count each message exactly once.
    """

    def __init__(
        self,
        local: str,
        peer: str,
        connection: WireConnection,
        link: Optional[LinkModel] = None,
        transcript: Optional[Transcript] = None,
    ) -> None:
        if local == peer:
            raise ValidationError("a channel needs two distinct parties")
        if not local or not peer:
            raise ValidationError("party names must be non-empty")
        self.local = local
        self.peer = peer
        self.parties: Tuple[str, str] = (local, peer)
        self.connection = connection
        self.link = link or LinkModel()
        self.transcript = transcript if transcript is not None else Transcript()
        self.simulated_time: float = 0.0
        self._last_direction: Optional[Tuple[str, str]] = None

    def _require_local(self, party: str, action: str) -> None:
        if party != self.local:
            raise ProtocolError(
                f"{party!r} cannot {action} on {self.local!r}'s wire endpoint"
            )

    def send(self, sender: str, msg_type: str, payload: Any) -> Message:
        """Encode and transmit one message to the peer."""
        self._require_local(sender, "send")
        encoded = encode_message(msg_type, payload)
        # Header = version byte + length-prefixed type label; the rest
        # is payload — the quantity both transports record as
        # ``Message.size_bytes``.
        payload_bytes = len(encoded) - (1 + 4 + len(msg_type.encode("utf-8")))
        message = Message(
            sender=sender,
            recipient=self.peer,
            msg_type=msg_type,
            payload=payload,
            size_bytes=payload_bytes,
        )
        self.connection.send_frame(encoded)
        self.transcript.record(message)
        self.simulated_time += self.link.transfer_time(message.size_bytes)
        self._last_direction = observe_message(message, self._last_direction)
        return message

    def receive(self, recipient: str, expected_type: Optional[str] = None) -> Any:
        """Block for the peer's next message; returns the payload."""
        self._require_local(recipient, "receive")
        data = self.connection.recv_frame()
        msg_type, payload, payload_bytes = decode_message(data)
        message = Message(
            sender=self.peer,
            recipient=recipient,
            msg_type=msg_type,
            payload=payload,
            size_bytes=payload_bytes,
        )
        self.transcript.record(message)
        self.simulated_time += self.link.transfer_time(message.size_bytes)
        # Count the message's metrics on the sending side only, but keep
        # the direction state in sync so this endpoint's next send knows
        # whether the conversation turned around.
        self._last_direction = (self.peer, recipient)
        if expected_type is not None and msg_type != expected_type:
            raise ProtocolError(
                f"{recipient} expected {expected_type!r} but got {msg_type!r}"
            )
        return payload

    def pending(self, recipient: str) -> int:
        """1 when peer data is waiting on the socket, else 0.

        TCP does not expose a message count without consuming the
        stream, so this is a readability poll, not a queue length; the
        values still satisfy the contract's only uses (zero/non-zero).
        """
        self._require_local(recipient, "poll")
        return 1 if self.connection.readable() else 0

    def assert_drained(self) -> None:
        """Raise unless no peer data remains buffered (clean completion)."""
        if self.connection.readable():
            raise ProtocolError(
                f"{self.local} still has undelivered peer data on the wire"
            )

    def close(self) -> None:
        self.connection.close()


def listen(
    host: str = "127.0.0.1", port: int = 0, backlog: int = 4
) -> socket.socket:
    """Open a listening TCP socket (``port=0`` picks a free port)."""
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen(backlog)
    except OSError as exc:
        server.close()
        raise ProtocolError(f"cannot listen on {host}:{port}: {exc}") from exc
    return server


#: Errno values that mean the listening socket itself is gone (closed
#: from another thread), as opposed to a transient accept-time fault
#: such as ``EMFILE`` under descriptor pressure.
_LISTENER_CLOSED_ERRNOS = frozenset({errno.EBADF, errno.EINVAL, errno.ENOTSOCK})


def accept(
    server: socket.socket,
    timeout: Optional[float] = None,
    connection_timeout: Optional[float] = None,
) -> WireConnection:
    """Accept one peer connection as a :class:`WireConnection`.

    ``timeout`` bounds only the wait for a peer to arrive; the accepted
    connection's per-operation timeout is ``connection_timeout``
    (default ``None`` — no timeout), *never* the accept timeout.
    Earlier revisions handed the accepted connection the accept timeout,
    which gave direct callers a surprise per-op deadline (or a
    forever-blocking connection when accept had none).

    Stop conditions raise typed subclasses — :class:`AcceptTimeout`
    when no peer arrived, :class:`ListenerClosed` when the listening
    socket was closed under us — while transient accept faults (e.g.
    ``EMFILE`` under load) raise plain :class:`ProtocolError`, so a
    serve loop can keep serving through the latter.
    """
    try:
        server.settimeout(timeout)
        sock, _ = server.accept()
    except socket.timeout as exc:
        raise AcceptTimeout("timed out waiting for a peer to connect") from exc
    except OSError as exc:
        if exc.errno in _LISTENER_CLOSED_ERRNOS or server.fileno() == -1:
            raise ListenerClosed(
                f"listening socket is closed: {exc}"
            ) from exc
        raise ProtocolError(f"accept failed: {exc}") from exc
    return WireConnection(sock, timeout=connection_timeout)


#: Connect-time errno values worth retrying: the peer may simply not be
#: listening *yet* (refused, reset, aborted) or the path may be
#: momentarily down (unreachable, timed out).
_RETRYABLE_CONNECT_ERRNOS = frozenset({
    errno.ECONNREFUSED,
    errno.ECONNRESET,
    errno.ECONNABORTED,
    errno.EHOSTUNREACH,
    errno.ENETUNREACH,
    errno.ETIMEDOUT,
})


def _retryable_connect_error(exc: OSError) -> bool:
    """True when retrying the connection could plausibly succeed.

    Name-resolution failures (``socket.gaierror``), bad arguments, and
    permission errors are permanent: retrying a bad hostname would only
    burn the full ``attempts x retry_delay_s`` budget before failing
    with the same error.
    """
    if isinstance(exc, socket.gaierror):
        return False
    if isinstance(exc, (ConnectionRefusedError, socket.timeout)):
        return True
    return exc.errno in _RETRYABLE_CONNECT_ERRNOS


def connect(
    host: str,
    port: int,
    timeout: Optional[float] = None,
    attempts: int = 1,
    retry_delay_s: float = 0.05,
) -> WireConnection:
    """Connect to a listening peer, retrying refused connections.

    A trainer service may still be binding its port (or restarting)
    when the client first dials; ``attempts > 1`` retries with a linear
    backoff, bumping ``repro_wire_retries_total`` per retry, and raises
    :class:`ProtocolError` once the budget is exhausted.  Only
    transient failures are retried — refused/reset connections,
    timeouts, unreachable hosts; a permanent error such as a
    name-resolution failure fails fast on the first attempt.
    """
    if attempts < 1:
        raise ValidationError(f"attempts must be at least 1, got {attempts}")
    if retry_delay_s < 0:
        raise ValidationError("retry_delay_s must be non-negative")
    last_error: Optional[Exception] = None
    for attempt in range(attempts):
        if attempt:
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "repro_wire_retries_total",
                    "Client connection retries against a busy peer",
                ).inc()
            time.sleep(retry_delay_s * attempt)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(timeout)
            sock.connect((host, port))
            return WireConnection(sock, timeout=timeout)
        except OSError as exc:
            sock.close()
            last_error = exc
            if not _retryable_connect_error(exc):
                _wire_fault("connect-failed")
                raise ProtocolError(
                    f"cannot connect to {host}:{port} "
                    f"(not retryable): {exc}"
                ) from exc
    _wire_fault("connect-failed")
    raise ProtocolError(
        f"cannot connect to {host}:{port} after {attempts} attempts: "
        f"{last_error}"
    ) from last_error
