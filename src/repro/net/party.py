"""Party base class for two-party protocols.

A :class:`Party` owns a name, a deterministic random stream, and a
channel endpoint.  Protocol roles (OMPE sender/receiver, trainer,
client) subclass it and speak through :meth:`send` / :meth:`receive`,
so every byte they exchange lands in the shared transcript.
"""

from __future__ import annotations

from typing import Any, Optional

from repro import obs
from repro.exceptions import ProtocolError
from repro.net.channel import Channel
from repro.utils.rng import ReproRandom


class Party:
    """One endpoint of a two-party protocol."""

    def __init__(self, name: str, rng: Optional[ReproRandom] = None) -> None:
        if not name:
            raise ProtocolError("party name must be non-empty")
        self.name = name
        self.rng = rng or ReproRandom()
        self._channel: Optional[Channel] = None

    # -- wiring ------------------------------------------------------------

    def connect(self, channel: Channel) -> None:
        """Attach this party to a channel (must be one of its endpoints)."""
        if self.name not in channel.parties:
            raise ProtocolError(
                f"{self.name!r} is not an endpoint of channel {channel.parties}"
            )
        self._channel = channel

    @property
    def channel(self) -> Channel:
        if self._channel is None:
            raise ProtocolError(f"{self.name} is not connected to a channel")
        return self._channel

    # -- messaging -----------------------------------------------------------

    def send(self, msg_type: str, payload: Any) -> None:
        """Send a message to the peer."""
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_party_messages_total",
                "Messages handled, by party and direction",
            ).inc(party=self.name, direction="sent")
        self.channel.send(self.name, msg_type, payload)

    def receive(self, expected_type: Optional[str] = None) -> Any:
        """Receive the next message from the peer."""
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_party_messages_total",
                "Messages handled, by party and direction",
            ).inc(party=self.name, direction="received")
        return self.channel.receive(self.name, expected_type)


def connect_parties(first: Party, second: Party, **channel_kwargs) -> Channel:
    """Create a channel between two parties and attach both ends."""
    channel = Channel(first.name, second.name, **channel_kwargs)
    first.connect(channel)
    second.connect(channel)
    return channel
