"""In-memory bidirectional channels with cost simulation.

A :class:`Channel` connects exactly two named parties.  Sends append to
the peer's FIFO inbox, record into the shared transcript, and advance a
simulated clock according to a :class:`LinkModel` (fixed latency plus
bandwidth-proportional transfer time).  The simulated clock gives the
evaluation harness network-cost curves that are independent of Python's
constant-factor slowness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Tuple

from repro import obs
from repro.exceptions import ProtocolError, ValidationError
from repro.net.message import Message, measure_size
from repro.net.transcript import Transcript, phase_of


@dataclass(frozen=True)
class LinkModel:
    """A simple latency/bandwidth link model.

    ``latency_s`` is added per message; payloads take
    ``size / bandwidth_bytes_per_s`` on the wire.  The defaults model a
    LAN-grade 1 Gbit/s link with 0.5 ms latency.
    """

    latency_s: float = 0.0005
    bandwidth_bytes_per_s: float = 125_000_000.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValidationError("latency must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValidationError("bandwidth must be positive")

    def transfer_time(self, size_bytes: int) -> float:
        """Simulated seconds for a message of the given size."""
        return self.latency_s + size_bytes / self.bandwidth_bytes_per_s


def observe_message(
    message: Message, last_direction: Optional[Tuple[str, str]]
) -> Optional[Tuple[str, str]]:
    """Record one sent protocol message into the global metrics/tracer.

    Shared by the in-memory :class:`Channel` and the TCP
    :class:`~repro.net.wire.WireChannel` so both transports produce
    identical metric streams for identical protocol runs.  Returns the
    updated last-send direction (for round-trip counting); when metrics
    are disabled the direction state is left untouched, mirroring the
    original inline behaviour.
    """
    metrics = obs.get_metrics()
    if metrics.enabled:
        phase = phase_of(message.msg_type)
        size = message.size_bytes
        metrics.counter(
            "repro_messages_total", "Protocol messages sent"
        ).inc(phase=phase)
        metrics.counter(
            "repro_bytes_sent_total", "Wire bytes sent, by party"
        ).inc(size, party=message.sender)
        metrics.counter(
            "repro_bytes_received_total", "Wire bytes received, by party"
        ).inc(size, party=message.recipient)
        metrics.counter(
            "repro_phase_bytes_total", "Wire bytes, by protocol phase"
        ).inc(size, phase=phase)
        metrics.histogram(
            "repro_message_bytes", "Wire size of individual messages"
        ).observe(size)
        direction = (message.sender, message.recipient)
        if direction != last_direction:
            metrics.counter(
                "repro_round_trips_total",
                "Communication rounds (direction changes)",
            ).inc()
            last_direction = direction
    tracer = obs.get_tracer()
    if tracer.enabled:
        tracer.current().add("bytes_on_wire", message.size_bytes)
    return last_direction


class Channel:
    """A reliable, ordered, bidirectional channel between two parties."""

    def __init__(
        self,
        first: str,
        second: str,
        link: Optional[LinkModel] = None,
        transcript: Optional[Transcript] = None,
    ) -> None:
        if first == second:
            raise ValidationError("a channel needs two distinct parties")
        self.parties: Tuple[str, str] = (first, second)
        self.link = link or LinkModel()
        self.transcript = transcript if transcript is not None else Transcript()
        self._inboxes: Dict[str, Deque[Message]] = {
            first: deque(),
            second: deque(),
        }
        self.simulated_time: float = 0.0
        self._last_direction: Optional[Tuple[str, str]] = None

    def _peer(self, party: str) -> str:
        first, second = self.parties
        if party == first:
            return second
        if party == second:
            return first
        raise ProtocolError(f"{party!r} is not an endpoint of this channel")

    def send(self, sender: str, msg_type: str, payload: Any) -> Message:
        """Send a message from ``sender`` to its peer."""
        recipient = self._peer(sender)
        message = Message(
            sender=sender,
            recipient=recipient,
            msg_type=msg_type,
            payload=payload,
            size_bytes=measure_size(payload),
        )
        self._inboxes[recipient].append(message)
        self.transcript.record(message)
        self.simulated_time += self.link.transfer_time(message.size_bytes)
        self._last_direction = observe_message(message, self._last_direction)
        return message

    def receive(self, recipient: str, expected_type: Optional[str] = None) -> Any:
        """Pop the next message for ``recipient``; returns the payload.

        When ``expected_type`` is given, a mismatched label aborts the
        protocol — the parties are out of sync.
        """
        self._peer(recipient)  # validates endpoint membership
        inbox = self._inboxes[recipient]
        if not inbox:
            raise ProtocolError(f"{recipient} has no pending messages")
        message = inbox.popleft()
        if expected_type is not None and message.msg_type != expected_type:
            raise ProtocolError(
                f"{recipient} expected {expected_type!r} but got {message.msg_type!r}"
            )
        return message.payload

    def pending(self, recipient: str) -> int:
        """Number of undelivered messages waiting for ``recipient``."""
        self._peer(recipient)
        return len(self._inboxes[recipient])

    def assert_drained(self) -> None:
        """Raise unless both inboxes are empty (protocol completed cleanly)."""
        for party, inbox in self._inboxes.items():
            if inbox:
                raise ProtocolError(
                    f"{party} still has {len(inbox)} undelivered messages"
                )
