"""Protocol v2: session-multiplexed framing over one connection.

Protocol v1 (:mod:`repro.net.service`) is strictly sequential within a
connection — one session, one frame in flight.  Protocol v2 adds a
session envelope to every frame so one connection interleaves any
number of concurrent sessions:

```
frame     := u32_be length ‖ mux_frame          (transport framing, unchanged)
mux_frame := 0x02 ‖ u32_be session_id ‖ message (0x01 ‖ varbytes(type) ‖ payload)
```

The inner ``message`` is byte-identical to a v1 frame's content, so
per-phase byte accounting — and therefore every protocol transcript —
is bit-identical across v1 and v2.  Session id 0 is the reserved
connection-control session (negotiation echoes, admin traffic); ids
``>= 1`` are chosen by the client, fresh per session, never reused on a
connection.

This module holds the pieces shared by both endpoints:

* the typed error vocabulary (:class:`MuxFrameError`,
  :class:`UnknownSessionError`, :class:`DuplicateSessionError`,
  :class:`ClosedSessionError` — all :class:`ProtocolError` subclasses);
* :class:`MuxRouter` — the pure demultiplexer state machine (fed raw
  frames, returns typed routing decisions; the fuzz suite drives it
  directly, with no I/O underneath);
* :class:`MuxSession` — one session endpoint: a thread-safe inbound
  frame queue plus a serialized send path, used by the protocol
  drivers through :class:`MuxChannel`;
* :class:`MuxChannel` — the :class:`~repro.net.channel.Channel`
  contract over a :class:`MuxSession`, mirroring
  :class:`~repro.net.wire.WireChannel` byte for byte;
* :class:`MuxClientConnection` — the client-side multiplexer: one
  reader thread demultiplexing server frames into per-session queues,
  sends serialized by a lock, sessions opened concurrently from any
  number of threads.

The server-side event loop lives in :mod:`repro.net.muxserver`.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro import obs
from repro.exceptions import ProtocolError, ValidationError
from repro.net.channel import LinkModel, observe_message
from repro.net.message import Message
from repro.net.transcript import Transcript
from repro.net.wire import WireConnection, _wire_fault
from repro.utils.serialization import (
    CONTROL_SESSION_ID,
    decode_message,
    encode_message,
    encode_mux_frame,
    peek_message_type,
    split_mux_frame,
)

#: Session control labels.  ``session/*`` frames travel on the session
#: they govern (or session 0 for connection-wide close) and stay off
#: every protocol transcript, exactly as in protocol v1.
OPEN = "session/open"
ACCEPT = "session/accept"
ERROR = "session/error"
CLOSE = "session/close"

#: Negotiation labels.  ``mux/hello`` is the *first* message a v2
#: client sends on a fresh connection, as a plain v1 frame; a v2 server
#: answers ``mux/welcome`` (also v1-framed) and both sides switch to v2
#: frames.  A v1 client never sends ``mux/hello``, so a v2 server falls
#: back to the v1 serve loop for it — negotiation is per connection.
HELLO = "mux/hello"
WELCOME = "mux/welcome"

#: Wire protocol generations a client may offer / a server may pick.
SUPPORTED_PROTOCOLS = (1, 2)

#: Message types the control session (id 0) accepts.
_CONTROL_TYPES = frozenset(
    {CLOSE, "admin/metrics", "admin/health", "admin/trace"}
)


class MuxError(ProtocolError):
    """Base class for multiplexing-layer failures.

    ``session_id`` is the offending session when the failure is scoped
    to one session (``None`` for connection-fatal frame errors), so a
    serve loop can answer with an error frame on exactly that session
    and keep every other one running.
    """

    def __init__(self, message: str, session_id: Optional[int] = None) -> None:
        super().__init__(message)
        self.session_id = session_id


class MuxFrameError(MuxError):
    """A malformed v2 frame — connection-fatal.

    Truncated session headers, wrong version bytes, undecodable inner
    messages: past this point the stream cannot be trusted to contain
    frame boundaries at all, so the connection must drop (its sessions
    are poisoned, never silently wedged).
    """


class UnknownSessionError(MuxError):
    """A non-open frame arrived for a session that was never opened."""


class DuplicateSessionError(MuxError):
    """``session/open`` arrived for an id already open or already used.

    Session ids are single-use per connection; accepting a reuse would
    let a hostile client graft frames onto another session's state.
    """


class ClosedSessionError(MuxError):
    """A frame arrived for a session that already finished."""


@dataclass(frozen=True)
class RoutedFrame:
    """One routing decision from :meth:`MuxRouter.route`.

    ``action`` is one of ``"open"`` (a new session; ``payload`` is the
    decoded ``session/open`` payload), ``"deliver"`` (an in-session
    protocol frame; ``message`` is the raw inner bytes, decoded later on
    the session's own thread), ``"close"`` (the peer ended the session;
    ``msg_type`` tells error from orderly close), or ``"control"`` (a
    session-0 frame; ``payload`` decoded).
    """

    action: str
    session_id: int
    msg_type: str
    message: bytes
    payload: Any = None


class MuxRouter:
    """The demultiplexer state machine — pure, I/O-free, thread-safe.

    Feed it raw frames; it validates the envelope, tracks the session
    id space, and returns typed :class:`RoutedFrame` decisions.  All
    hostile inputs raise a typed :class:`MuxError` subclass and leave
    the router's state unchanged, so one bad frame can never corrupt or
    cross-contaminate the surviving sessions.  The server marks its own
    side of a session finished with :meth:`finish`.
    """

    def __init__(self) -> None:
        self._active: set = set()
        self._finished: set = set()
        self._lock = threading.Lock()

    def route(self, frame: bytes) -> RoutedFrame:
        try:
            session_id, message = split_mux_frame(frame)
        except ValidationError as error:
            raise MuxFrameError(f"malformed mux frame: {error}") from error
        if session_id == CONTROL_SESSION_ID:
            try:
                msg_type, payload, _ = decode_message(message)
            except ValidationError as error:
                raise MuxFrameError(
                    f"malformed control-session message: {error}"
                ) from error
            if msg_type == OPEN:
                raise MuxFrameError(
                    "session/open on the reserved control session (id 0)"
                )
            if msg_type not in _CONTROL_TYPES:
                raise MuxFrameError(
                    f"unexpected control-session message {msg_type!r}"
                )
            return RoutedFrame("control", session_id, msg_type, message, payload)
        try:
            msg_type = peek_message_type(message)
        except ValidationError as error:
            raise MuxFrameError(
                f"undecodable inner message on session {session_id}: {error}"
            ) from error
        with self._lock:
            if msg_type == OPEN:
                if session_id in self._active:
                    raise DuplicateSessionError(
                        f"session/open for already-open session {session_id}",
                        session_id,
                    )
                if session_id in self._finished:
                    raise DuplicateSessionError(
                        f"session/open reuses finished session id {session_id}",
                        session_id,
                    )
                try:
                    _, payload, _ = decode_message(message)
                except ValidationError as error:
                    raise MuxFrameError(
                        f"malformed session/open on session {session_id}: "
                        f"{error}"
                    ) from error
                self._active.add(session_id)
                return RoutedFrame("open", session_id, msg_type, message, payload)
            if session_id in self._active:
                if msg_type in (ERROR, CLOSE):
                    self._active.discard(session_id)
                    self._finished.add(session_id)
                    return RoutedFrame("close", session_id, msg_type, message)
                return RoutedFrame("deliver", session_id, msg_type, message)
            if session_id in self._finished:
                raise ClosedSessionError(
                    f"frame ({msg_type!r}) for closed session {session_id}",
                    session_id,
                )
            raise UnknownSessionError(
                f"frame ({msg_type!r}) for unknown session {session_id}",
                session_id,
            )

    def finish(self, session_id: int) -> None:
        """Mark a session finished from this endpoint's side."""
        with self._lock:
            self._active.discard(session_id)
            self._finished.add(session_id)

    def active_sessions(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._active))


#: Inner-message header bytes that are *not* payload: the v1 version
#: byte plus the length-prefixed type label (see ``encode_message``).
def _payload_bytes(encoded: bytes, msg_type: str) -> int:
    return len(encoded) - (1 + 4 + len(msg_type.encode("utf-8")))


class MuxSession:
    """One session endpoint on a multiplexed connection.

    The demultiplexer (client reader thread or server event loop)
    delivers raw inner-message bytes into :meth:`deliver`; the session's
    own thread blocks in :meth:`recv_message`.  Sends go through the
    connection's serialized ``send_frame`` callable.  A vanished peer or
    a cancellation poisons the queue, so a blocked receive always
    surfaces a typed :class:`ProtocolError`, never a hang.
    """

    def __init__(
        self,
        session_id: int,
        send_frame: Callable[[bytes], int],
        timeout: Optional[float] = None,
        on_finished: Optional[Callable[["MuxSession"], None]] = None,
    ) -> None:
        self.id = session_id
        self._send_frame = send_frame
        self.timeout = timeout
        self._on_finished = on_finished
        self._inbound: "queue.Queue" = queue.Queue()
        self._poison: Optional[Exception] = None
        self._finished = False
        self._peer_closed = False
        self._lock = threading.Lock()

    # -- demultiplexer side ----------------------------------------------------

    def deliver(self, message: bytes) -> None:
        """Queue one raw inner message for this session's thread."""
        self._inbound.put(bytes(message))

    def poison(self, error: Exception) -> None:
        """Fail every pending and future receive with ``error``."""
        with self._lock:
            self._poison = error
        self._inbound.put(error)

    # -- session-thread side -----------------------------------------------------

    def send_message(self, msg_type: str, payload: Any) -> Tuple[int, int]:
        """Send one message on this session.

        Returns ``(payload_bytes, frame_bytes)`` — the transcript size
        and the raw on-the-wire cost including the session envelope.
        """
        encoded = encode_message(msg_type, payload)
        frame_bytes = self._send_frame(encode_mux_frame(self.id, encoded))
        return _payload_bytes(encoded, msg_type), frame_bytes

    def recv_message(
        self, timeout: Optional[float] = -1.0
    ) -> Tuple[str, Any, int]:
        """Block for this session's next message.

        Returns ``(msg_type, payload, payload_bytes)``.  A peer-reported
        ``session/error`` or ``session/close``, a poisoned queue
        (disconnect, cancellation), and an expired timeout all raise
        :class:`ProtocolError`.
        """
        if timeout is not None and timeout < 0:
            timeout = self.timeout
        with self._lock:
            poison = self._poison
        if poison is not None and self._inbound.empty():
            raise poison
        try:
            item = self._inbound.get(timeout=timeout)
        except queue.Empty:
            _wire_fault("timeout")
            raise ProtocolError(
                f"session {self.id}: timed out waiting for the peer's "
                f"next frame"
            ) from None
        if isinstance(item, Exception):
            # Leave the poison visible for any later receive too.
            self._inbound.put(item)
            raise item
        msg_type, payload, payload_bytes = decode_message(item)
        if msg_type == ERROR:
            self._peer_closed = True
            raise ProtocolError(f"peer reported a session error: {payload!r}")
        if msg_type == CLOSE:
            self._peer_closed = True
            raise ProtocolError(f"peer closed session {self.id} mid-protocol")
        return msg_type, payload, payload_bytes

    def send_control(self, msg_type: str, payload: Any) -> None:
        """Send one session-control message (off any transcript)."""
        encoded = encode_message(msg_type, payload)
        self._send_frame(encode_mux_frame(self.id, encoded))

    def recv_control(
        self, expected: Optional[str] = None
    ) -> Tuple[str, Any]:
        """Receive one control message; surfaces ``session/error``."""
        msg_type, payload, _ = self.recv_message()
        if expected is not None and msg_type != expected:
            raise ProtocolError(
                f"expected control message {expected!r}, got {msg_type!r}"
            )
        return msg_type, payload

    def pending(self) -> bool:
        """True when a frame is queued for this session."""
        return not self._inbound.empty()

    def cancel(self, reason: str = "session cancelled") -> None:
        """Cancel this session from the local side.

        Best-effort notifies the peer with a ``session/error`` frame
        (so its side aborts instead of waiting out a timeout), then
        poisons the local queue — a protocol driver blocked in
        :meth:`recv_message` unblocks immediately with the reason.  If
        the *peer* already ended the session (its error/close was the
        reason we are cancelling), no frame is sent — the peer's router
        would only count it as a closed-session fault.
        """
        if not self._peer_closed:
            try:
                self.send_control(ERROR, reason)
            except ProtocolError:
                pass  # the connection is already gone
        self.poison(ProtocolError(f"session {self.id}: {reason}"))
        self.finish()

    def finish(self) -> None:
        """Mark the session complete and release its routing slot."""
        with self._lock:
            if self._finished:
                return
            self._finished = True
        if self._on_finished is not None:
            self._on_finished(self)


class MuxChannel:
    """The :class:`Channel` contract over one multiplexed session.

    The byte-accounting mirror of :class:`~repro.net.wire.WireChannel`:
    ``Message.size_bytes`` is the encoded *payload* size of the inner v1
    message — identical across the in-memory, v1 TCP, and v2 TCP
    transports, so ``bytes_by_phase()`` is bit-identical too.  The
    session envelope (version byte + session id) and the frame header
    are accounted separately under ``repro_wire_bytes_total`` by the
    transport layer.
    """

    def __init__(
        self,
        local: str,
        peer: str,
        session: MuxSession,
        link: Optional[LinkModel] = None,
        transcript: Optional[Transcript] = None,
    ) -> None:
        if local == peer:
            raise ValidationError("a channel needs two distinct parties")
        if not local or not peer:
            raise ValidationError("party names must be non-empty")
        self.local = local
        self.peer = peer
        self.parties: Tuple[str, str] = (local, peer)
        self.session = session
        self.link = link or LinkModel()
        self.transcript = transcript if transcript is not None else Transcript()
        self.simulated_time: float = 0.0
        self._last_direction: Optional[Tuple[str, str]] = None

    def _require_local(self, party: str, action: str) -> None:
        if party != self.local:
            raise ProtocolError(
                f"{party!r} cannot {action} on {self.local!r}'s session endpoint"
            )

    def send(self, sender: str, msg_type: str, payload: Any) -> Message:
        """Encode and transmit one message on this session."""
        self._require_local(sender, "send")
        payload_bytes, _ = self.session.send_message(msg_type, payload)
        message = Message(
            sender=sender,
            recipient=self.peer,
            msg_type=msg_type,
            payload=payload,
            size_bytes=payload_bytes,
            session_id=self.session.id,
        )
        self.transcript.record(message)
        self.simulated_time += self.link.transfer_time(message.size_bytes)
        self._last_direction = observe_message(message, self._last_direction)
        return message

    def receive(self, recipient: str, expected_type: Optional[str] = None) -> Any:
        """Block for this session's next message; returns the payload."""
        self._require_local(recipient, "receive")
        msg_type, payload, payload_bytes = self.session.recv_message()
        message = Message(
            sender=self.peer,
            recipient=recipient,
            msg_type=msg_type,
            payload=payload,
            size_bytes=payload_bytes,
            session_id=self.session.id,
        )
        self.transcript.record(message)
        self.simulated_time += self.link.transfer_time(message.size_bytes)
        self._last_direction = (self.peer, recipient)
        if expected_type is not None and msg_type != expected_type:
            raise ProtocolError(
                f"{recipient} expected {expected_type!r} but got {msg_type!r}"
            )
        return payload

    def pending(self, recipient: str) -> int:
        """1 when a frame is queued for this session, else 0."""
        self._require_local(recipient, "poll")
        return 1 if self.session.pending() else 0

    def assert_drained(self) -> None:
        """Raise unless no session data remains queued (clean completion)."""
        if self.session.pending():
            raise ProtocolError(
                f"{self.local} still has undelivered session frames"
            )


class MuxClientConnection:
    """Client side of one protocol-v2 connection.

    Negotiates v2 on construction (``mux/hello`` → ``mux/welcome``, both
    as plain v1 frames), then runs a single reader thread that
    demultiplexes every server frame into per-session queues.  Sessions
    are opened from any thread; sends are serialized by a lock; the
    blocking protocol drivers run unchanged on the callers' threads.

    Fault surface: a malformed server frame or a lost connection poisons
    every open session (each blocked receive raises
    :class:`ProtocolError`); frames for unknown or finished sessions
    are counted under ``repro_wire_faults_total{kind=...}`` and dropped
    without touching the healthy sessions.
    """

    def __init__(
        self,
        connection: WireConnection,
        timeout: Optional[float] = None,
    ) -> None:
        self._connection = connection
        self._timeout = timeout
        self._send_lock = threading.Lock()
        self._sessions: Dict[int, MuxSession] = {}
        self._finished_ids: set = set()
        self._sessions_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._control_inbox: "queue.Queue" = queue.Queue()
        self._control_lock = threading.Lock()
        self._closed = False
        self._reader: Optional[threading.Thread] = None
        self._negotiate()
        self._reader = threading.Thread(
            target=self._reader_loop, name="mux-client-reader", daemon=True
        )
        self._reader.start()

    # -- negotiation -----------------------------------------------------------

    def _negotiate(self) -> None:
        self._connection.send_frame(
            encode_message(HELLO, {"versions": list(SUPPORTED_PROTOCOLS)})
        )
        reply = self._connection.recv_frame()
        msg_type, payload, _ = decode_message(reply)
        if msg_type == ERROR:
            raise ProtocolError(
                f"peer refused protocol v2: {payload!r}"
            )
        if msg_type != WELCOME:
            raise ProtocolError(
                f"expected {WELCOME!r} during negotiation, got {msg_type!r}"
            )
        version = payload.get("version") if isinstance(payload, dict) else None
        if version != 2:
            raise ProtocolError(
                f"peer negotiated unsupported protocol version {version!r}"
            )

    # -- sending ---------------------------------------------------------------

    def _send_frame(self, frame: bytes) -> int:
        with self._send_lock:
            return self._connection.send_frame(frame)

    # -- sessions ----------------------------------------------------------------

    def open_session(
        self, payload: Any, timeout: Optional[float] = -1.0
    ) -> MuxSession:
        """Open one session: allocates a fresh id, sends ``session/open``.

        The returned session is registered with the demultiplexer before
        the open frame leaves, so the server's ``session/accept`` can
        never race past it.
        """
        if timeout is not None and timeout < 0:
            timeout = self._timeout
        session_id = next(self._ids)
        session = MuxSession(
            session_id,
            self._send_frame,
            timeout=timeout,
            on_finished=self._session_finished,
        )
        with self._sessions_lock:
            if self._closed:
                raise ProtocolError("connection is closed")
            self._sessions[session_id] = session
        try:
            session.send_control(OPEN, payload)
        except ProtocolError:
            with self._sessions_lock:
                self._sessions.pop(session_id, None)
            raise
        return session

    def _session_finished(self, session: MuxSession) -> None:
        with self._sessions_lock:
            self._sessions.pop(session.id, None)
            self._finished_ids.add(session.id)

    @property
    def open_sessions(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # -- control (session 0) -----------------------------------------------------

    def control_request(
        self, msg_type: str, payload: Any, timeout: Optional[float] = -1.0
    ) -> Tuple[str, Any]:
        """One request/response exchange on the control session (admin)."""
        if timeout is not None and timeout < 0:
            timeout = self._timeout
        with self._control_lock:
            self._send_frame(
                encode_mux_frame(
                    CONTROL_SESSION_ID, encode_message(msg_type, payload)
                )
            )
            try:
                item = self._control_inbox.get(timeout=timeout)
            except queue.Empty:
                _wire_fault("timeout")
                raise ProtocolError(
                    "timed out waiting for a control-session response"
                ) from None
        if isinstance(item, Exception):
            self._control_inbox.put(item)
            raise item
        reply_type, reply, _ = decode_message(item)
        if reply_type == ERROR:
            raise ProtocolError(f"peer reported a session error: {reply!r}")
        return reply_type, reply

    # -- demultiplexing ------------------------------------------------------------

    def _reader_loop(self) -> None:
        try:
            while True:
                frame = self._connection.recv_frame()
                try:
                    session_id, message = split_mux_frame(frame)
                except ValidationError as error:
                    _wire_fault("mux-frame")
                    raise ProtocolError(
                        f"malformed mux frame from peer: {error}"
                    ) from error
                if session_id == CONTROL_SESSION_ID:
                    self._control_inbox.put(message)
                    continue
                with self._sessions_lock:
                    session = self._sessions.get(session_id)
                    finished = session_id in self._finished_ids
                if session is not None:
                    session.deliver(message)
                elif finished:
                    # A late frame for a session we already completed
                    # (e.g. the server's error racing our own close):
                    # count it, drop it, keep every live session intact.
                    _wire_fault("closed-session")
                else:
                    _wire_fault("unknown-session")
        except ProtocolError as error:
            if self._closed or self._connection.closed:
                error = ProtocolError("connection closed locally")
            self._poison_all(error)

    def _poison_all(self, error: Exception) -> None:
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.poison(error)
        self._control_inbox.put(error)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close the connection; open sessions fail with a local error."""
        if self._closed:
            return
        self._closed = True
        try:
            self._send_frame(
                encode_mux_frame(CONTROL_SESSION_ID, encode_message(CLOSE, None))
            )
        except ProtocolError:
            pass  # peer already gone
        self._connection.close()
        if self._reader is not None and self._reader is not threading.current_thread():
            self._reader.join(timeout=5.0)
        self._poison_all(ProtocolError("connection closed locally"))

    def __enter__(self) -> "MuxClientConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
