"""Multi-party network: a registry of parties and measured channels.

The two-party protocols run over a single
:class:`~repro.net.channel.Channel`; distributed scenarios (the N-party
partner matching of :mod:`repro.core.similarity.matching`) need many
pairwise channels with aggregate accounting.  :class:`Network` owns
the channels, lazily creating one per party pair, and aggregates bytes,
messages, and simulated time across all of them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.exceptions import ProtocolError, ValidationError
from repro.net.channel import Channel, LinkModel
from repro.net.transcript import Transcript


class Network:
    """A set of named parties and the measured channels between them."""

    def __init__(self, link: Optional[LinkModel] = None) -> None:
        self.link = link or LinkModel()
        self._parties: List[str] = []
        self._channels: Dict[FrozenSet[str], Channel] = {}

    # -- membership ----------------------------------------------------------

    def add_party(self, name: str) -> None:
        """Register a party name (idempotent rejection of duplicates)."""
        if not name:
            raise ValidationError("party name must be non-empty")
        if name in self._parties:
            raise ValidationError(f"party {name!r} already registered")
        self._parties.append(name)

    @property
    def parties(self) -> Tuple[str, ...]:
        """Registered party names, in registration order."""
        return tuple(self._parties)

    def _require_member(self, name: str) -> None:
        if name not in self._parties:
            raise ProtocolError(f"{name!r} is not a registered party")

    # -- channels ---------------------------------------------------------------

    def channel_between(self, first: str, second: str) -> Channel:
        """The (lazily created) channel between two registered parties."""
        self._require_member(first)
        self._require_member(second)
        if first == second:
            raise ValidationError("a channel needs two distinct parties")
        key = frozenset((first, second))
        channel = self._channels.get(key)
        if channel is None:
            channel = Channel(first, second, link=self.link)
            self._channels[key] = channel
        return channel

    def channels(self) -> List[Channel]:
        """All channels created so far."""
        return list(self._channels.values())

    # -- aggregate accounting ------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Bytes across every channel."""
        return sum(c.transcript.total_bytes() for c in self._channels.values())

    @property
    def total_messages(self) -> int:
        """Messages across every channel."""
        return sum(len(c.transcript) for c in self._channels.values())

    @property
    def total_simulated_time(self) -> float:
        """Sum of per-channel simulated transfer time (serial model)."""
        return sum(c.simulated_time for c in self._channels.values())

    def merged_transcript(self) -> Transcript:
        """All messages from all channels, ordered by global sequence."""
        merged = Transcript()
        messages = [
            message
            for channel in self._channels.values()
            for message in channel.transcript
        ]
        for message in sorted(messages, key=lambda m: m.sequence):
            merged.record(message)
        return merged

    def summary(self) -> dict:
        """Aggregate cost summary."""
        return {
            "parties": len(self._parties),
            "channels": len(self._channels),
            "messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "simulated_time_s": self.total_simulated_time,
        }
