"""Fault-injecting channel wrappers for robustness testing.

The in-memory :class:`~repro.net.channel.Channel` is reliable and
ordered; real deployments are not.  These wrappers let the test suite
(and operators evaluating the protocols) inject the classic failure
modes — message drops, delays, duplication, and payload corruption —
and verify that the protocols *abort loudly* (typed errors) rather
than hang or silently return wrong answers.  They wrap an existing
channel rather than subclassing it, so any protocol code written
against the channel interface runs unmodified.

Every injected fault is observable (:mod:`repro.obs`): wrappers bump
the ``repro_faults_injected_total`` counter (labelled by ``kind``) and
annotate the innermost open span with ``faults.<kind>`` attributes, so
a traced protocol run shows exactly which phase absorbed the faults.
:class:`RetryingChannel` adds the matching *recovery* path — resend on
drop — and reports ``repro_net_retries_total``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro import obs
from repro.exceptions import ProtocolError, ValidationError
from repro.net.channel import Channel
from repro.utils.rng import ReproRandom


def _record_fault(kind: str) -> None:
    """Bump fault metrics and annotate the current span."""
    obs.record_fault(kind)


class DroppingChannel:
    """Drops each sent message independently with a fixed probability.

    A dropped message simply never arrives; the peer's next ``receive``
    raises :class:`ProtocolError` (empty inbox) — the library's
    fail-loud contract for lost messages in a synchronous protocol.
    """

    def __init__(
        self,
        inner: Channel,
        drop_probability: float,
        rng: Optional[ReproRandom] = None,
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValidationError(
                f"drop_probability must be in [0, 1], got {drop_probability}"
            )
        self.inner = inner
        self.drop_probability = drop_probability
        self._rng = rng or ReproRandom()
        self.dropped = 0

    @property
    def parties(self):
        return self.inner.parties

    @property
    def transcript(self):
        return self.inner.transcript

    @property
    def simulated_time(self):
        return self.inner.simulated_time

    def send(self, sender: str, msg_type: str, payload: Any):
        if self._rng.uniform(0.0, 1.0) < self.drop_probability:
            self.dropped += 1
            _record_fault("drop")
            return None
        return self.inner.send(sender, msg_type, payload)

    def receive(self, recipient: str, expected_type: Optional[str] = None) -> Any:
        return self.inner.receive(recipient, expected_type)

    def pending(self, recipient: str) -> int:
        return self.inner.pending(recipient)

    def assert_drained(self) -> None:
        self.inner.assert_drained()


class DuplicatingChannel:
    """Delivers each message twice with a fixed probability.

    Duplicates desynchronize a lock-step protocol: the extra copy is
    consumed by a later ``receive`` expecting a different type, which
    raises — again, loud failure over silent confusion.
    """

    def __init__(
        self,
        inner: Channel,
        duplicate_probability: float,
        rng: Optional[ReproRandom] = None,
    ) -> None:
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValidationError(
                f"duplicate_probability must be in [0, 1], got {duplicate_probability}"
            )
        self.inner = inner
        self.duplicate_probability = duplicate_probability
        self._rng = rng or ReproRandom()
        self.duplicated = 0

    @property
    def parties(self):
        return self.inner.parties

    @property
    def transcript(self):
        return self.inner.transcript

    @property
    def simulated_time(self):
        return self.inner.simulated_time

    def send(self, sender: str, msg_type: str, payload: Any):
        message = self.inner.send(sender, msg_type, payload)
        if self._rng.uniform(0.0, 1.0) < self.duplicate_probability:
            self.duplicated += 1
            _record_fault("duplicate")
            self.inner.send(sender, msg_type, payload)
        return message

    def receive(self, recipient: str, expected_type: Optional[str] = None) -> Any:
        return self.inner.receive(recipient, expected_type)

    def pending(self, recipient: str) -> int:
        return self.inner.pending(recipient)

    def assert_drained(self) -> None:
        self.inner.assert_drained()


class CorruptingChannel:
    """Applies a payload-mutating function to each message with a
    fixed probability.

    The mutator receives the payload and returns a corrupted version;
    the default flips the first byte of any ``bytes`` payload it finds
    (recursing through tuples), modelling bit rot that checksummed
    transports would normally catch.
    """

    def __init__(
        self,
        inner: Channel,
        corrupt_probability: float,
        mutator: Optional[Callable[[Any], Any]] = None,
        rng: Optional[ReproRandom] = None,
    ) -> None:
        if not 0.0 <= corrupt_probability <= 1.0:
            raise ValidationError(
                f"corrupt_probability must be in [0, 1], got {corrupt_probability}"
            )
        self.inner = inner
        self.corrupt_probability = corrupt_probability
        self.mutator = mutator or _flip_first_byte
        self._rng = rng or ReproRandom()
        self.corrupted = 0

    @property
    def parties(self):
        return self.inner.parties

    @property
    def transcript(self):
        return self.inner.transcript

    @property
    def simulated_time(self):
        return self.inner.simulated_time

    def send(self, sender: str, msg_type: str, payload: Any):
        if self._rng.uniform(0.0, 1.0) < self.corrupt_probability:
            self.corrupted += 1
            _record_fault("corrupt")
            payload = self.mutator(payload)
        return self.inner.send(sender, msg_type, payload)

    def receive(self, recipient: str, expected_type: Optional[str] = None) -> Any:
        return self.inner.receive(recipient, expected_type)

    def pending(self, recipient: str) -> int:
        return self.inner.pending(recipient)

    def assert_drained(self) -> None:
        self.inner.assert_drained()


class DelayingChannel:
    """Adds extra simulated latency to each message with a fixed
    probability.

    Delays do not reorder messages (the channel stays FIFO); they only
    inflate the simulated clock, modelling congested links.  Each
    injected delay is observable as a ``faults.delay`` span attribute
    and a ``repro_faults_injected_total{kind="delay"}`` increment.
    """

    def __init__(
        self,
        inner: Channel,
        delay_s: float,
        delay_probability: float = 1.0,
        rng: Optional[ReproRandom] = None,
    ) -> None:
        if delay_s < 0:
            raise ValidationError(f"delay must be non-negative, got {delay_s}")
        if not 0.0 <= delay_probability <= 1.0:
            raise ValidationError(
                f"delay_probability must be in [0, 1], got {delay_probability}"
            )
        self.inner = inner
        self.delay_s = delay_s
        self.delay_probability = delay_probability
        self._rng = rng or ReproRandom()
        self.delayed = 0
        self.extra_delay_s = 0.0

    @property
    def parties(self):
        return self.inner.parties

    @property
    def transcript(self):
        return self.inner.transcript

    @property
    def simulated_time(self):
        return self.inner.simulated_time + self.extra_delay_s

    def send(self, sender: str, msg_type: str, payload: Any):
        message = self.inner.send(sender, msg_type, payload)
        if self._rng.uniform(0.0, 1.0) < self.delay_probability:
            self.delayed += 1
            self.extra_delay_s += self.delay_s
            _record_fault("delay")
        return message

    def receive(self, recipient: str, expected_type: Optional[str] = None) -> Any:
        return self.inner.receive(recipient, expected_type)

    def pending(self, recipient: str) -> int:
        return self.inner.pending(recipient)

    def assert_drained(self) -> None:
        self.inner.assert_drained()


class RetryingChannel:
    """Resends messages a lossy inner channel dropped — the recovery
    path matching :class:`DroppingChannel`.

    The inner channel signals a drop by returning ``None`` from
    ``send`` (the :class:`DroppingChannel` contract); this wrapper
    retries up to ``max_retries`` times and raises
    :class:`ProtocolError` when the message never gets through.
    Retries are observable as ``net.retries`` span attributes and the
    ``repro_net_retries_total`` counter.
    """

    def __init__(self, inner, max_retries: int = 3) -> None:
        if max_retries < 1:
            raise ValidationError(
                f"max_retries must be at least 1, got {max_retries}"
            )
        self.inner = inner
        self.max_retries = max_retries
        self.retries = 0

    @property
    def parties(self):
        return self.inner.parties

    @property
    def transcript(self):
        return self.inner.transcript

    @property
    def simulated_time(self):
        return self.inner.simulated_time

    def send(self, sender: str, msg_type: str, payload: Any):
        message = self.inner.send(sender, msg_type, payload)
        attempts = 0
        while message is None and attempts < self.max_retries:
            attempts += 1
            message = self.inner.send(sender, msg_type, payload)
        if attempts:
            self.retries += attempts
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "repro_net_retries_total",
                    "Message resends after injected drops",
                ).inc(attempts)
            tracer = obs.get_tracer()
            if tracer.enabled:
                tracer.current().add("net.retries", attempts)
        if message is None:
            raise ProtocolError(
                f"{msg_type!r} from {sender} lost after "
                f"{self.max_retries} retries"
            )
        return message

    def receive(self, recipient: str, expected_type: Optional[str] = None) -> Any:
        return self.inner.receive(recipient, expected_type)

    def pending(self, recipient: str) -> int:
        return self.inner.pending(recipient)

    def assert_drained(self) -> None:
        self.inner.assert_drained()


def _flip_first_byte(payload: Any) -> Any:
    """Flip one bit in the first ``bytes`` leaf of the payload."""
    if isinstance(payload, (bytes, bytearray)) and len(payload) > 0:
        mutated = bytearray(payload)
        mutated[0] ^= 0x01
        return bytes(mutated)
    if isinstance(payload, tuple):
        items = list(payload)
        for index, item in enumerate(items):
            mutated = _flip_first_byte(item)
            if mutated is not item:
                items[index] = mutated
                return tuple(items)
        return payload
    if hasattr(payload, "__dataclass_fields__"):
        import dataclasses

        for field in payload.__dataclass_fields__:
            value = getattr(payload, field)
            mutated = _flip_first_byte(value)
            if mutated is not value:
                return dataclasses.replace(payload, **{field: mutated})
    return payload
