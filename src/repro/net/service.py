"""TCP trainer service: private classification and similarity on demand.

:class:`TrainerServer` hosts a trainer's model behind a listening
socket and serves *sequential* protocol sessions; :class:`TrainerClient`
dials it and drives the client side.  One connection carries any number
of sessions, each opened by a control exchange and then executed by the
role-split protocol drivers over fresh
:class:`~repro.net.wire.WireChannel` endpoints.

Control messages (``session/open``, ``session/accept``,
``session/error``, ``session/close``) travel as ordinary framed
messages on the same connection but *outside* any protocol channel, so
protocol transcripts — and therefore per-phase byte accounting — stay
bit-identical to in-process runs.  The open payload carries everything
the peer needs before the protocol starts: the session kind, the shared
seed, and (for kernel similarity) the client's support-vector count.

Fault behaviour: every server connection runs under a per-connection
socket timeout; a stalled or vanished client surfaces as a typed
:class:`~repro.exceptions.ProtocolError`, bumps
``repro_wire_faults_total``, closes that connection, and the server
keeps serving.  Clients retry refused connections with backoff
(:func:`repro.net.wire.connect`).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro import obs
from repro.core.classification.linear import (
    ClassificationOutcome,
    _label_from_value,
)
from repro.core.classification.session import decision_function_for_model
from repro.core.ompe import OMPEConfig
from repro.core.ompe.protocol import run_ompe_receiver, run_ompe_sender
from repro.core.similarity.linear import PrivateSimilarityOutcome
from repro.core.similarity.metric import MetricParams
from repro.core.similarity.remote import (
    run_similarity_alice_linear,
    run_similarity_alice_nonlinear,
    run_similarity_bob_linear,
    run_similarity_bob_nonlinear,
)
from repro.exceptions import ProtocolError, ReproError, ValidationError
from repro.ml.svm.model import SVMModel
from repro.net import wire
from repro.net.wire import WireChannel, WireConnection
from repro.utils.serialization import decode_message, encode_message

#: Control message labels (never seen by protocol transcripts).
OPEN = "session/open"
ACCEPT = "session/accept"
ERROR = "session/error"
CLOSE = "session/close"

_SESSION_KINDS = ("classify", "similarity")


def send_control(connection: WireConnection, msg_type: str, payload: Any) -> None:
    """Send one control message outside any protocol channel."""
    connection.send_frame(encode_message(msg_type, payload))


def recv_control(
    connection: WireConnection, expected: Optional[str] = None
) -> Tuple[str, Any]:
    """Receive one control message; surfaces ``session/error`` payloads."""
    msg_type, payload, _ = decode_message(connection.recv_frame())
    if msg_type == ERROR:
        raise ProtocolError(f"peer reported a session error: {payload!r}")
    if expected is not None and msg_type != expected:
        raise ProtocolError(
            f"expected control message {expected!r}, got {msg_type!r}"
        )
    return msg_type, payload


class TrainerServer:
    """Hosts one trained model; serves sessions sequentially.

    The server is the trainer — *Alice*, the OMPE sender — in every
    session.  ``session_timeout`` bounds each blocking socket operation
    on an accepted connection, so a vanished client cannot wedge the
    serve loop.
    """

    def __init__(
        self,
        model: SVMModel,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[OMPEConfig] = None,
        params: Optional[MetricParams] = None,
        session_timeout: Optional[float] = 30.0,
    ) -> None:
        self.model = model
        self.config = config or OMPEConfig()
        self.params = params or MetricParams()
        self.session_timeout = session_timeout
        self._function = decision_function_for_model(model)
        self._socket = wire.listen(host, port)
        self.sessions_served = 0

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolved even when ``port=0``."""
        return self._socket.getsockname()[:2]

    def close(self) -> None:
        self._socket.close()

    def __enter__(self) -> "TrainerServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving -------------------------------------------------------------

    def serve_forever(
        self,
        max_sessions: Optional[int] = None,
        accept_timeout: Optional[float] = None,
    ) -> int:
        """Accept connections until ``max_sessions`` sessions completed.

        Returns the number of sessions served.  A faulty connection is
        closed and counted as a fault, not a served session; the loop
        continues with the next client.
        """
        while max_sessions is None or self.sessions_served < max_sessions:
            try:
                connection = wire.accept(self._socket, timeout=accept_timeout)
            except ProtocolError:
                break  # accept timed out — treat as a stop request
            connection.set_timeout(self.session_timeout)
            budget = (
                None
                if max_sessions is None
                else max_sessions - self.sessions_served
            )
            try:
                self._serve_connection(connection, budget)
            except ReproError as error:
                obs.record_fault(
                    "session-aborted",
                    "repro_service_faults_total",
                    "Trainer service sessions aborted, by kind",
                )
                try:
                    send_control(connection, ERROR, str(error))
                except ReproError:
                    pass  # the connection is already gone
            finally:
                connection.close()
        return self.sessions_served

    def _serve_connection(
        self, connection: WireConnection, budget: Optional[int]
    ) -> None:
        while budget is None or budget > 0:
            try:
                msg_type, request = recv_control(connection)
            except ProtocolError:
                return  # client closed (or stalled out) between sessions
            if msg_type == CLOSE:
                return
            if msg_type != OPEN:
                raise ProtocolError(
                    f"expected {OPEN!r} or {CLOSE!r}, got {msg_type!r}"
                )
            self._serve_session(connection, request)
            self.sessions_served += 1
            if budget is not None:
                budget -= 1

    def _serve_session(
        self, connection: WireConnection, request: Any
    ) -> None:
        if not isinstance(request, dict):
            raise ProtocolError("session/open payload must be a mapping")
        kind = request.get("kind")
        if kind not in _SESSION_KINDS:
            raise ProtocolError(
                f"unknown session kind {kind!r}; supported: {_SESSION_KINDS}"
            )
        seed = request.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ProtocolError("session seed must be an int or None")
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_service_sessions_total",
                "Trainer service sessions served, by kind",
            ).inc(kind=kind)
        with obs.get_tracer().span(
            "service.session", party="alice", phase="service", kind=kind
        ):
            if kind == "classify":
                self._serve_classify(connection, seed)
            else:
                self._serve_similarity(connection, request, seed)

    def _serve_classify(
        self, connection: WireConnection, seed: Optional[int]
    ) -> None:
        send_control(
            connection,
            ACCEPT,
            {
                "dimension": self.model.dimension,
                "degree": self._function.total_degree,
            },
        )
        channel = WireChannel("alice", "bob", connection)
        run_ompe_sender(
            self._function,
            channel,
            config=self.config,
            seed=seed,
            amplify=True,
            offset=False,
            name="alice",
        )

    def _serve_similarity(
        self, connection: WireConnection, request: Any, seed: Optional[int]
    ) -> None:
        linear = self.model.is_linear()
        if bool(request.get("linear")) != linear:
            raise ProtocolError(
                "similarity requires both models to be linear or both kernel"
            )
        send_control(connection, ACCEPT, {"linear": linear})
        factory = lambda: WireChannel("alice", "bob", connection)
        if linear:
            run_similarity_alice_linear(
                self.model, factory,
                params=self.params, config=self.config, seed=seed,
            )
        else:
            peer_sv_count = request.get("n_support")
            if not isinstance(peer_sv_count, int) or peer_sv_count < 1:
                raise ProtocolError(
                    "kernel similarity needs the client's support-vector "
                    f"count in session/open, got {peer_sv_count!r}"
                )
            run_similarity_alice_nonlinear(
                self.model, peer_sv_count, factory,
                params=self.params, config=self.config, seed=seed,
            )


class TrainerClient:
    """Client (Bob) side of the trainer service."""

    def __init__(
        self,
        host: str,
        port: int,
        config: Optional[OMPEConfig] = None,
        params: Optional[MetricParams] = None,
        timeout: Optional[float] = 30.0,
        attempts: int = 5,
        retry_delay_s: float = 0.05,
    ) -> None:
        self.config = config or OMPEConfig()
        self.params = params or MetricParams()
        self._connection = wire.connect(
            host,
            port,
            timeout=timeout,
            attempts=attempts,
            retry_delay_s=retry_delay_s,
        )

    def close(self) -> None:
        try:
            send_control(self._connection, CLOSE, None)
        except ReproError:
            pass  # server already hung up
        self._connection.close()

    def __enter__(self) -> "TrainerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sessions ------------------------------------------------------------

    def classify(
        self, sample: Sequence[float], seed: Optional[int] = None
    ) -> ClassificationOutcome:
        """Privately classify one sample against the server's model.

        Given the same seed, the result — label, masked value
        ``r_a·d(t̃)``, and per-phase byte counts — is bit-identical to
        an in-process :func:`~repro.core.classification.private_classify`
        against the same model.
        """
        sample = tuple(sample)
        with obs.get_tracer().span(
            "service.classify", party="bob", phase="service"
        ):
            send_control(
                self._connection, OPEN, {"kind": "classify", "seed": seed}
            )
            _, accept = recv_control(self._connection, ACCEPT)
            dimension = accept.get("dimension")
            if len(sample) != dimension:
                raise ValidationError(
                    f"sample has {len(sample)} coordinates, server model "
                    f"expects {dimension}"
                )
            channel = WireChannel("bob", "alice", self._connection)
            outcome = run_ompe_receiver(
                sample, channel, config=self.config, seed=seed, name="bob"
            )
        return ClassificationOutcome(
            label=_label_from_value(outcome.value),
            randomized_value=outcome.value,
            report=outcome.report,
        )

    def evaluate_similarity(
        self, model: SVMModel, seed: Optional[int] = None
    ) -> PrivateSimilarityOutcome:
        """Compare the client's model against the server's.

        The client learns the triangle metric ``T``; the server learns
        only the inseparable clear norms, exactly as in the in-process
        protocol.
        """
        linear = model.is_linear()
        with obs.get_tracer().span(
            "service.similarity", party="bob", phase="service"
        ):
            send_control(
                self._connection,
                OPEN,
                {
                    "kind": "similarity",
                    "seed": seed,
                    "linear": linear,
                    "n_support": None if linear else model.n_support,
                },
            )
            _, accept = recv_control(self._connection, ACCEPT)
            if bool(accept.get("linear")) != linear:
                raise ProtocolError(
                    "similarity requires both models to be linear or both "
                    "kernel"
                )
            factory = lambda: WireChannel("bob", "alice", self._connection)
            if linear:
                return run_similarity_bob_linear(
                    model, factory,
                    params=self.params, config=self.config, seed=seed,
                )
            return run_similarity_bob_nonlinear(
                model, factory,
                params=self.params, config=self.config, seed=seed,
            )
