"""TCP trainer service: concurrent private classification and similarity.

:class:`TrainerServer` hosts a trainer's model behind a listening
socket and serves protocol sessions **concurrently**: every accepted
connection gets its own serve thread, bounded by ``max_connections``
worker slots that are acquired *before* accepting — accept-side
backpressure, so a full server leaves further clients in the kernel
backlog instead of piling up threads.  :class:`TrainerClient` dials a
server and drives the client side of one connection;
:class:`TrainerClientPool` keeps ``size`` pooled connections and fans
batches out across them (:meth:`~TrainerClientPool.classify_many`).

Each connection carries any number of sequential sessions, each opened
by a control exchange and then executed by the role-split protocol
drivers over fresh :class:`~repro.net.wire.WireChannel` endpoints.
Connections never share a channel: all per-session state — channel,
transcript, RNG — lives on the serve thread's stack, so concurrent
sessions are bit-identical to single-client runs.  Shared
observability (the metrics registry and tracer in :mod:`repro.obs`) is
thread-safe; per-connection span trees land as separate roots in the
shared tracer, losslessly.

Control messages (``session/open``, ``session/accept``,
``session/error``, ``session/close``) travel as ordinary framed
messages on the same connection but *outside* any protocol channel, so
protocol transcripts — and therefore per-phase byte accounting — stay
bit-identical to in-process runs.

**Observability plane** (all off-transcript, like ``session/*``):

* ``session/open`` may carry a
  :class:`~repro.obs.distributed.TraceContext`; the server adopts it so
  its session span stitches under the originating client span.  The
  ``session/accept`` reply carries the server-assigned session id.
* ``admin/metrics``, ``admin/health``, ``admin/trace`` frames — served
  on any connection (conventionally a dedicated one via
  :class:`AdminClient`) without consuming a session slot or budget —
  expose the live registry, pool occupancy/drain state with per-session
  phase and age, and completed sessions' span fragments.
* Per-session telemetry: session duration, per-phase wire bytes, and
  per-session byte totals land in the shared registry labelled by
  ``kind`` and ``transport`` (and ``session`` for the per-session
  total), reconciled with ``bytes_by_phase()`` — see
  :func:`repro.obs.drift.drift_from_service_metrics`.

Fault behaviour: every server connection runs under a per-connection
socket timeout; a stalled or vanished client surfaces as a typed
:class:`~repro.exceptions.ProtocolError`, bumps
``repro_service_faults_total{kind=...}``, closes *that* connection, and
the server keeps serving every other one.  Transient accept-time
faults (e.g. ``EMFILE`` under descriptor pressure) are counted under
``kind="accept"`` and never stop the serve loop; only an idle timeout,
a closed listener, or :meth:`TrainerServer.stop` do.  Shutdown drains:
``stop()`` closes the listener, lets in-flight sessions finish under
the drain deadline, then force-closes whatever remains.  Clients retry
refused connections with backoff (:func:`repro.net.wire.connect`).
"""

from __future__ import annotations

import collections
import itertools
import queue
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.classification.linear import (
    ClassificationOutcome,
    _label_from_value,
)
from repro.core.classification.session import decision_function_for_model
from repro.core.ompe import OMPEConfig
from repro.core.ompe.protocol import run_ompe_receiver, run_ompe_sender
from repro.core.similarity.linear import PrivateSimilarityOutcome
from repro.core.similarity.metric import MetricParams
from repro.core.similarity.policy import OutputPolicy
from repro.core.similarity.remote import (
    run_similarity_alice_linear,
    run_similarity_alice_nonlinear,
    run_similarity_bob_linear,
    run_similarity_bob_nonlinear,
)
from repro.crypto.precompute import get_precompute_service
from repro.exceptions import (
    BatchItemError,
    ProtocolError,
    ReproError,
    ValidationError,
)
from repro.ml.svm.model import SVMModel
from repro.net import wire
from repro.net.mux import (
    HELLO,
    WELCOME,
    MuxChannel,
    MuxClientConnection,
    MuxRouter,
)
from repro.net.muxserver import MuxConnection, MuxServerLoop
from repro.net.transcript import Transcript
from repro.net.wire import ConnectionClosed, WireChannel, WireConnection
from repro.obs.distributed import (
    AdminHealth,
    AdminMetricsDump,
    AdminTraceDump,
    TraceContext,
    adopt_context,
    current_trace_context,
)
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS
from repro.obs.tracing import spans_to_jsonl
from repro.utils.serialization import (
    CONTROL_SESSION_ID,
    decode_message,
    encode_message,
    encode_mux_frame,
)

#: Control message labels (never seen by protocol transcripts).
OPEN = "session/open"
ACCEPT = "session/accept"
ERROR = "session/error"
CLOSE = "session/close"

#: Admin channel labels — request/response pairs on any connection,
#: outside any session and outside the session budget.
ADMIN_METRICS = "admin/metrics"
ADMIN_HEALTH = "admin/health"
ADMIN_TRACE = "admin/trace"

_ADMIN_FRAMES = frozenset({ADMIN_METRICS, ADMIN_HEALTH, ADMIN_TRACE})

_SESSION_KINDS = ("classify", "similarity")

#: Per-session telemetry instruments.
SESSION_SECONDS = "repro_service_session_seconds"
SESSION_PHASE_BYTES = "repro_service_phase_bytes_total"
SESSION_BYTES = "repro_service_session_bytes_total"

#: Service-level fault counter; labelled by kind —
#: ``session-aborted`` (a session died mid-protocol), ``control`` (a
#: corrupted or stalled control exchange), ``accept`` (a transient
#: accept-time fault survived), ``force-closed`` (a connection cut at
#: the drain deadline).
SERVICE_FAULTS = "repro_service_faults_total"
_SERVICE_FAULTS_HELP = "Trainer service faults, by kind"

#: Sessions currently being served, labelled by wire protocol
#: (``protocol="v1"`` thread-per-connection, ``protocol="v2"``
#: multiplexed).
SESSIONS_INFLIGHT = "repro_service_sessions_inflight"

#: Client-side wire protocol selection: ``"v1"`` (legacy sequential),
#: ``"v2"`` (multiplexed, refuses v1-only peers), ``"auto"`` (try v2,
#: fall back to v1 when the peer refuses the upgrade).
CLIENT_PROTOCOLS = ("v1", "v2", "auto")


def _service_fault(kind: str) -> None:
    obs.record_fault(kind, SERVICE_FAULTS, _SERVICE_FAULTS_HELP)


def _sessions_inflight(delta: float, protocol: str) -> None:
    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.gauge(
            SESSIONS_INFLIGHT,
            "Protocol sessions currently being served, by wire protocol",
        ).inc(delta, protocol=protocol)


def send_control(connection: WireConnection, msg_type: str, payload: Any) -> None:
    """Send one control message outside any protocol channel."""
    connection.send_frame(encode_message(msg_type, payload))


def recv_control(
    connection: WireConnection, expected: Optional[str] = None
) -> Tuple[str, Any]:
    """Receive one control message; surfaces ``session/error`` payloads."""
    msg_type, payload, _ = decode_message(connection.recv_frame())
    if msg_type == ERROR:
        raise ProtocolError(f"peer reported a session error: {payload!r}")
    if expected is not None and msg_type != expected:
        raise ProtocolError(
            f"expected control message {expected!r}, got {msg_type!r}"
        )
    return msg_type, payload


def _annotate_session(span: Any, accept: Any) -> None:
    """Tag the client span with the server-assigned session id."""
    if not getattr(span, "enabled", False) or not isinstance(accept, dict):
        return
    session = accept.get("session")
    if isinstance(session, str):
        span.set(session=session)


class _WireEndpoint:
    """Server-side session plumbing for a v1 (sequential) connection.

    The protocol-agnostic face :meth:`TrainerServer._serve_session`
    serves through: control sends and protocol channels ride the
    blocking connection directly, exactly as before protocol v2
    existed — which is what keeps v1 serving bit-identical.
    """

    protocol = "v1"

    def __init__(self, server: "TrainerServer", connection: WireConnection) -> None:
        self._server = server
        self._connection = connection
        self.transport = getattr(connection, "transport", "tcp")

    def send_control(self, msg_type: str, payload: Any) -> None:
        send_control(self._connection, msg_type, payload)

    def channel(self) -> WireChannel:
        return WireChannel("alice", "bob", self._connection)

    def note_session(self, session_id: str, kind: str) -> None:
        with self._server._lock:
            state = self._server._connections.get(self._connection)
            if state is not None:
                state.session_id = session_id
                state.kind = kind


class _MuxEndpoint:
    """Server-side session plumbing for one multiplexed (v2) session.

    Same face as :class:`_WireEndpoint`, but control sends and protocol
    channels ride this session's envelope on the shared connection.
    The *inner* messages are encoded identically, so the two endpoints
    serve bit-identical protocol runs through the shared
    ``_serve_session`` code path.
    """

    protocol = "v2"

    def __init__(
        self, server: "TrainerServer", session: Any, transport: str = "tcp"
    ) -> None:
        self._server = server
        self._session = session
        self.transport = transport

    def send_control(self, msg_type: str, payload: Any) -> None:
        self._session.send_control(msg_type, payload)

    def channel(self) -> MuxChannel:
        return MuxChannel("alice", "bob", self._session)

    def note_session(self, session_id: str, kind: str) -> None:
        with self._server._lock:
            self._server._mux_live[self._session.id] = {
                "session": session_id,
                "kind": kind,
                "started_at": time.monotonic(),
            }

    def clear_session(self) -> None:
        with self._server._lock:
            self._server._mux_live.pop(self._session.id, None)


class _MuxControlProxy:
    """Duck-typed connection whose frames ride control session 0.

    Lets :meth:`TrainerServer._serve_admin` answer admin requests on a
    multiplexed connection through the same ``send_control`` helper the
    v1 path uses — the reply is simply wrapped in the session-0
    envelope.  Sends are deadline-bounded because they run on the event
    loop thread.
    """

    def __init__(self, conn: MuxConnection) -> None:
        self._conn = conn

    def send_frame(self, data: bytes) -> int:
        return self._conn.send_frame(
            encode_mux_frame(CONTROL_SESSION_ID, data), deadline_s=2.0
        )


class _ConnState:
    """Live per-connection bookkeeping (guarded by the server lock)."""

    __slots__ = ("state", "session_id", "kind", "started_at", "thread_ident")

    def __init__(self) -> None:
        self.state = "idle"  # "idle" | "session"
        self.session_id: Optional[str] = None
        self.kind: Optional[str] = None
        self.started_at: float = 0.0
        self.thread_ident: Optional[int] = None


class TrainerServer:
    """Hosts one trained model; serves sessions concurrently.

    The server is the trainer — *Alice*, the OMPE sender — in every
    session.  Up to ``max_connections`` clients are served in parallel,
    one daemon thread per accepted connection; ``session_timeout``
    bounds each blocking socket operation on an accepted connection, so
    a vanished client cannot wedge its serve thread forever.

    The model, config, and params are shared read-only across serve
    threads; every mutable protocol object (channel, transcript, RNG)
    is created per session on the serving thread.  ``stop()`` performs
    a graceful drain: no new connections or sessions, in-flight
    sessions get ``drain_timeout`` seconds to finish, stragglers are
    force-closed.
    """

    #: Accept/drain poll interval.  The serve loop wakes this often to
    #: notice a stop request, an exhausted session budget, or an expired
    #: idle deadline while blocked waiting for clients.
    _POLL_S = 0.05

    def __init__(
        self,
        model: Optional[SVMModel] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[OMPEConfig] = None,
        params: Optional[MetricParams] = None,
        session_timeout: Optional[float] = 30.0,
        max_connections: int = 8,
        drain_timeout: float = 5.0,
        trace_log_size: int = 256,
        output_policy: Optional[OutputPolicy] = None,
        precompute: bool = True,
        session_workers: int = 8,
        models: Optional[Dict[str, SVMModel]] = None,
    ) -> None:
        if max_connections < 1:
            raise ValidationError(
                f"max_connections must be at least 1, got {max_connections}"
            )
        if session_workers < 1:
            raise ValidationError(
                f"session_workers must be at least 1, got {session_workers}"
            )
        if drain_timeout < 0:
            raise ValidationError("drain_timeout must be non-negative")
        if output_policy is not None and not isinstance(
            output_policy, OutputPolicy
        ):
            raise ValidationError(
                f"output_policy must be an OutputPolicy, got {output_policy!r}"
            )
        #: Keyed model collection for similarity sessions: a client's
        #: ``session/open`` may carry ``"model": <key>`` to pick the
        #: server-side (Alice) model — the bulk-linkage TCP backend
        #: serves a whole left collection this way.  ``model`` stays the
        #: default for sessions that don't select (and for classify).
        if models is not None:
            for key, entry in models.items():
                if not isinstance(key, str) or not key:
                    raise ValidationError(
                        f"model keys must be non-empty strings, got {key!r}"
                    )
                if not isinstance(entry, SVMModel):
                    raise ValidationError(
                        f"models[{key!r}] must be an SVMModel, got {entry!r}"
                    )
        if model is None:
            if not models:
                raise ValidationError(
                    "TrainerServer needs a model (or a keyed models "
                    "collection)"
                )
            model = models[sorted(models)[0]]
        self.model = model
        self.models: Dict[str, SVMModel] = dict(models) if models else {}
        self.config = config or OMPEConfig()
        self.params = params or MetricParams()
        #: Server-side similarity output policy.  ``None`` keeps the
        #: legacy raw output; a policy here is the server's *mandate* —
        #: every similarity session runs under it, and a client that
        #: explicitly requests a different policy is refused.
        self.output_policy = output_policy
        self.session_timeout = session_timeout
        self.max_connections = max_connections
        #: Concurrent *multiplexed* sessions served at once (protocol
        #: v2).  Independent of ``max_connections``: v2 connections are
        #: cheap to hold idle (the event loop owns them), and this
        #: bounds the CPU-side worker pool the protocol math runs on.
        self.session_workers = session_workers
        self.drain_timeout = drain_timeout
        self._function = decision_function_for_model(model)
        #: Warm the shared precompute store before the first accept:
        #: the generator table for this server's group is built exactly
        #: once here, and every session (each on its own thread) then
        #: runs on the hot table — zero per-session rebuilds.  The
        #: ``serve --no-precompute`` flag disables this for cold-start
        #: measurements.
        self.precompute = precompute
        if precompute:
            service = get_precompute_service()
            service.warm_group(self.config.resolved_group())
            service.export_metrics(scope="server")
        self._socket = wire.listen(host, port, backlog=max(4, max_connections))
        self._lock = threading.Lock()
        self._served = 0
        self._remaining: Optional[int] = None  # session budget (under lock)
        self._target: Optional[int] = None  # served count that ends the loop
        self._slots = threading.BoundedSemaphore(max_connections)
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._budget_done = threading.Event()
        self._serve_done = threading.Event()
        self._serve_done.set()  # no serve loop running yet
        self._connections: Dict[WireConnection, _ConnState] = {}
        self._workers: List[threading.Thread] = []
        self._session_ids = itertools.count(1)
        #: Protocol-v2 event loop; built lazily on the first upgraded
        #: connection so v1-only servers never start the extra thread.
        self._mux: Optional[MuxServerLoop] = None
        #: Live multiplexed sessions, for ``admin/health`` (under lock).
        self._mux_live: Dict[int, Dict[str, Any]] = {}
        #: Completed sessions' span fragments, newest last, bounded.
        self._trace_log: "collections.deque" = collections.deque(
            maxlen=max(1, trace_log_size)
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolved even when ``port=0``."""
        return self._socket.getsockname()[:2]

    @property
    def sessions_served(self) -> int:
        """Sessions completed successfully, across all connections."""
        with self._lock:
            return self._served

    @property
    def active_connections(self) -> int:
        """Connections currently held by a serve thread or the mux loop."""
        with self._lock:
            count = len(self._connections)
            mux = self._mux
        return count + (mux.connection_count if mux is not None else 0)

    def close(self) -> None:
        """Close the listening socket (unblocks a running serve loop)."""
        self._socket.close()

    def stop(self, drain_timeout: Optional[float] = None) -> None:
        """Gracefully stop serving and wait for the drain to finish.

        Ordering: (1) refuse new sessions and close the listener, so no
        further connection is accepted; (2) in-flight sessions run to
        completion under the drain deadline (``drain_timeout`` here
        overrides the server's default); (3) any connection still busy
        at the deadline is force-closed (counted under
        ``repro_service_faults_total{kind="force-closed"}``).  Returns
        once the serve loop — if one is running — has fully drained.
        """
        if drain_timeout is not None:
            self.drain_timeout = drain_timeout
        self._stopping.set()
        self.close()
        if self._serve_done.is_set():
            # No serve loop to run the drain for us (connections served
            # directly via :meth:`serve_connection`): drain here.
            self._drain()
        else:
            self._serve_done.wait(timeout=self.drain_timeout + 10.0)

    def __enter__(self) -> "TrainerServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving -------------------------------------------------------------

    def serve_forever(
        self,
        max_sessions: Optional[int] = None,
        accept_timeout: Optional[float] = None,
    ) -> int:
        """Accept and serve connections until ``max_sessions`` complete.

        Connections are served concurrently (up to ``max_connections``
        at once); ``max_sessions`` counts *completed* sessions across
        all of them.  ``accept_timeout`` is an idle deadline: the loop
        stops once that long passes without a new connection.  A faulty
        connection is closed and counted as a fault, not a served
        session; the loop continues serving everyone else.  Returns the
        total number of sessions served.
        """
        if max_sessions is not None and max_sessions < 1:
            raise ValidationError(
                f"max_sessions must be at least 1, got {max_sessions}"
            )
        with self._lock:
            self._remaining = max_sessions
            self._target = (
                None if max_sessions is None else self._served + max_sessions
            )
        self._budget_done.clear()
        self._draining.clear()
        self._serve_done.clear()
        idle_deadline = (
            None if accept_timeout is None
            else time.monotonic() + accept_timeout
        )
        try:
            while not (self._stopping.is_set() or self._budget_done.is_set()):
                # Backpressure: take a worker slot *before* accepting.
                if not self._slots.acquire(timeout=self._POLL_S):
                    continue
                accepted = False
                try:
                    try:
                        connection = wire.accept(
                            self._socket,
                            timeout=self._POLL_S,
                            connection_timeout=self.session_timeout,
                        )
                    except wire.AcceptTimeout:
                        if (
                            idle_deadline is not None
                            and time.monotonic() >= idle_deadline
                        ):
                            break  # nobody showed up — stop request
                        continue
                    except wire.ListenerClosed:
                        break  # closed from another thread — stop request
                    except ProtocolError:
                        # Transient accept fault (EMFILE, aborted
                        # handshake, ...): keep serving.
                        _service_fault("accept")
                        continue
                    accepted = True
                finally:
                    if not accepted:
                        self._slots.release()
                if accept_timeout is not None:
                    idle_deadline = time.monotonic() + accept_timeout
                worker = threading.Thread(
                    target=self._run_connection,
                    args=(connection,),
                    name="trainer-serve",
                    daemon=True,
                )
                with self._lock:
                    self._connections[connection] = _ConnState()
                    self._workers.append(worker)
                worker.start()
        finally:
            self._drain()
            self._serve_done.set()
        return self.sessions_served

    def serve_connection(self, connection: WireConnection) -> None:
        """Serve one pre-established connection on the calling thread.

        The transport-agnostic entry point: hand it one end of a
        :func:`repro.net.wire.memory_pair` (or an accepted socket) and
        it runs the same control loop — sessions, admin frames, slot
        accounting — as connections accepted by :meth:`serve_forever`.
        Returns when the peer closes or a fault drops the connection.
        """
        if self._stopping.is_set():
            raise ProtocolError("server is stopping; connection refused")
        self._slots.acquire()
        with self._lock:
            self._connections[connection] = _ConnState()
        self._run_connection(connection)

    def _run_connection(self, connection: WireConnection) -> None:
        """One serve thread: sequential sessions on one connection.

        A connection that upgrades to protocol v2 mid-loop is *detached*
        here — its socket now belongs to the mux event loop, which keeps
        holding this connection's accept slot until it closes.
        """
        with self._lock:
            state = self._connections.get(connection)
            if state is not None:
                state.thread_ident = threading.get_ident()
        outcome = None
        try:
            outcome = self._serve_connection(connection)
        except ReproError as error:
            _service_fault("session-aborted")
            try:
                send_control(connection, ERROR, str(error))
            except ReproError:
                pass  # the connection is already gone
        finally:
            if outcome != "detached":
                connection.close()
                self._slots.release()
            with self._lock:
                self._connections.pop(connection, None)
                try:
                    self._workers.remove(threading.current_thread())
                except ValueError:
                    pass

    def _serve_connection(self, connection: WireConnection) -> Optional[str]:
        while True:
            try:
                msg_type, request = recv_control(connection)
            except ConnectionClosed:
                return  # client hung up between sessions — not a fault
            except ValidationError as error:
                # Corrupted control frame: count it and tell the peer.
                _service_fault("control")
                raise ProtocolError(
                    f"malformed control frame: {error}"
                ) from error
            except ProtocolError:
                if connection.closed or self._stopping.is_set():
                    return  # server-side shutdown cut this connection
                _service_fault("control")
                return  # stalled or truncated mid-frame; drop the client
            if msg_type == CLOSE:
                return None
            if msg_type == HELLO:
                # Per-connection protocol negotiation: a v2-capable
                # client leads with mux/hello; v1 clients never send it
                # and fall straight through to the legacy serve loop.
                return self._upgrade_connection(connection, request)
            if msg_type in _ADMIN_FRAMES:
                # Admin traffic consumes no session slot or budget and
                # stays off every protocol transcript.
                self._serve_admin(connection, msg_type, request)
                continue
            if msg_type != OPEN:
                _service_fault("control")
                raise ProtocolError(
                    f"expected {OPEN!r} or {CLOSE!r}, got {msg_type!r}"
                )
            if not self._begin_session(connection):
                send_control(
                    connection, ERROR,
                    "server is stopping or out of session budget",
                )
                return
            try:
                self._serve_session(_WireEndpoint(self, connection), request)
            except ReproError:
                self._abort_session(connection)
                raise
            self._finish_session(connection)

    # -- protocol v2 (multiplexed connections) --------------------------------

    def _mux_loop(self) -> MuxServerLoop:
        with self._lock:
            if self._mux is None:
                self._mux = MuxServerLoop(
                    session_handler=self._run_mux_session,
                    control_handler=self._serve_mux_control,
                    service_fault=_service_fault,
                    router_factory=MuxRouter,
                    session_workers=self.session_workers,
                    session_timeout=self.session_timeout,
                )
            return self._mux

    def _upgrade_connection(
        self, connection: WireConnection, request: Any
    ) -> Optional[str]:
        """Negotiate ``mux/hello``; hand the socket to the event loop.

        Returns ``"detached"`` once the mux loop owns the socket (the
        serve thread must stop touching it and keep the accept slot
        held — it is released when the mux connection closes), or
        ``None`` when the upgrade was refused and the connection ends.
        """
        versions = request.get("versions") if isinstance(request, dict) else None
        if not isinstance(versions, (list, tuple)) or 2 not in versions:
            _service_fault("control")
            send_control(
                connection,
                ERROR,
                f"no mutually supported wire protocol in {versions!r} "
                f"(server speaks v2)",
            )
            return None
        if not hasattr(connection, "detach"):
            _service_fault("control")
            send_control(
                connection, ERROR, "protocol v2 requires a socket connection"
            )
            return None
        send_control(connection, WELCOME, {"version": 2})
        sock = connection.detach()
        try:
            self._mux_loop().adopt(sock, on_closed=self._slots.release)
        except ProtocolError:
            # The loop is shutting down: the socket is already closed;
            # give the accept slot back ourselves.
            self._slots.release()
        return "detached"

    def _run_mux_session(
        self, conn: MuxConnection, session: Any, request: Any
    ) -> None:
        """Serve one multiplexed session (on a session-worker thread).

        The shared ``_serve_session`` path does the protocol work; this
        wrapper owns the v2-specific accounting and fault containment —
        an aborted session answers with a ``session/error`` frame on its
        own id and leaves every other session on the connection running.
        """
        if not self._begin_mux_session():
            try:
                session.send_control(
                    ERROR, "server is stopping or out of session budget"
                )
            except ReproError:
                pass
            return
        endpoint = _MuxEndpoint(
            self, session, getattr(conn, "transport", "tcp")
        )
        try:
            self._serve_session(endpoint, request)
        except ReproError as error:
            self._abort_mux_session()
            _service_fault("session-aborted")
            try:
                session.send_control(ERROR, str(error))
            except ReproError:
                pass  # the connection (or session) is already gone
        else:
            self._finish_mux_session()
        finally:
            endpoint.clear_session()

    def _serve_mux_control(
        self, conn: MuxConnection, msg_type: str, request: Any
    ) -> None:
        """Answer one control-session (admin) frame on a v2 connection."""
        if msg_type not in _ADMIN_FRAMES:
            raise ProtocolError(
                f"unexpected control-session message {msg_type!r}"
            )
        self._serve_admin(_MuxControlProxy(conn), msg_type, request)

    def _begin_mux_session(self) -> bool:
        with self._lock:
            if self._stopping.is_set() or self._draining.is_set():
                return False
            if self._remaining is not None:
                if self._remaining <= 0:
                    return False
                self._remaining -= 1
        _sessions_inflight(1, "v2")
        return True

    def _abort_mux_session(self) -> None:
        with self._lock:
            if self._remaining is not None:
                self._remaining += 1
        _sessions_inflight(-1, "v2")

    def _finish_mux_session(self) -> None:
        with self._lock:
            self._served += 1
            if self._target is not None and self._served >= self._target:
                self._budget_done.set()
        _sessions_inflight(-1, "v2")

    # -- session accounting (shared across serve threads) --------------------

    def _begin_session(self, connection: WireConnection) -> bool:
        """Claim a session slot; False once stopping/draining/out of budget."""
        with self._lock:
            if self._stopping.is_set() or self._draining.is_set():
                return False
            if self._remaining is not None:
                if self._remaining <= 0:
                    return False
                self._remaining -= 1
            state = self._connections.setdefault(connection, _ConnState())
            state.state = "session"
            state.started_at = time.monotonic()
        _sessions_inflight(1, "v1")
        return True

    def _set_idle(self, connection: WireConnection) -> None:
        state = self._connections.get(connection)
        if state is not None:
            state.state = "idle"
            state.session_id = None
            state.kind = None

    def _abort_session(self, connection: WireConnection) -> None:
        """Return a claimed slot: a failed session is a fault, not served."""
        with self._lock:
            if self._remaining is not None:
                self._remaining += 1
            self._set_idle(connection)
        _sessions_inflight(-1, "v1")

    def _finish_session(self, connection: WireConnection) -> None:
        with self._lock:
            self._served += 1
            self._set_idle(connection)
            if self._target is not None and self._served >= self._target:
                self._budget_done.set()
        _sessions_inflight(-1, "v1")

    def _drain(self) -> None:
        """Drain in-flight sessions, then force-close the stragglers.

        Runs on the serve-loop thread after it stops accepting.  Idle
        connections (between sessions) are closed immediately — they
        can never start another session because :meth:`_begin_session`
        refuses while draining.  Connections mid-session get until the
        drain deadline to finish, then are force-closed.
        """
        self._draining.set()
        deadline = time.monotonic() + self.drain_timeout
        with self._lock:
            idle = [
                conn for conn, state in self._connections.items()
                if state.state == "idle"
            ]
        for connection in idle:
            connection.close()
        while time.monotonic() < deadline:
            with self._lock:
                busy = any(
                    state.state == "session"
                    for state in self._connections.values()
                )
                mux = self._mux
            if not busy and (mux is None or mux.session_count == 0):
                break
            time.sleep(self._POLL_S)
        with self._lock:
            leftover = list(self._connections.items())
            workers = list(self._workers)
            mux = self._mux
        for connection, state in leftover:
            if state.state == "session":
                _service_fault("force-closed")
            connection.close()
        if mux is not None:
            # The deadline above already covered the graceful wait;
            # whatever is still running gets force-closed right away.
            mux.shutdown(drain_timeout=0.0)
        for worker in workers:
            worker.join(timeout=self.drain_timeout + 1.0)

    # -- one session ---------------------------------------------------------

    def _serve_session(self, endpoint: Any, request: Any) -> None:
        """Serve one session through a protocol-agnostic endpoint.

        ``endpoint`` is a :class:`_WireEndpoint` (v1) or
        :class:`_MuxEndpoint` (v2) — the single shared code path is
        what makes v2 sessions bit-identical to v1 by construction.
        """
        if not isinstance(request, dict):
            raise ProtocolError("session/open payload must be a mapping")
        kind = request.get("kind")
        if kind not in _SESSION_KINDS:
            raise ProtocolError(
                f"unknown session kind {kind!r}; supported: {_SESSION_KINDS}"
            )
        seed = request.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ProtocolError("session seed must be an int or None")
        trace_context = request.get("trace")
        if trace_context is not None and not isinstance(trace_context, TraceContext):
            raise ProtocolError("session/open 'trace' must be a trace context")
        transport = endpoint.transport
        session_id = f"s{next(self._session_ids)}"
        if self.precompute:
            # Hand the session the warm store: a hit here (the expected
            # case after the constructor warmed the group) is counted
            # as repro_precompute_hits_total{kind="fixed-base-table"};
            # a miss rebuilds and is counted loudly as such.
            get_precompute_service().warm_group(self.config.resolved_group())
        endpoint.note_session(session_id, kind)
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_service_sessions_total",
                "Trainer service sessions served, by kind",
            ).inc(kind=kind)
        span = obs.get_tracer().span(
            "service.session",
            party="alice",
            phase="service",
            kind=kind,
            transport=transport,
            session=session_id,
        )
        adopt_context(span, trace_context)
        started = time.monotonic()
        transcripts: List[Transcript] = []
        error_text: Optional[str] = None
        try:
            with span:
                if kind == "classify":
                    self._serve_classify(endpoint, seed, session_id, transcripts)
                else:
                    self._serve_similarity(
                        endpoint, request, seed, session_id, transcripts
                    )
        except ReproError as error:
            error_text = f"{type(error).__name__}: {error}"
            if span.enabled:
                span.set(error=error_text)
            raise
        finally:
            self._record_session(
                session_id, kind, transport, started, transcripts, span, error_text
            )

    def _record_session(
        self,
        session_id: str,
        kind: str,
        transport: str,
        started: float,
        transcripts: List[Transcript],
        span: Any,
        error_text: Optional[str],
    ) -> None:
        """Per-session telemetry + the trace log entry, success or not."""
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.histogram(
                SESSION_SECONDS,
                "Trainer service session duration in seconds",
                buckets=DEFAULT_LATENCY_BUCKETS,
            ).observe(time.monotonic() - started, kind=kind, transport=transport)
            phase_counter = metrics.counter(
                SESSION_PHASE_BYTES,
                "Per-phase protocol wire bytes served, by session kind",
            )
            session_bytes = 0
            for transcript in transcripts:
                for phase, count in transcript.bytes_by_phase().items():
                    phase_counter.inc(
                        count, phase=phase, kind=kind, transport=transport
                    )
                    session_bytes += count
            metrics.counter(
                SESSION_BYTES,
                "Protocol wire bytes served, by session",
            ).inc(session_bytes, session=session_id, kind=kind, transport=transport)
        # Keyed on the span, not the live tracer: the session was traced
        # iff its span is real, even if tracing was toggled off since.
        if getattr(span, "enabled", False):
            self._trace_log.append(
                {
                    "session": session_id,
                    "kind": kind,
                    "error": error_text,
                    "jsonl": spans_to_jsonl([span]),
                }
            )

    def _serve_classify(
        self,
        endpoint: Any,
        seed: Optional[int],
        session_id: str,
        transcripts: List[Transcript],
    ) -> None:
        endpoint.send_control(
            ACCEPT,
            {
                "dimension": self.model.dimension,
                "degree": self._function.total_degree,
                "session": session_id,
            },
        )
        channel = endpoint.channel()
        transcripts.append(channel.transcript)
        run_ompe_sender(
            self._function,
            channel,
            config=self.config,
            seed=seed,
            amplify=True,
            offset=False,
            name="alice",
        )

    def _serve_similarity(
        self,
        endpoint: Any,
        request: Any,
        seed: Optional[int],
        session_id: str,
        transcripts: List[Transcript],
    ) -> None:
        model_key = request.get("model")
        if model_key is None:
            serving = self.model
        else:
            if not isinstance(model_key, str):
                raise ProtocolError(
                    f"session/open 'model' must be a string key, got "
                    f"{model_key!r}"
                )
            serving = self.models.get(model_key)
            if serving is None:
                raise ProtocolError(
                    f"unknown server model {model_key!r}; this server hosts "
                    f"{sorted(self.models) if self.models else ['<default>']}"
                )
        linear = serving.is_linear()
        if bool(request.get("linear")) != linear:
            raise ProtocolError(
                "similarity requires both models to be linear or both kernel"
            )
        requested = request.get("policy")
        if requested is not None and not isinstance(requested, OutputPolicy):
            raise ProtocolError(
                "session/open 'policy' must be a similarity/output-policy "
                f"payload, got {requested!r}"
            )
        effective = requested if requested is not None else self.output_policy
        if (
            requested is not None
            and self.output_policy is not None
            and requested != self.output_policy
        ):
            raise ProtocolError(
                f"server mandates output policy "
                f"{self.output_policy.label!r}; refusing requested "
                f"{requested.label!r}"
            )
        # The accept echo is the negotiation result: the client applies
        # exactly the echoed policy, so a server-mandated policy
        # propagates even when the client requested nothing.
        endpoint.send_control(
            ACCEPT,
            {
                "linear": linear,
                "session": session_id,
                "policy": effective,
                "model": model_key,
            },
        )
        if effective is not None and obs.get_metrics().enabled:
            from repro.core.privacy.leakage import record_leakage

            record_leakage(effective, 1)

        def factory():
            channel = endpoint.channel()
            transcripts.append(channel.transcript)
            return channel

        if linear:
            run_similarity_alice_linear(
                serving, factory,
                params=self.params, config=self.config, seed=seed,
            )
        else:
            peer_sv_count = request.get("n_support")
            if not isinstance(peer_sv_count, int) or peer_sv_count < 1:
                raise ProtocolError(
                    "kernel similarity needs the client's support-vector "
                    f"count in session/open, got {peer_sv_count!r}"
                )
            run_similarity_alice_nonlinear(
                serving, peer_sv_count, factory,
                params=self.params, config=self.config, seed=seed,
            )

    # -- admin channel --------------------------------------------------------

    def _serve_admin(
        self, connection: WireConnection, msg_type: str, request: Any
    ) -> None:
        """Answer one ``admin/*`` request on the same connection."""
        if msg_type == ADMIN_METRICS:
            metrics = obs.get_metrics()
            if metrics.enabled:
                dump = AdminMetricsDump(
                    enabled=True,
                    prometheus=metrics.to_prometheus(),
                    snapshot_json=metrics.to_json(),
                )
            else:
                dump = AdminMetricsDump(enabled=False, prometheus="", snapshot_json="")
            send_control(connection, ADMIN_METRICS, dump)
        elif msg_type == ADMIN_HEALTH:
            send_control(connection, ADMIN_HEALTH, self._health())
        else:
            session = None
            if isinstance(request, dict):
                session = request.get("session")
                if session is not None and not isinstance(session, str):
                    raise ProtocolError("admin/trace 'session' must be a string")
            entries = [
                dict(entry)
                for entry in list(self._trace_log)
                if session is None or entry["session"] == session
            ]
            send_control(connection, ADMIN_TRACE, AdminTraceDump(tuple(entries)))

    def _health(self) -> AdminHealth:
        """A point-in-time occupancy/drain snapshot for ``admin/health``."""
        tracer = obs.get_tracer()
        open_by_thread = tracer.open_spans() if tracer.enabled else {}
        now = time.monotonic()
        with self._lock:
            states = list(self._connections.values())
            served = self._served
            mux_live = [dict(entry) for entry in self._mux_live.values()]
            mux = self._mux
        sessions = []
        for entry in mux_live:
            sessions.append(
                {
                    "session": entry["session"],
                    "kind": entry["kind"],
                    "age_s": now - entry["started_at"],
                }
            )
        for state in states:
            if state.state != "session":
                continue
            entry: Dict[str, Any] = {
                "session": state.session_id,
                "kind": state.kind,
                "age_s": now - state.started_at,
            }
            span = (
                open_by_thread.get(state.thread_ident)
                if state.thread_ident is not None
                else None
            )
            if span is not None:
                entry["span"] = span.name
                entry["phase"] = span.phase
            sessions.append(entry)
        return AdminHealth(
            active_connections=len(states)
            + (mux.connection_count if mux is not None else 0),
            max_connections=self.max_connections,
            sessions_served=served,
            stopping=self._stopping.is_set(),
            draining=self._draining.is_set(),
            sessions=tuple(sessions),
        )


class _WireClientSession:
    """Client-side v1 session: control + channel on the raw connection."""

    def __init__(self, connection: WireConnection, request: Any) -> None:
        self._connection = connection
        send_control(connection, OPEN, request)

    def recv_accept(self) -> Any:
        return recv_control(self._connection, ACCEPT)[1]

    def channel(self) -> WireChannel:
        return WireChannel("bob", "alice", self._connection)

    def abort(self, reason: str) -> None:
        pass  # v1 has no session-scoped cancel; the connection is the session

    def finish(self) -> None:
        pass


class _MuxClientSession:
    """Client-side v2 session: one endpoint on the shared connection."""

    def __init__(
        self, mux_connection: MuxClientConnection, request: Any
    ) -> None:
        self._session = mux_connection.open_session(request)

    def recv_accept(self) -> Any:
        _, payload = self._session.recv_control(ACCEPT)
        return payload

    def channel(self) -> MuxChannel:
        return MuxChannel("bob", "alice", self._session)

    def abort(self, reason: str) -> None:
        self._session.cancel(reason)

    def finish(self) -> None:
        self._session.finish()


class SessionFuture:
    """Result handle for one pipelined (protocol v2) session.

    Returned by :meth:`TrainerClient.classify_async` and
    :meth:`TrainerClient.evaluate_similarity_async`.  ``result()``
    blocks (optionally bounded) for the session's outcome; ``cancel()``
    aborts the in-flight session — the server receives a
    ``session/error`` frame on exactly that session and every other
    pipelined session keeps running.
    """

    def __init__(self) -> None:
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._finished = threading.Event()
        self._lock = threading.Lock()
        self._session: Optional[_MuxClientSession] = None
        self._cancel_reason: Optional[str] = None

    # -- driver side -----------------------------------------------------------

    def _attach(self, session: _MuxClientSession) -> None:
        with self._lock:
            self._session = session
            reason = self._cancel_reason
        if reason is not None:
            session.abort(reason)

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._finished.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._finished.set()

    # -- caller side -----------------------------------------------------------

    def done(self) -> bool:
        """True once the session finished (successfully or not)."""
        return self._finished.is_set()

    def cancel(self, reason: str = "session cancelled by client") -> bool:
        """Abort the in-flight session; False if it already finished.

        The session's driver thread unblocks with a
        :class:`ProtocolError`, which :meth:`result` then re-raises.
        """
        if self._finished.is_set():
            return False
        with self._lock:
            session = self._session
            self._cancel_reason = reason
        if session is not None:
            session.abort(reason)
        return True

    def result(self, timeout: Optional[float] = None) -> Any:
        """The session outcome; raises what the session raised.

        An expired ``timeout`` raises :class:`ProtocolError` and leaves
        the session running — pair with :meth:`cancel` to abandon it.
        """
        if not self._finished.wait(timeout):
            raise ProtocolError(
                "timed out waiting for the pipelined session result"
            )
        if self._error is not None:
            raise self._error
        return self._value


def _upgrade_client(
    connection: WireConnection,
    protocol: str,
    timeout: Optional[float],
    redial: Any = None,
) -> Tuple[WireConnection, Optional[MuxClientConnection]]:
    """Negotiate the client's wire protocol on a fresh connection.

    Returns ``(connection, mux_or_None)``.  With ``protocol="auto"``, a
    peer that refuses the v2 upgrade (it drops the connection after its
    error reply) is redialed through ``redial`` and spoken to in v1.
    """
    if protocol not in CLIENT_PROTOCOLS:
        raise ValidationError(
            f"protocol must be one of {CLIENT_PROTOCOLS}, got {protocol!r}"
        )
    if protocol == "v1":
        return connection, None
    try:
        return connection, MuxClientConnection(connection, timeout=timeout)
    except ProtocolError:
        connection.close()
        if protocol == "v2" or redial is None:
            raise
        return redial(), None


class TrainerClient:
    """Client (Bob) side of the trainer service — one connection.

    Pass ``connection`` (e.g. one end of
    :func:`repro.net.wire.memory_pair`) to drive a pre-established
    connection instead of dialing ``host:port``.

    ``protocol`` selects the wire protocol: ``"v1"`` (default, the
    legacy sequential connection), ``"v2"`` (session-multiplexed —
    :meth:`classify_async` / :meth:`evaluate_similarity_async` pipeline
    any number of concurrent sessions over this one connection), or
    ``"auto"`` (try v2, fall back to v1 when the server refuses the
    upgrade; needs ``host``/``port`` to redial).  Protocol runs are
    bit-identical across v1 and v2 for the same seed.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        config: Optional[OMPEConfig] = None,
        params: Optional[MetricParams] = None,
        timeout: Optional[float] = 30.0,
        attempts: int = 5,
        retry_delay_s: float = 0.05,
        connection: Optional[WireConnection] = None,
        protocol: str = "v1",
    ) -> None:
        self.config = config or OMPEConfig()
        self.params = params or MetricParams()
        redial = None
        if connection is not None:
            self._connection = connection
        else:
            if host is None or port is None:
                raise ValidationError(
                    "TrainerClient needs host and port (or a connection)"
                )

            def redial() -> WireConnection:
                return wire.connect(
                    host,
                    port,
                    timeout=timeout,
                    attempts=attempts,
                    retry_delay_s=retry_delay_s,
                )

            self._connection = redial()
        self._connection, self._mux = _upgrade_client(
            self._connection, protocol, timeout, redial=redial
        )
        #: The negotiated wire protocol ("v1" or "v2").
        self.protocol = "v2" if self._mux is not None else "v1"

    def close(self) -> None:
        if self._mux is not None:
            self._mux.close()
            return
        try:
            send_control(self._connection, CLOSE, None)
        except ReproError:
            pass  # server already hung up
        self._connection.close()

    def __enter__(self) -> "TrainerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sessions ------------------------------------------------------------

    def _open_session(self, request: Any) -> Any:
        if self._mux is not None:
            return _MuxClientSession(self._mux, request)
        return _WireClientSession(self._connection, request)

    def classify(
        self, sample: Sequence[float], seed: Optional[int] = None
    ) -> ClassificationOutcome:
        """Privately classify one sample against the server's model.

        Given the same seed, the result — label, masked value
        ``r_a·d(t̃)``, and per-phase byte counts — is bit-identical to
        an in-process :func:`~repro.core.classification.private_classify`
        against the same model, on either wire protocol.
        """
        return self._classify(sample, seed)

    def classify_async(
        self, sample: Sequence[float], seed: Optional[int] = None
    ) -> SessionFuture:
        """Pipeline one classification session (protocol v2 only).

        Returns immediately with a :class:`SessionFuture`; any number
        of sessions may be in flight on this one connection at once.
        """
        self._require_mux()
        future = SessionFuture()
        sample = tuple(sample)

        def drive() -> None:
            try:
                future._resolve(
                    self._classify(sample, seed, on_session=future._attach)
                )
            except BaseException as error:  # noqa: BLE001 — surfaced by result()
                future._fail(error)

        threading.Thread(
            target=drive, name="client-session", daemon=True
        ).start()
        return future

    def evaluate_similarity_async(
        self,
        model: SVMModel,
        seed: Optional[int] = None,
        policy: Optional[OutputPolicy] = None,
        server_model: Optional[str] = None,
    ) -> SessionFuture:
        """Pipeline one similarity session (protocol v2 only)."""
        self._require_mux()
        future = SessionFuture()

        def drive() -> None:
            try:
                future._resolve(
                    self._similarity(
                        model, seed, policy,
                        server_model=server_model,
                        on_session=future._attach,
                    )
                )
            except BaseException as error:  # noqa: BLE001 — surfaced by result()
                future._fail(error)

        threading.Thread(
            target=drive, name="client-session", daemon=True
        ).start()
        return future

    def _require_mux(self) -> None:
        if self._mux is None:
            raise ValidationError(
                "pipelined sessions need protocol='v2' (or 'auto' against "
                "a v2 server)"
            )

    def _classify(
        self,
        sample: Sequence[float],
        seed: Optional[int],
        on_session: Any = None,
    ) -> ClassificationOutcome:
        sample = tuple(sample)
        with obs.get_tracer().span(
            "service.classify", party="bob", phase="service"
        ) as span:
            request: Dict[str, Any] = {"kind": "classify", "seed": seed}
            context = current_trace_context()
            if context is not None:
                request["trace"] = context
            session = None
            try:
                session = self._open_session(request)
                if on_session is not None:
                    on_session(session)
                accept = session.recv_accept()
                if not isinstance(accept, dict) or not isinstance(
                    accept.get("dimension"), int
                ):
                    raise ProtocolError(
                        "session/accept payload is missing an integer "
                        f"'dimension' field: {accept!r}"
                    )
                _annotate_session(span, accept)
                dimension = accept["dimension"]
                if len(sample) != dimension:
                    raise ValidationError(
                        f"sample has {len(sample)} coordinates, server model "
                        f"expects {dimension}"
                    )
                channel = session.channel()
                outcome = run_ompe_receiver(
                    sample, channel, config=self.config, seed=seed, name="bob"
                )
                session.finish()
            except ReproError as error:
                if session is not None:
                    session.abort(f"{type(error).__name__}: {error}")
                if span.enabled:
                    span.set(error=f"{type(error).__name__}: {error}")
                raise
        return ClassificationOutcome(
            label=_label_from_value(outcome.value),
            randomized_value=outcome.value,
            report=outcome.report,
        )

    def evaluate_similarity(
        self,
        model: SVMModel,
        seed: Optional[int] = None,
        policy: Optional[OutputPolicy] = None,
        server_model: Optional[str] = None,
    ) -> PrivateSimilarityOutcome:
        """Compare the client's model against the server's.

        The client learns the triangle metric ``T``; the server learns
        only the inseparable clear norms, exactly as in the in-process
        protocol.  ``policy`` requests an output policy for this
        session; the *echoed* policy from ``session/accept`` — which
        may be the server's mandated default when ``policy`` is
        ``None`` — is what gets applied, so a non-raw negotiation
        returns a mitigated outcome instead of the raw one.
        ``server_model`` selects one key of a multi-model server's
        collection as the server-side model (``None`` keeps the
        server's default).
        """
        return self._similarity(model, seed, policy, server_model=server_model)

    def _similarity(
        self,
        model: SVMModel,
        seed: Optional[int],
        policy: Optional[OutputPolicy],
        server_model: Optional[str] = None,
        on_session: Any = None,
    ) -> PrivateSimilarityOutcome:
        linear = model.is_linear()
        if policy is not None and not isinstance(policy, OutputPolicy):
            raise ValidationError(
                f"policy must be an OutputPolicy, got {policy!r}"
            )
        with obs.get_tracer().span(
            "service.similarity", party="bob", phase="service"
        ) as span:
            request: Dict[str, Any] = {
                "kind": "similarity",
                "seed": seed,
                "linear": linear,
                "n_support": None if linear else model.n_support,
                "policy": policy,
            }
            if server_model is not None:
                if not isinstance(server_model, str):
                    raise ValidationError(
                        f"server_model must be a string key, got "
                        f"{server_model!r}"
                    )
                request["model"] = server_model
            context = current_trace_context()
            if context is not None:
                request["trace"] = context
            session = None
            try:
                session = self._open_session(request)
                if on_session is not None:
                    on_session(session)
                accept = session.recv_accept()
                if not isinstance(accept, dict):
                    raise ProtocolError(
                        f"session/accept payload must be a mapping: {accept!r}"
                    )
                if bool(accept.get("linear")) != linear:
                    raise ProtocolError(
                        "similarity requires both models to be linear or both "
                        "kernel"
                    )
                echoed = accept.get("policy")
                if echoed is not None and not isinstance(echoed, OutputPolicy):
                    raise ProtocolError(
                        "session/accept 'policy' must be a "
                        f"similarity/output-policy payload, got {echoed!r}"
                    )
                if policy is not None and echoed != policy:
                    raise ProtocolError(
                        f"server accepted policy "
                        f"{echoed.label if echoed else None!r} instead of "
                        f"the requested {policy.label!r}"
                    )
                if (
                    server_model is not None
                    and accept.get("model") != server_model
                ):
                    raise ProtocolError(
                        f"server accepted model {accept.get('model')!r} "
                        f"instead of the requested {server_model!r}"
                    )
                _annotate_session(span, accept)
                factory = session.channel
                if linear:
                    outcome = run_similarity_bob_linear(
                        model, factory,
                        params=self.params, config=self.config, seed=seed,
                        policy=echoed,
                    )
                else:
                    outcome = run_similarity_bob_nonlinear(
                        model, factory,
                        params=self.params, config=self.config, seed=seed,
                        policy=echoed,
                    )
                session.finish()
                return outcome
            except ReproError as error:
                if session is not None:
                    session.abort(f"{type(error).__name__}: {error}")
                if span.enabled:
                    span.set(error=f"{type(error).__name__}: {error}")
                raise


class AdminClient:
    """Drives the ``admin/*`` channel on a dedicated connection.

    Admin requests are ordinary framed control messages — no auth; the
    server binds to ``127.0.0.1`` by default, and deployments that bind
    wider must firewall the port (see PROTOCOL.md).  Like
    :class:`TrainerClient`, pass ``connection`` to reuse a
    pre-established endpoint instead of dialing.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 10.0,
        attempts: int = 5,
        retry_delay_s: float = 0.05,
        connection: Optional[WireConnection] = None,
        protocol: str = "v1",
    ) -> None:
        redial = None
        if connection is not None:
            self._connection = connection
        else:
            if host is None or port is None:
                raise ValidationError(
                    "AdminClient needs host and port (or a connection)"
                )

            def redial() -> WireConnection:
                return wire.connect(
                    host,
                    port,
                    timeout=timeout,
                    attempts=attempts,
                    retry_delay_s=retry_delay_s,
                )

            self._connection = redial()
        self._connection, self._mux = _upgrade_client(
            self._connection, protocol, timeout, redial=redial
        )
        self.protocol = "v2" if self._mux is not None else "v1"

    def close(self) -> None:
        if self._mux is not None:
            self._mux.close()
            return
        try:
            send_control(self._connection, CLOSE, None)
        except ReproError:
            pass  # server already hung up
        self._connection.close()

    def __enter__(self) -> "AdminClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, msg_type: str, payload: Any) -> Any:
        if self._mux is not None:
            # Admin traffic rides the reserved control session (id 0),
            # so it never contends with protocol sessions for an id.
            reply_type, response = self._mux.control_request(msg_type, payload)
            if reply_type != msg_type:
                raise ProtocolError(
                    f"expected control message {msg_type!r}, got {reply_type!r}"
                )
            return response
        send_control(self._connection, msg_type, payload)
        _, response = recv_control(self._connection, msg_type)
        return response

    def metrics(self) -> AdminMetricsDump:
        """The server's live metrics registry (Prometheus + JSON)."""
        response = self._request(ADMIN_METRICS, None)
        if not isinstance(response, AdminMetricsDump):
            raise ProtocolError(f"malformed admin/metrics response: {response!r}")
        return response

    def health(self) -> AdminHealth:
        """Occupancy, drain state, and live per-session phase/age."""
        response = self._request(ADMIN_HEALTH, None)
        if not isinstance(response, AdminHealth):
            raise ProtocolError(f"malformed admin/health response: {response!r}")
        return response

    def trace(self, session: Optional[str] = None) -> AdminTraceDump:
        """Completed sessions' span fragments (optionally one session)."""
        payload = None if session is None else {"session": session}
        response = self._request(ADMIN_TRACE, payload)
        if not isinstance(response, AdminTraceDump):
            raise ProtocolError(f"malformed admin/trace response: {response!r}")
        return response


class TrainerClientPool:
    """``size`` pooled trainer-service connections with batched fan-out.

    Each pooled connection is a full :class:`TrainerClient`; a session
    borrows one connection for its whole duration and returns it, so
    concurrent callers never interleave frames on a connection.
    :meth:`classify_many` fans a batch out across the pool (one worker
    thread per pooled connection) and returns outcomes in input order —
    with pinned seeds the results are bit-identical to running the
    batch sequentially on one client.

    With ``protocol="v2"`` (or ``"auto"`` against a v2 server) each
    pooled connection is multiplexed: :meth:`classify_many` pipelines up
    to ``pipeline`` concurrent sessions *per connection* instead of one,
    so a small pool drives a large session fan-out.
    """

    def __init__(
        self,
        host: str,
        port: int,
        size: int = 4,
        config: Optional[OMPEConfig] = None,
        params: Optional[MetricParams] = None,
        timeout: Optional[float] = 30.0,
        attempts: int = 5,
        retry_delay_s: float = 0.05,
        protocol: str = "v1",
        pipeline: int = 16,
    ) -> None:
        if size < 1:
            raise ValidationError(f"pool size must be at least 1, got {size}")
        if pipeline < 1:
            raise ValidationError(
                f"pipeline depth must be at least 1, got {pipeline}"
            )
        self.size = size
        self.pipeline = pipeline
        #: Bound on each pipelined result wait (see
        #: :meth:`_fan_out_pipelined`); ``None`` waits forever.
        self._timeout = timeout
        self._host = host
        self._port = port
        self._connect_kwargs = dict(
            config=config,
            params=params,
            timeout=timeout,
            attempts=attempts,
            retry_delay_s=retry_delay_s,
            protocol=protocol,
        )
        self._clients: List[TrainerClient] = []
        self._idle: "queue.LifoQueue[TrainerClient]" = queue.LifoQueue()
        try:
            for _ in range(size):
                client = TrainerClient(host, port, **self._connect_kwargs)
                self._clients.append(client)
                self._idle.put(client)
        except ReproError:
            self.close()
            raise

    def close(self) -> None:
        for client in self._clients:
            try:
                client.close()
            except ReproError:
                pass
        self._clients = []
        self._idle = queue.LifoQueue()

    def __enter__(self) -> "TrainerClientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @contextmanager
    def _borrow(self) -> Iterator[TrainerClient]:
        client = self._idle.get()
        try:
            yield client
        finally:
            self._idle.put(client)

    # -- sessions ------------------------------------------------------------

    def classify(
        self, sample: Sequence[float], seed: Optional[int] = None
    ) -> ClassificationOutcome:
        """Classify one sample on any idle pooled connection."""
        with self._borrow() as client:
            return client.classify(sample, seed=seed)

    def evaluate_similarity(
        self,
        model: SVMModel,
        seed: Optional[int] = None,
        policy: Optional[OutputPolicy] = None,
    ) -> PrivateSimilarityOutcome:
        """Run one similarity session on any idle pooled connection."""
        with self._borrow() as client:
            return client.evaluate_similarity(model, seed=seed, policy=policy)

    @staticmethod
    def _seed_list(
        seeds: Optional[Sequence[Optional[int]]], count: int, what: str
    ) -> List[Optional[int]]:
        if seeds is None:
            return [None] * count
        seed_list = list(seeds)
        if len(seed_list) != count:
            raise ValidationError(
                f"got {count} {what} but {len(seed_list)} seeds"
            )
        return seed_list

    def classify_many(
        self,
        samples: Sequence[Sequence[float]],
        seeds: Optional[Sequence[Optional[int]]] = None,
        return_errors: bool = False,
    ) -> List[Any]:
        """Classify a batch across the pool; outcomes keep input order.

        ``seeds`` pins one seed per sample (``None`` entries let the
        protocol draw fresh randomness).  By default the first failure
        is re-raised after the whole batch has been attempted, so one
        bad sample cannot silently drop its neighbours' results; with
        ``return_errors=True`` failed positions hold a typed
        :class:`~repro.exceptions.BatchItemError` instead (its
        ``__cause__`` is the underlying failure) and nothing raises.
        """
        samples = [tuple(sample) for sample in samples]
        seed_list = self._seed_list(seeds, len(samples), "samples")

        def run(client: TrainerClient, index: int) -> ClassificationOutcome:
            return client.classify(samples[index], seed=seed_list[index])

        def start(client: TrainerClient, index: int) -> SessionFuture:
            return client.classify_async(samples[index], seed=seed_list[index])

        return self._fan_out(len(samples), run, start, return_errors)

    def evaluate_similarity_many(
        self,
        models: Sequence[SVMModel],
        seeds: Optional[Sequence[Optional[int]]] = None,
        policy: Optional[OutputPolicy] = None,
        server_models: Optional[Sequence[Optional[str]]] = None,
        return_errors: bool = False,
    ) -> List[Any]:
        """Run a batch of similarity sessions; outcomes keep input order.

        The similarity twin of :meth:`classify_many` — this is the
        fan-out the bulk-linkage TCP backend drives.  ``server_models``
        optionally names, per item, which key of a multi-model server's
        collection serves as the server-side model.  Error semantics
        match :meth:`classify_many`, including ``return_errors``.
        """
        models = list(models)
        seed_list = self._seed_list(seeds, len(models), "models")
        if server_models is None:
            key_list: List[Optional[str]] = [None] * len(models)
        else:
            key_list = list(server_models)
            if len(key_list) != len(models):
                raise ValidationError(
                    f"got {len(models)} models but {len(key_list)} "
                    "server_models"
                )

        def run(client: TrainerClient, index: int) -> PrivateSimilarityOutcome:
            return client.evaluate_similarity(
                models[index],
                seed=seed_list[index],
                policy=policy,
                server_model=key_list[index],
            )

        def start(client: TrainerClient, index: int) -> SessionFuture:
            return client.evaluate_similarity_async(
                models[index],
                seed=seed_list[index],
                policy=policy,
                server_model=key_list[index],
            )

        return self._fan_out(len(models), run, start, return_errors)

    # -- batched fan-out -------------------------------------------------------

    def _fan_out(
        self,
        count: int,
        run: Any,
        start: Any,
        return_errors: bool,
    ) -> List[Any]:
        """Fan ``count`` sessions out across the pool, input-ordered.

        Dispatches to the pipelined (v2) or thread-per-session (v1)
        strategy.  Failures never scramble or drop neighbours: every
        item's outcome (or typed error) lands at its own index.
        """
        if count == 0:
            return []
        if self._clients and self._clients[0].protocol == "v2":
            return self._fan_out_pipelined(count, start, return_errors)
        return self._fan_out_threaded(count, run, return_errors)

    def _revive(self, client: TrainerClient) -> TrainerClient:
        """Swap a possibly-dead pooled connection for a fresh one.

        A v1 server closes the *whole connection* on a session error,
        so after a failed item the borrowed connection may be unusable;
        handing it back as-is would doom every later item that draws
        it.  Reconnect is best-effort: if the server is truly gone the
        dead client goes back and later items fail loudly (typed, at
        their own index) rather than hang.
        """
        try:
            fresh = TrainerClient(
                self._host, self._port, **self._connect_kwargs
            )
        except ReproError:
            return client
        try:
            client.close()
        except ReproError:
            pass
        self._clients[self._clients.index(client)] = fresh
        return fresh

    def _fan_out_threaded(
        self, count: int, run: Any, return_errors: bool
    ) -> List[Any]:
        """v1 fan-out: one worker thread per pooled connection."""
        results: List[Any] = [None] * count
        errors: List[Tuple[int, BaseException]] = []
        pending: "queue.SimpleQueue[int]" = queue.SimpleQueue()
        for index in range(count):
            pending.put(index)

        def worker() -> None:
            while True:
                try:
                    index = pending.get_nowait()
                except queue.Empty:
                    return
                client = self._idle.get()
                try:
                    results[index] = run(client, index)
                except BaseException as error:  # noqa: BLE001 — surfaced below
                    results[index] = self._batch_error(index, error)
                    errors.append((index, error))
                    client = self._revive(client)
                finally:
                    self._idle.put(client)

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(min(self.size, count))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return self._finish_batch(results, errors, return_errors)

    def _fan_out_pipelined(
        self, count: int, start: Any, return_errors: bool
    ) -> List[Any]:
        """v2 fan-out: pipeline sessions over the pooled connections.

        Items round-robin across the pool's multiplexed connections
        with a bounded in-flight window (``pipeline`` sessions per
        connection), collected in input order.  A session that errors
        or gets poisoned mid-window releases its in-flight slot the
        moment it is collected — a failed start never occupies a slot,
        and a collected failure frees one — so the window keeps
        advancing.  Result waits are bounded by the pool's ``timeout``;
        an expired wait cancels the session (releasing its server slot)
        and surfaces as that item's typed error instead of deadlocking
        the whole batch.
        """
        results: List[Any] = [None] * count
        errors: List[Tuple[int, BaseException]] = []
        window = self.pipeline * len(self._clients)
        inflight: "collections.deque" = collections.deque()

        def collect(index: int, future: SessionFuture) -> None:
            try:
                results[index] = future.result(self._timeout)
            except BaseException as error:  # noqa: BLE001 — surfaced below
                # Harmless when the session already finished (the
                # common case: it failed); essential when the wait
                # timed out with the session still running.
                future.cancel("abandoned by batch fan-out")
                results[index] = self._batch_error(index, error)
                errors.append((index, error))

        for index in range(count):
            if len(inflight) >= window:
                collect(*inflight.popleft())
            client = self._clients[index % len(self._clients)]
            try:
                inflight.append((index, start(client, index)))
            except BaseException as error:  # noqa: BLE001 — surfaced below
                results[index] = self._batch_error(index, error)
                errors.append((index, error))
        while inflight:
            collect(*inflight.popleft())
        return self._finish_batch(results, errors, return_errors)

    @staticmethod
    def _batch_error(index: int, error: BaseException) -> BatchItemError:
        wrapped = BatchItemError(index, f"{type(error).__name__}: {error}")
        wrapped.__cause__ = error
        return wrapped

    @staticmethod
    def _finish_batch(
        results: List[Any],
        errors: List[Tuple[int, BaseException]],
        return_errors: bool,
    ) -> List[Any]:
        if errors and not return_errors:
            _, error = min(errors, key=lambda pair: pair[0])
            raise error
        return results
