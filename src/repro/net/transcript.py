"""Protocol transcripts: the recorded view of each party.

A :class:`Transcript` accumulates every message crossing a channel.
Beyond cost accounting, transcripts are the object of the paper's
privacy analysis (Section VI-A): the *view* of a party is exactly the
set of messages it received plus its own randomness, and
:mod:`repro.core.privacy.analysis` inspects these views to check the
Level-1 objectives (e.g. the trainer's view never contains the raw
sample, the client's view never contains raw model coefficients).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.net.message import Message


def phase_of(msg_type: str) -> str:
    """Canonical phase label for a message type.

    Message types are ``<protocol>/<phase>`` (``"ompe/points"``,
    ``"ompe-batch/ot-setups"``); the phase is the last path segment, so
    the one-shot and batched protocols — and the metrics registry, the
    transcripts, and the cost model — all account bytes under one
    phase vocabulary: ``request``, ``params``, ``points``,
    ``ot-setups``, ``ot-choices``, ``ot-transfers``, ...
    """
    return msg_type.rsplit("/", 1)[-1]


@dataclass
class Transcript:
    """An append-only log of protocol messages."""

    messages: List[Message] = field(default_factory=list)

    def record(self, message: Message) -> None:
        """Append one message."""
        self.messages.append(message)

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self.messages)

    # -- views -----------------------------------------------------------

    def sent_by(self, party: str) -> List[Message]:
        """Messages originated by ``party``."""
        return [m for m in self.messages if m.sender == party]

    def received_by(self, party: str) -> List[Message]:
        """Messages delivered to ``party`` — that party's protocol view."""
        return [m for m in self.messages if m.recipient == party]

    def of_type(self, msg_type: str) -> List[Message]:
        """Messages with the given protocol-step label."""
        return [m for m in self.messages if m.msg_type == msg_type]

    # -- accounting ---------------------------------------------------------

    def total_bytes(self, predicate: Optional[Callable[[Message], bool]] = None) -> int:
        """Total wire bytes, optionally filtered."""
        return sum(
            m.size_bytes for m in self.messages if predicate is None or predicate(m)
        )

    def bytes_by_phase(self) -> Dict[str, int]:
        """Wire bytes grouped by canonical protocol phase.

        This is the byte-accounting definition shared with the live
        metrics (``repro_phase_bytes_total``) and the cost-model drift
        detector (:mod:`repro.obs.drift`): one phase label per message
        type via :func:`phase_of`, bytes summed per label.
        """
        totals: Dict[str, int] = {}
        for message in self.messages:
            phase = phase_of(message.msg_type)
            totals[phase] = totals.get(phase, 0) + message.size_bytes
        return totals

    def bytes_by_direction(self) -> Dict[str, int]:
        """Bytes grouped by ``sender->recipient`` direction."""
        totals: Dict[str, int] = {}
        for message in self.messages:
            key = f"{message.sender}->{message.recipient}"
            totals[key] = totals.get(key, 0) + message.size_bytes
        return totals

    def round_count(self) -> int:
        """Number of direction changes + 1 — communication rounds."""
        if not self.messages:
            return 0
        rounds = 1
        for previous, current in zip(self.messages, self.messages[1:]):
            if (previous.sender, previous.recipient) != (
                current.sender,
                current.recipient,
            ):
                rounds += 1
        return rounds

    def summary(self) -> Dict[str, object]:
        """Compact cost summary for reports."""
        return {
            "messages": len(self.messages),
            "rounds": self.round_count(),
            "total_bytes": self.total_bytes(),
            "by_direction": self.bytes_by_direction(),
            "by_phase": self.bytes_by_phase(),
        }
