"""Server-side event loop for protocol v2 (multiplexed) connections.

One :class:`MuxServerLoop` thread owns every upgraded connection's
socket through a ``selectors`` poll: it reads non-blocking, reassembles
length-prefixed frames, and routes each one through the connection's
:class:`~repro.net.mux.MuxRouter`.  Opened sessions are handed to a
bounded :class:`~concurrent.futures.ThreadPoolExecutor`
(``session_workers``) where the unchanged *blocking* protocol drivers
run — the anonlink-style split between async I/O workers and CPU
workers.  Session threads write back through a per-connection send
lock (with writability polling, since the loop owns the socket in
non-blocking mode), so the loop thread never blocks on a slow peer.

Fault containment mirrors the router's error vocabulary: a session-
scoped fault (unknown/duplicate/closed session id) answers with a
``session/error`` frame on the offending id and bumps
``repro_wire_faults_total{kind=...}`` — every other session keeps
running; a frame-level fault (truncated header, bad version byte,
undecodable message) kills the connection and poisons its sessions,
because past it the stream has no trustworthy frame boundaries.  A
mid-session disconnect poisons exactly that connection's sessions; the
loop and the other connections are untouched.

This module is transport-plumbing only: what a session *does* (accept
negotiation, protocol serving, budget accounting) is injected by
:class:`~repro.net.service.TrainerServer` as the ``session_handler``
and ``control_handler`` callbacks.
"""

from __future__ import annotations

import selectors
import socket
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.exceptions import ProtocolError, ReproError
from repro.net.mux import (
    CLOSE,
    ERROR,
    ClosedSessionError,
    DuplicateSessionError,
    MuxFrameError,
    MuxSession,
    UnknownSessionError,
)
from repro.net.wire import MAX_FRAME_BYTES, _wire_fault
from repro.utils.serialization import (
    CONTROL_SESSION_ID,
    decode_message,
    encode_message,
    encode_mux_frame,
)

_HEADER = struct.Struct(">I")

#: Deadline for best-effort error frames sent from the *loop* thread.
#: The loop serves every connection; it must never block long on one
#: hostile peer's full send buffer.
_LOOP_SEND_DEADLINE_S = 0.5


def _count_wire_bytes(direction: str, count: int) -> None:
    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_wire_bytes_total", "Raw TCP bytes, by direction"
        ).inc(count, direction=direction)


class MuxConnection:
    """One upgraded (protocol v2) server connection.

    The loop thread is the only reader and the only party that closes
    the socket; session threads send through :meth:`send_frame` under
    the send lock.  Session bookkeeping is lock-guarded because session
    threads discard their entry while the loop thread routes frames.
    """

    #: Transport label for session telemetry.
    transport = "tcp"

    def __init__(
        self,
        sock: socket.socket,
        session_timeout: Optional[float],
        on_closed: Optional[Callable[[], None]] = None,
    ) -> None:
        sock.setblocking(False)
        self.sock = sock
        self.session_timeout = session_timeout
        self.buffer = bytearray()
        self.router: Any = None  # set by the loop (import-cycle-free)
        self._on_closed = on_closed
        self._send_lock = threading.Lock()
        self._sessions: Dict[int, MuxSession] = {}
        self._sessions_lock = threading.Lock()
        # Closed-state flips under its own lock, NOT the send lock: the
        # loop thread closes connections and must never wait behind a
        # session thread stalled in a writability poll.
        self._state_lock = threading.Lock()
        self._closed = False

    # -- sessions ----------------------------------------------------------------

    def add_session(self, session: MuxSession) -> None:
        with self._sessions_lock:
            self._sessions[session.id] = session

    def get_session(self, session_id: int) -> Optional[MuxSession]:
        with self._sessions_lock:
            return self._sessions.get(session_id)

    def pop_session(self, session_id: int) -> Optional[MuxSession]:
        with self._sessions_lock:
            return self._sessions.pop(session_id, None)

    def drain_sessions(self) -> List[MuxSession]:
        with self._sessions_lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        return sessions

    @property
    def session_count(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # -- sending -----------------------------------------------------------------

    def send_frame(
        self, data: bytes, deadline_s: Optional[float] = None
    ) -> int:
        """Send one length-prefixed frame; thread-safe, blocking.

        The socket is non-blocking (the event loop owns its read side),
        so a full kernel buffer is waited out with writability polls —
        bounded by ``deadline_s`` when given, else by the connection's
        session timeout.
        """
        frame = _HEADER.pack(len(data)) + data
        if deadline_s is None:
            deadline_s = self.session_timeout
        deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        with self._send_lock:
            if self._closed:
                _wire_fault("disconnect")
                raise ProtocolError(
                    "peer connection lost during send: connection closed"
                )
            view = memoryview(frame)
            while view:
                try:
                    sent = self.sock.send(view)
                except (BlockingIOError, InterruptedError):
                    remaining = 0.2
                    if deadline is not None:
                        remaining = min(remaining, deadline - time.monotonic())
                        if remaining <= 0:
                            _wire_fault("timeout")
                            raise ProtocolError(
                                "send timed out"
                            ) from None
                    try:
                        selectors_wait_writable(self.sock, remaining)
                    except (OSError, ValueError) as exc:
                        _wire_fault("disconnect")
                        raise ProtocolError(
                            f"peer connection lost during send: {exc}"
                        ) from exc
                    continue
                except OSError as exc:
                    _wire_fault("disconnect")
                    raise ProtocolError(
                        f"peer connection lost during send: {exc}"
                    ) from exc
                view = view[sent:]
        _count_wire_bytes("sent", len(frame))
        return len(frame)

    def send_session_error(
        self, session_id: int, reason: str, from_loop: bool = False
    ) -> None:
        """Best-effort ``session/error`` frame on ``session_id``."""
        try:
            self.send_frame(
                encode_mux_frame(session_id, encode_message(ERROR, reason)),
                deadline_s=_LOOP_SEND_DEADLINE_S if from_loop else None,
            )
        except ProtocolError:
            pass  # the connection is already unusable

    # -- lifecycle ---------------------------------------------------------------

    def mark_closed(self) -> bool:
        """First caller wins; later calls are no-ops."""
        with self._state_lock:
            if self._closed:
                return False
            self._closed = True
        return True

    @property
    def closed(self) -> bool:
        return self._closed

    def notify_closed(self) -> None:
        if self._on_closed is not None:
            callback, self._on_closed = self._on_closed, None
            callback()


def selectors_wait_writable(sock: socket.socket, timeout: float) -> None:
    """Block until ``sock`` is writable (or ``timeout`` passes)."""
    with selectors.DefaultSelector() as selector:
        selector.register(sock, selectors.EVENT_WRITE)
        selector.select(max(0.0, timeout))


class MuxServerLoop:
    """The protocol-v2 event loop: one thread, many connections.

    ``session_handler(conn, session, request)`` runs on an executor
    thread for every accepted ``session/open``; it owns negotiation,
    protocol serving, and accounting.  ``control_handler(conn,
    msg_type, payload)`` answers control-session (admin) frames.
    ``service_fault(kind)`` reports server-level faults so this module
    stays free of a :mod:`repro.net.service` import.
    """

    def __init__(
        self,
        session_handler: Callable[[MuxConnection, MuxSession, Any], None],
        control_handler: Callable[[MuxConnection, str, Any], None],
        service_fault: Callable[[str], None],
        router_factory: Callable[[], Any],
        session_workers: int = 8,
        session_timeout: Optional[float] = None,
    ) -> None:
        self._session_handler = session_handler
        self._control_handler = control_handler
        self._service_fault = service_fault
        self._router_factory = router_factory
        self._session_workers = max(1, session_workers)
        self._session_timeout = session_timeout
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ)
        self._pending: List[MuxConnection] = []
        self._connections: List[MuxConnection] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- lifecycle ---------------------------------------------------------------

    def _ensure_started(self) -> None:
        with self._lock:
            if self._thread is not None:
                return
            self._executor = ThreadPoolExecutor(
                max_workers=self._session_workers,
                thread_name_prefix="mux-session",
            )
            self._thread = threading.Thread(
                target=self._run, name="mux-loop", daemon=True
            )
            self._thread.start()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except OSError:
            pass  # loop already shut down

    def adopt(
        self,
        sock: socket.socket,
        on_closed: Optional[Callable[[], None]] = None,
    ) -> MuxConnection:
        """Take ownership of an upgraded connection's socket."""
        self._ensure_started()
        conn = MuxConnection(
            sock, self._session_timeout, on_closed=on_closed
        )
        conn.router = self._router_factory()
        with self._lock:
            if self._stop.is_set():
                sock.close()
                raise ProtocolError("server is stopping; connection refused")
            self._pending.append(conn)
        self._wake()
        return conn

    @property
    def connection_count(self) -> int:
        with self._lock:
            return len(self._connections) + len(self._pending)

    @property
    def session_count(self) -> int:
        with self._lock:
            conns = list(self._connections)
        return sum(conn.session_count for conn in conns)

    def drain(self, deadline: float, poll_s: float = 0.05) -> None:
        """Wait (until ``deadline``) for in-flight sessions to finish."""
        while time.monotonic() < deadline:
            if self.session_count == 0:
                return
            time.sleep(poll_s)

    def shutdown(self, drain_timeout: float = 5.0) -> None:
        """Drain, force-close the stragglers, and stop the loop thread.

        Idempotent; safe to call when the loop never started.  Each
        connection still mid-session at the deadline counts one
        ``force-closed`` service fault, matching the v1 drain.
        """
        with self._lock:
            thread = self._thread
        if thread is not None:
            self.drain(time.monotonic() + drain_timeout)
        self._stop.set()
        self._wake()
        if thread is not None:
            thread.join(timeout=drain_timeout + 5.0)
        with self._lock:
            leftovers = self._connections + self._pending
            self._connections = []
            self._pending = []
            executor = self._executor
        for conn in leftovers:
            if conn.session_count:
                self._service_fault("force-closed")
            self._close_connection(
                conn,
                ProtocolError("server is stopping"),
                unregister=False,
            )
        if executor is not None:
            executor.shutdown(wait=True)
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass

    # -- the loop ----------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                events = self._selector.select(timeout=0.2)
            except OSError:
                break  # selector closed under us during shutdown
            self._admit_pending()
            for key, _ in events:
                if key.fileobj is self._wake_r:
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, InterruptedError):
                        pass
                    except OSError:
                        return
                    continue
                self._on_readable(key.data)

    def _admit_pending(self) -> None:
        with self._lock:
            pending, self._pending = self._pending, []
            self._connections.extend(pending)
        for conn in pending:
            self._selector.register(conn.sock, selectors.EVENT_READ, conn)

    def _on_readable(self, conn: MuxConnection) -> None:
        if conn.closed:
            return
        try:
            data = conn.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            _wire_fault("disconnect")
            self._close_connection(
                conn, ProtocolError(f"peer connection lost: {exc}")
            )
            return
        if not data:
            # EOF.  With sessions still open this is a mid-session
            # disconnect (a fault); between sessions it is an orderly
            # hang-up, exactly like the v1 serve loop's ConnectionClosed.
            if conn.session_count:
                _wire_fault("disconnect")
            self._close_connection(
                conn,
                ProtocolError("peer closed the connection mid-session"),
            )
            return
        conn.buffer += data
        self._pump_frames(conn)

    def _pump_frames(self, conn: MuxConnection) -> None:
        while not conn.closed:
            if len(conn.buffer) < _HEADER.size:
                return
            (length,) = _HEADER.unpack_from(conn.buffer)
            if length > MAX_FRAME_BYTES:
                _wire_fault("oversized-recv")
                self._close_connection(
                    conn,
                    ProtocolError(
                        f"peer announced a {length}-byte frame, above the "
                        f"{MAX_FRAME_BYTES}-byte frame cap"
                    ),
                )
                return
            if len(conn.buffer) < _HEADER.size + length:
                return
            frame = bytes(conn.buffer[_HEADER.size:_HEADER.size + length])
            del conn.buffer[:_HEADER.size + length]
            _count_wire_bytes("received", _HEADER.size + length)
            if not self._dispatch(conn, frame):
                return

    def _dispatch(self, conn: MuxConnection, frame: bytes) -> bool:
        """Route one frame; False once the connection is gone."""
        try:
            routed = conn.router.route(frame)
        except MuxFrameError as error:
            # Frame boundaries can no longer be trusted: kill the
            # connection (and only it).
            _wire_fault("mux-frame")
            conn.send_session_error(
                CONTROL_SESSION_ID, str(error), from_loop=True
            )
            self._close_connection(conn, error)
            return False
        except DuplicateSessionError as error:
            _wire_fault("duplicate-session")
            conn.send_session_error(error.session_id, str(error), from_loop=True)
            return True
        except ClosedSessionError as error:
            _wire_fault("closed-session")
            conn.send_session_error(error.session_id, str(error), from_loop=True)
            return True
        except UnknownSessionError as error:
            _wire_fault("unknown-session")
            conn.send_session_error(error.session_id, str(error), from_loop=True)
            return True
        if routed.action == "control":
            if routed.msg_type == CLOSE:
                self._close_connection(
                    conn, ProtocolError("peer closed the connection")
                )
                return False
            try:
                self._control_handler(conn, routed.msg_type, routed.payload)
            except ReproError as error:
                conn.send_session_error(
                    CONTROL_SESSION_ID, str(error), from_loop=True
                )
            return True
        if routed.action == "open":
            session = MuxSession(
                routed.session_id,
                conn.send_frame,
                timeout=conn.session_timeout,
            )
            conn.add_session(session)
            assert self._executor is not None
            self._executor.submit(
                self._run_session, conn, session, routed.payload
            )
            return True
        if routed.action == "deliver":
            session = conn.get_session(routed.session_id)
            if session is not None:
                session.deliver(routed.message)
            else:
                # The session finished server-side a moment ago; count
                # the straggler and drop it.
                _wire_fault("closed-session")
            return True
        # action == "close": the peer cancelled or orderly-closed the
        # session; unblock its serve thread with a typed error.
        session = conn.pop_session(routed.session_id)
        if session is not None:
            if routed.msg_type == ERROR:
                try:
                    _, reason, _ = decode_message(routed.message)
                except ReproError:
                    reason = "unreadable reason"
                session.poison(
                    ProtocolError(f"peer reported a session error: {reason!r}")
                )
            else:
                session.poison(
                    ProtocolError(
                        f"peer closed session {routed.session_id} mid-protocol"
                    )
                )
        return True

    def _run_session(
        self, conn: MuxConnection, session: MuxSession, request: Any
    ) -> None:
        try:
            self._session_handler(conn, session, request)
        finally:
            session.finish()
            conn.pop_session(session.id)
            conn.router.finish(session.id)

    def _close_connection(
        self,
        conn: MuxConnection,
        error: Exception,
        unregister: bool = True,
    ) -> None:
        if not conn.mark_closed():
            return
        if unregister:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            with self._lock:
                try:
                    self._connections.remove(conn)
                except ValueError:
                    pass
        try:
            conn.sock.close()
        except OSError:
            pass
        for session in conn.drain_sessions():
            session.poison(error)
        conn.notify_closed()
