"""Distributed-systems substrate: parties, channels, transcripts."""

from repro.net.channel import Channel, LinkModel
from repro.net.faults import CorruptingChannel, DroppingChannel, DuplicatingChannel
from repro.net.message import Message, measure_size
from repro.net.network import Network
from repro.net.party import Party, connect_parties
from repro.net.runner import ProtocolReport, finish_report
from repro.net.transcript import Transcript

__all__ = [
    "Channel",
    "CorruptingChannel",
    "DroppingChannel",
    "DuplicatingChannel",
    "LinkModel",
    "Message",
    "measure_size",
    "Network",
    "Party",
    "connect_parties",
    "ProtocolReport",
    "finish_report",
    "Transcript",
]
