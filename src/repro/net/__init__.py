"""Distributed-systems substrate: parties, channels, transcripts.

Two interchangeable transports implement the channel contract: the
in-memory :class:`Channel` (both parties lock-step in one process, with
a simulated network clock) and the TCP :class:`WireChannel`
(:mod:`repro.net.wire` — real sockets, length-prefixed frames, one
endpoint per process).  Protocol code in :mod:`repro.core` is written
against the contract and runs unchanged over either.
"""

from repro.net.channel import Channel, LinkModel, observe_message
from repro.net.faults import (
    CorruptingChannel,
    DelayingChannel,
    DroppingChannel,
    DuplicatingChannel,
    RetryingChannel,
)
from repro.net.message import Message, measure_size
from repro.net.network import Network
from repro.net.party import Party, connect_parties
from repro.net.runner import ProtocolReport, finish_report
from repro.net.transcript import Transcript, phase_of
from repro.net.wire import (
    MAX_FRAME_BYTES,
    WireChannel,
    WireConnection,
    accept,
    connect,
    listen,
)

__all__ = [
    "Channel",
    "CorruptingChannel",
    "DelayingChannel",
    "DroppingChannel",
    "DuplicatingChannel",
    "LinkModel",
    "MAX_FRAME_BYTES",
    "Message",
    "measure_size",
    "Network",
    "Party",
    "WireChannel",
    "WireConnection",
    "accept",
    "connect",
    "connect_parties",
    "listen",
    "observe_message",
    "ProtocolReport",
    "RetryingChannel",
    "finish_report",
    "Transcript",
    "phase_of",
]
