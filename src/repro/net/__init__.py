"""Distributed-systems substrate: parties, channels, transcripts."""

from repro.net.channel import Channel, LinkModel
from repro.net.faults import (
    CorruptingChannel,
    DelayingChannel,
    DroppingChannel,
    DuplicatingChannel,
    RetryingChannel,
)
from repro.net.message import Message, measure_size
from repro.net.network import Network
from repro.net.party import Party, connect_parties
from repro.net.runner import ProtocolReport, finish_report
from repro.net.transcript import Transcript, phase_of

__all__ = [
    "Channel",
    "CorruptingChannel",
    "DelayingChannel",
    "DroppingChannel",
    "DuplicatingChannel",
    "LinkModel",
    "Message",
    "measure_size",
    "Network",
    "Party",
    "connect_parties",
    "ProtocolReport",
    "RetryingChannel",
    "finish_report",
    "Transcript",
    "phase_of",
]
