"""Protocol execution helper.

Two-party protocols in this library are written as plain sequential
code (both roles in one process, communicating strictly through the
channel).  :class:`ProtocolReport` bundles everything an experiment
needs afterwards: the result, the transcript, wall-clock timings per
phase, and the simulated network time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.net.channel import Channel
from repro.net.transcript import Transcript
from repro.utils.timer import TimingRecorder


@dataclass
class ProtocolReport:
    """Outcome of one protocol execution."""

    result: Any
    transcript: Transcript
    timings: TimingRecorder = field(default_factory=TimingRecorder)
    simulated_network_s: float = 0.0

    @property
    def total_bytes(self) -> int:
        """Total wire bytes exchanged."""
        return self.transcript.total_bytes()

    @property
    def rounds(self) -> int:
        """Communication rounds."""
        return self.transcript.round_count()

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for tables and benchmark reports."""
        summary = {
            "total_bytes": self.total_bytes,
            "rounds": self.rounds,
            "messages": len(self.transcript),
            "simulated_network_s": self.simulated_network_s,
        }
        summary.update(
            {f"time_{name}_s": total for name, total in self.timings.as_dict().items()}
        )
        return summary


def finish_report(result: Any, channel: Channel, timings: TimingRecorder) -> ProtocolReport:
    """Build a report and assert the channel drained cleanly."""
    channel.assert_drained()
    return ProtocolReport(
        result=result,
        transcript=channel.transcript,
        timings=timings,
        simulated_network_s=channel.simulated_time,
    )
