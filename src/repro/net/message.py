"""Protocol messages and wire-size accounting.

Every value exchanged by the protocols travels as a :class:`Message`
through a :class:`~repro.net.channel.Channel`.  Messages carry their
wire size so the harness can report communication costs (the
distributed-systems dimension of the paper's evaluation) without a real
network.  The size is not an estimate: :func:`measure_size` computes
the exact length of the message codec's canonical encoding
(:func:`repro.utils.serialization.encoded_payload_size`), so the
simulated transport and the TCP transport (:mod:`repro.net.wire`)
account every message identically, byte for byte.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ValidationError
from repro.utils.serialization import encoded_payload_size

_COUNTER = itertools.count(1)


def measure_size(payload: Any) -> int:
    """Exact serialized size of a payload in bytes.

    Handles the protocol's actual vocabulary: ``None``, booleans, bytes,
    scalars (int / float / Fraction — integers count their true byte
    length, group elements are big), strings, tuples/lists/dicts of
    payloads, and registered protocol dataclasses.  Equal to
    ``len(encode_payload(payload))`` by construction — the regression
    suite pins the equality across the vocabulary.
    """
    return encoded_payload_size(payload)


@dataclass(frozen=True)
class Message:
    """One directed protocol message.

    Attributes
    ----------
    sender, recipient:
        Party names.
    msg_type:
        Short protocol-step label (e.g. ``"ompe/points"``).
    payload:
        The value itself (kept as a Python object; sizes are estimated).
    size_bytes:
        Estimated wire size.
    sequence:
        Global monotonically increasing id (ordering in transcripts).
    session_id:
        Wire session the message travelled on (protocol v2
        multiplexing); ``None`` on unmultiplexed transports.  Excluded
        from equality so v1, v2, and in-memory transcripts of the same
        protocol run compare equal message for message.
    """

    sender: str
    recipient: str
    msg_type: str
    payload: Any
    size_bytes: int = field(default=-1)
    sequence: int = field(default_factory=lambda: next(_COUNTER))
    session_id: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.msg_type:
            raise ValidationError("msg_type must be non-empty")
        if self.size_bytes < 0:
            object.__setattr__(self, "size_bytes", measure_size(self.payload))
