"""Protocol messages and wire-size accounting.

Every value exchanged by the protocols travels as a :class:`Message`
through a :class:`~repro.net.channel.Channel`.  Messages carry an
estimated wire size so the harness can report communication costs (the
distributed-systems dimension of the paper's evaluation) without a real
network.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from repro.exceptions import ValidationError
from repro.utils.serialization import encoded_size

_COUNTER = itertools.count(1)


def measure_size(payload: Any) -> int:
    """Estimate the serialized size of a payload in bytes.

    Handles the protocol's actual vocabulary: bytes, scalars (int /
    float / Fraction), tuples/lists of payloads, dataclasses (field by
    field), dicts, and ``None``.  Integers count their true byte length
    (group elements are big).
    """
    if payload is None:
        return 1
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float, Fraction)):
        return encoded_size(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (tuple, list)):
        return 4 + sum(measure_size(item) for item in payload)
    if isinstance(payload, dict):
        return 4 + sum(
            measure_size(key) + measure_size(value) for key, value in payload.items()
        )
    if hasattr(payload, "__dataclass_fields__"):
        return sum(
            measure_size(getattr(payload, name))
            for name in payload.__dataclass_fields__
        )
    raise ValidationError(
        f"cannot measure wire size of {type(payload).__name__}"
    )


@dataclass(frozen=True)
class Message:
    """One directed protocol message.

    Attributes
    ----------
    sender, recipient:
        Party names.
    msg_type:
        Short protocol-step label (e.g. ``"ompe/points"``).
    payload:
        The value itself (kept as a Python object; sizes are estimated).
    size_bytes:
        Estimated wire size.
    sequence:
        Global monotonically increasing id (ordering in transcripts).
    """

    sender: str
    recipient: str
    msg_type: str
    payload: Any
    size_bytes: int = field(default=-1)
    sequence: int = field(default_factory=lambda: next(_COUNTER))

    def __post_init__(self) -> None:
        if not self.msg_type:
            raise ValidationError("msg_type must be non-empty")
        if self.size_bytes < 0:
            object.__setattr__(self, "size_bytes", measure_size(self.payload))
