"""Exact linear algebra over rationals.

Gaussian elimination with :class:`fractions.Fraction` entries — no
rounding, no conditioning concerns.  Used by the Fig. 6 retrieval
attack in exact mode (with unamplified protocol values, ``n + 1``
queries determine ``(w, b)`` *exactly*, not just to float precision)
and available as a general substrate utility.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.exceptions import MathError, ValidationError

Matrix = List[List[Fraction]]


def _to_matrix(rows: Sequence[Sequence]) -> Matrix:
    if not rows:
        raise ValidationError("matrix must be non-empty")
    width = len(rows[0])
    if width == 0:
        raise ValidationError("matrix rows must be non-empty")
    matrix: Matrix = []
    for row in rows:
        if len(row) != width:
            raise ValidationError("matrix rows must have equal length")
        matrix.append([Fraction(value) for value in row])
    return matrix


def exact_solve(
    coefficients: Sequence[Sequence], constants: Sequence
) -> Tuple[Fraction, ...]:
    """Solve the square system ``A x = b`` exactly.

    Raises :class:`MathError` when the system is singular.
    """
    matrix = _to_matrix(coefficients)
    n = len(matrix)
    if any(len(row) != n for row in matrix):
        raise ValidationError("exact_solve requires a square matrix")
    vector = [Fraction(value) for value in constants]
    if len(vector) != n:
        raise ValidationError("constants must match the matrix size")

    # Forward elimination with partial (nonzero) pivoting.
    for column in range(n):
        pivot_row = next(
            (r for r in range(column, n) if matrix[r][column] != 0), None
        )
        if pivot_row is None:
            raise MathError("singular system: no pivot available")
        if pivot_row != column:
            matrix[column], matrix[pivot_row] = matrix[pivot_row], matrix[column]
            vector[column], vector[pivot_row] = vector[pivot_row], vector[column]
        pivot = matrix[column][column]
        for row in range(column + 1, n):
            factor = matrix[row][column] / pivot
            if factor == 0:
                continue
            for k in range(column, n):
                matrix[row][k] -= factor * matrix[column][k]
            vector[row] -= factor * vector[column]

    # Back substitution.
    solution = [Fraction(0)] * n
    for row in range(n - 1, -1, -1):
        accumulated = vector[row]
        for k in range(row + 1, n):
            accumulated -= matrix[row][k] * solution[k]
        solution[row] = accumulated / matrix[row][row]
    return tuple(solution)


def exact_determinant(coefficients: Sequence[Sequence]) -> Fraction:
    """Determinant via fraction-exact elimination."""
    matrix = _to_matrix(coefficients)
    n = len(matrix)
    if any(len(row) != n for row in matrix):
        raise ValidationError("determinant requires a square matrix")
    determinant = Fraction(1)
    for column in range(n):
        pivot_row = next(
            (r for r in range(column, n) if matrix[r][column] != 0), None
        )
        if pivot_row is None:
            return Fraction(0)
        if pivot_row != column:
            matrix[column], matrix[pivot_row] = matrix[pivot_row], matrix[column]
            determinant = -determinant
        pivot = matrix[column][column]
        determinant *= pivot
        for row in range(column + 1, n):
            factor = matrix[row][column] / pivot
            if factor == 0:
                continue
            for k in range(column, n):
                matrix[row][k] -= factor * matrix[column][k]
    return determinant


def fit_affine_exact(
    points: Sequence[Sequence], values: Sequence
) -> Tuple[Tuple[Fraction, ...], Fraction]:
    """Recover ``(w, b)`` from exactly ``n + 1`` samples of ``w·x + b``.

    The Fig. 6 attack in exact arithmetic: each sample contributes one
    linear equation.  Raises :class:`MathError` when the query points
    are affinely dependent (no unique hyperplane).
    """
    points = [list(point) for point in points]
    if not points:
        raise ValidationError("points must be non-empty")
    dimension = len(points[0])
    if len(points) != dimension + 1:
        raise ValidationError(
            f"exact recovery needs exactly n+1 = {dimension + 1} points, "
            f"got {len(points)}"
        )
    system = [[Fraction(value) for value in point] + [Fraction(1)] for point in points]
    solution = exact_solve(system, values)
    return solution[:-1], solution[-1]
