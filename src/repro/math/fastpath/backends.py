"""Pluggable bignum backends for the hot-path arithmetic engine.

The hot paths (fixed-base tables, Montgomery batch inversion, Jacobi
membership, Paillier CRT / ``r^n`` randomizers) all bottom out in a
handful of bignum primitives.  This module abstracts them behind a
:class:`BignumBackend` protocol with two implementations:

* :class:`PythonBackend` — plain CPython integers.  This is the
  **bit-identity oracle**: its outputs define correct behaviour, and
  the differential suites compare every other backend against it.
* :class:`Gmpy2Backend` — GMP via ``gmpy2`` (``pip install .[fast]``),
  auto-selected when importable.  Every result is lowered back to a
  Python ``int`` before it leaves the backend, so value *types* on the
  wire, in transcripts, and in serialized payloads are identical to the
  oracle's.

Selection order:

1. ``REPRO_BIGNUM_BACKEND`` environment variable (``python`` or
   ``gmpy2``) — explicit, and **loud** when the requested backend is
   not importable (CI legs must never silently fall back);
2. ``gmpy2`` when importable;
3. ``python`` otherwise.

The active backend only ever runs under the hot path
(:func:`repro.math.fastpath.enabled`); the naive reference arithmetic
stays pure CPython regardless of backend, so ``REPRO_NAIVE_ARITH=1``
always reproduces the seed implementation verbatim.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Tuple

try:  # Python < 3.8 has no typing.Protocol; the ABC is documentation only
    from typing import Protocol
except ImportError:  # pragma: no cover - ancient interpreters
    Protocol = object  # type: ignore[assignment]

from repro.exceptions import ValidationError


class BignumBackend(Protocol):
    """The primitive set every bignum backend must provide.

    All integer arguments are Python ``int``; all *returned values* are
    Python ``int`` (never a backend-native type), except :meth:`mpz`
    which deliberately lifts into the backend's native representation
    for long product chains — lower with :meth:`to_int` before the
    value escapes.
    """

    name: str

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent mod modulus`` (CPython ``pow`` semantics)."""

    def invert(self, value: int, modulus: int) -> int:
        """Modular inverse; raises :class:`ValidationError` when none exists."""

    def mul_mod(self, a: int, b: int, modulus: int) -> int:
        """``a * b mod modulus``."""

    def jacobi(self, a: int, n: int) -> int:
        """Jacobi symbol ``(a | n)`` for odd positive ``n``."""

    def mpz(self, value: int):
        """Lift an int into the backend-native type (identity for python)."""

    def to_int(self, value) -> int:
        """Lower a backend-native value back to a Python ``int``."""


class PythonBackend:
    """Pure-CPython backend — the bit-identity correctness oracle.

    The inverse/Jacobi implementations intentionally mirror
    :func:`repro.math.numtheory.modular_inverse` and
    :func:`repro.math.numtheory.jacobi_symbol` (they cannot import them:
    ``numtheory`` dispatches *into* this module), including the exact
    error messages, so swapping dispatch layers never changes observable
    behaviour.
    """

    name = "python"

    @staticmethod
    def powmod(base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    @staticmethod
    def invert(value: int, modulus: int) -> int:
        if modulus <= 1:
            raise ValidationError(f"modulus must exceed 1, got {modulus}")
        old_r, r = value % modulus, modulus
        old_s, s = 1, 0
        while r:
            quotient = old_r // r
            old_r, r = r, old_r - quotient * r
            old_s, s = s, old_s - quotient * s
        if old_r != 1:
            raise ValidationError(f"{value} is not invertible modulo {modulus}")
        return old_s % modulus

    @staticmethod
    def mul_mod(a: int, b: int, modulus: int) -> int:
        return (a * b) % modulus

    @staticmethod
    def jacobi(a: int, n: int) -> int:
        if n <= 0 or n % 2 == 0:
            raise ValidationError(f"Jacobi symbol requires odd positive n, got {n}")
        a %= n
        result = 1
        while a:
            while a % 2 == 0:
                a //= 2
                if n & 7 in (3, 5):
                    result = -result
            a, n = n, a
            if a & 3 == 3 and n & 3 == 3:
                result = -result
            a %= n
        return result if n == 1 else 0

    @staticmethod
    def mpz(value: int) -> int:
        return value

    @staticmethod
    def to_int(value) -> int:
        return int(value)


class Gmpy2Backend:
    """GMP-accelerated backend over an imported ``gmpy2`` module.

    Every public method lowers its result to Python ``int``; GMP error
    shapes (``ZeroDivisionError`` on non-invertible values,
    ``ValueError`` on even Jacobi moduli) are translated into the same
    :class:`ValidationError` messages the oracle raises.
    """

    name = "gmpy2"

    def __init__(self, module) -> None:
        self._gmpy2 = module
        self._mpz = module.mpz

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._gmpy2.powmod(base, exponent, modulus))

    def invert(self, value: int, modulus: int) -> int:
        if modulus <= 1:
            raise ValidationError(f"modulus must exceed 1, got {modulus}")
        try:
            inverse = self._gmpy2.invert(value % modulus, modulus)
        except ZeroDivisionError:
            raise ValidationError(
                f"{value} is not invertible modulo {modulus}"
            ) from None
        return int(inverse) % modulus

    def mul_mod(self, a: int, b: int, modulus: int) -> int:
        return int(self._mpz(a) * b % modulus)

    def jacobi(self, a: int, n: int) -> int:
        if n <= 0 or n % 2 == 0:
            raise ValidationError(f"Jacobi symbol requires odd positive n, got {n}")
        return int(self._gmpy2.jacobi(self._mpz(a), self._mpz(n)))

    def mpz(self, value: int):
        return self._mpz(value)

    @staticmethod
    def to_int(value) -> int:
        return int(value)


_PYTHON = PythonBackend()
_GMPY2: Tuple[bool, "Gmpy2Backend | None"] = (False, None)  # (probed, backend)
_LOCK = threading.Lock()


def _gmpy2_backend():
    """The gmpy2 backend, or None when the module is not importable."""
    global _GMPY2
    probed, backend = _GMPY2
    if not probed:
        with _LOCK:
            probed, backend = _GMPY2
            if not probed:
                try:
                    import gmpy2  # noqa: PLC0415 - optional accelerator
                except ImportError:
                    backend = None
                else:
                    backend = Gmpy2Backend(gmpy2)
                _GMPY2 = (True, backend)
    return backend


def gmpy2_available() -> bool:
    """True when the gmpy2 accelerator can be used in this process."""
    return _gmpy2_backend() is not None


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`set_backend`, oracle first."""
    if gmpy2_available():
        return ("python", "gmpy2")
    return ("python",)


def _resolve(name: str):
    normalized = name.strip().lower()
    if normalized == "python":
        return _PYTHON
    if normalized == "gmpy2":
        backend = _gmpy2_backend()
        if backend is None:
            raise ValidationError(
                "bignum backend 'gmpy2' requested but gmpy2 is not importable "
                "(install the [fast] extra)"
            )
        return backend
    raise ValidationError(
        f"unknown bignum backend {name!r} (available: python, gmpy2)"
    )


def _detect_default():
    forced = os.environ.get("REPRO_BIGNUM_BACKEND", "").strip()
    if forced:
        # Loud on purpose: a CI leg that asks for gmpy2 must fail, not
        # silently measure the oracle.
        return _resolve(forced)
    return _gmpy2_backend() or _PYTHON


_ACTIVE = _detect_default()


def get_backend() -> BignumBackend:
    """The active bignum backend (process-global)."""
    return _ACTIVE


def backend_name() -> str:
    """Name of the active backend (``python`` or ``gmpy2``)."""
    return _ACTIVE.name


def set_backend(name: str) -> BignumBackend:
    """Select the active backend by name; raises on unknown/unavailable."""
    global _ACTIVE
    _ACTIVE = _resolve(name)
    return _ACTIVE


@contextmanager
def use_backend(name: str) -> Iterator[BignumBackend]:
    """Run the enclosed block under a specific backend, then restore."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = _resolve(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
