"""Global switch and shared helpers for the hot-path arithmetic engine.

The protocol stack carries two parallel arithmetic implementations:

* the **naive reference** — straight ``pow()`` for group exponentiation
  and :class:`fractions.Fraction` operator arithmetic everywhere.  This
  is the seed implementation, retained verbatim as the correctness
  oracle;
* the **hot path** — windowed fixed-base exponentiation tables, Jacobi
  membership tests, Shamir dual-table OT key derivation, and
  scaled-integer evaluation of rational polynomials that defers the
  single ``Fraction`` normalisation to the very end.

Every hot path is *output-identical* to the naive reference: same
integers out of the group layer, same (canonically normalised)
``Fraction`` values out of the polynomial layer, and therefore the same
protocol transcripts, labels, and similarity values on the same seeds.
``tests/core/test_hotpath_differential.py`` pins that guarantee and
``benchmarks/bench_hotpath_arith.py`` measures the gap.

The switch is process-global: :func:`set_enabled` /
:func:`naive_arithmetic` flip it (benchmarks and differential tests),
and the ``REPRO_NAIVE_ARITH=1`` environment variable disables the hot
path at import time (engine worker processes inherit it).

Underneath the switch sits a second, orthogonal axis: the **bignum
backend** (:mod:`repro.math.fastpath.backends`).  The hot path
dispatches its primitive operations (``powmod``, ``invert``,
``mul_mod``, ``jacobi``) through the active :class:`BignumBackend` —
pure CPython by default (the oracle), GMP via ``gmpy2`` when importable
or forced with ``REPRO_BIGNUM_BACKEND``.  Both backends are
bit-identical; the naive reference never touches the backend at all.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from fractions import Fraction
from math import gcd
from typing import Iterator, Optional, Sequence, Tuple

from repro.math.fastpath.backends import (  # noqa: F401 - re-exported API
    BignumBackend,
    Gmpy2Backend,
    PythonBackend,
    available_backends,
    backend_name,
    get_backend,
    gmpy2_available,
    set_backend,
    use_backend,
)

_ENABLED = os.environ.get("REPRO_NAIVE_ARITH", "").strip().lower() not in (
    "1",
    "true",
    "yes",
)


def enabled() -> bool:
    """True when the hot-path arithmetic engine is active."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Enable or disable every hot-path shortcut (process-global)."""
    global _ENABLED
    _ENABLED = bool(value)


@contextmanager
def naive_arithmetic() -> Iterator[None]:
    """Run the enclosed block on the naive reference arithmetic."""
    previous = _ENABLED
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def hotpath_arithmetic() -> Iterator[None]:
    """Force the hot path inside the block (symmetry helper for benches)."""
    previous = _ENABLED
    set_enabled(True)
    try:
        yield
    finally:
        set_enabled(previous)


#: Sentinel returned by fast evaluators when the input shape is not
#: rational (floats, symbolic values) and the naive path must run.
MISS = object()


def rational_parts(value) -> Optional[Tuple[int, int]]:
    """Return ``(numerator, denominator)`` for int/Fraction, else None.

    Booleans are rejected: they are ``int`` subclasses but never valid
    protocol values (serialization refuses them too).
    """
    if isinstance(value, Fraction):
        return value.numerator, value.denominator
    if isinstance(value, int) and not isinstance(value, bool):
        return value, 1
    return None


def scale_to_integers(
    values: Sequence,
) -> Optional[Tuple[Tuple[int, ...], int, bool]]:
    """Rescale rationals onto a common denominator.

    Returns ``(numerators, common_denominator, has_fraction)`` where
    ``value[i] == numerators[i] / common_denominator`` exactly, or
    ``None`` when any value is not an int/Fraction.  ``has_fraction``
    records whether any input was a :class:`Fraction` *instance* — the
    naive path's result type depends on that, not on the denominator.
    """
    numerators = []
    denominators = []
    has_fraction = False
    for value in values:
        if isinstance(value, Fraction):
            has_fraction = True
            numerators.append(value.numerator)
            denominators.append(value.denominator)
        elif isinstance(value, int) and not isinstance(value, bool):
            numerators.append(value)
            denominators.append(1)
        else:
            return None
    common = 1
    for denominator in denominators:
        common = common * denominator // gcd(common, denominator)
    scaled = tuple(
        numerator * (common // denominator)
        for numerator, denominator in zip(numerators, denominators)
    )
    return scaled, common, has_fraction
