"""Number-theoretic primitives for the cryptographic substrate.

Implements Miller–Rabin primality testing, prime and safe-prime
generation, modular inverses, and the Chinese Remainder Theorem — the
building blocks for the Naor–Pinkas oblivious transfer group
(:mod:`repro.math.groups`) and the Paillier cryptosystem
(:mod:`repro.crypto.paillier`).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import KeyGenerationError, ValidationError
from repro.math import fastpath
from repro.utils.rng import ReproRandom


def _powmod():
    """The active modexp primitive: backend under the hot path, else pow.

    The naive reference (``fastpath.enabled() == False``) must stay
    pure CPython — it is the seed implementation retained verbatim —
    so backend dispatch is gated on the hot-path switch, not merely on
    backend availability.
    """
    if fastpath.enabled():
        return fastpath.get_backend().powmod
    return pow

#: Small primes used for fast trial-division pre-screening.
_SMALL_PRIMES: Tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

#: Deterministic Miller–Rabin witnesses valid for all n < 3.3e24.
_DETERMINISTIC_WITNESSES: Tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

#: Bound below which the deterministic witness set is exact.
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def _miller_rabin_witness(candidate: int, witness: int) -> bool:
    """Return True when ``witness`` proves ``candidate`` composite."""
    if witness % candidate == 0:
        return False
    exponent = candidate - 1
    twos = 0
    while exponent % 2 == 0:
        exponent //= 2
        twos += 1
    powmod = _powmod()
    x = powmod(witness, exponent, candidate)
    if x in (1, candidate - 1):
        return False
    for _ in range(twos - 1):
        x = powmod(x, 2, candidate)
        if x == candidate - 1:
            return False
    return True


def is_probable_prime(
    candidate: int,
    rounds: int = 40,
    rng: Optional[ReproRandom] = None,
) -> bool:
    """Miller–Rabin primality test.

    Deterministic (exact) below ``3.3e24``; probabilistic with error at
    most ``4^-rounds`` above.
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    if candidate < _DETERMINISTIC_BOUND:
        witnesses: Iterable[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or ReproRandom()
        witnesses = (rng.randint(2, candidate - 2) for _ in range(rounds))
    return not any(_miller_rabin_witness(candidate, w) for w in witnesses)


def generate_prime(bits: int, rng: ReproRandom, attempts: int = 100_000) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ValidationError(f"bits must be at least 2, got {bits}")
    for _ in range(attempts):
        candidate = rng.randbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate
    raise KeyGenerationError(f"no {bits}-bit prime found in {attempts} attempts")


def generate_safe_prime(bits: int, rng: ReproRandom, attempts: int = 200_000) -> int:
    """Generate a safe prime ``p = 2q + 1`` with ``p`` of ``bits`` bits.

    Safe primes give a large prime-order subgroup of ``Z_p^*`` for the
    Naor–Pinkas oblivious-transfer construction.
    """
    if bits < 5:
        raise ValidationError(f"bits must be at least 5 for a safe prime, got {bits}")
    for _ in range(attempts):
        q = rng.randbits(bits - 1) | (1 << (bits - 2)) | 1
        if not is_probable_prime(q, rng=rng):
            continue
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p
    raise KeyGenerationError(f"no {bits}-bit safe prime found in {attempts} attempts")


def extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def modular_inverse(value: int, modulus: int) -> int:
    """Return the inverse of ``value`` modulo ``modulus``.

    Raises :class:`ValidationError` when no inverse exists.
    """
    if modulus <= 1:
        raise ValidationError(f"modulus must exceed 1, got {modulus}")
    if fastpath.enabled():
        # The backend raises the same ValidationError message on
        # non-invertible values, so callers see one error shape.
        return fastpath.get_backend().invert(value, modulus)
    g, x, _ = extended_gcd(value % modulus, modulus)
    if g != 1:
        raise ValidationError(f"{value} is not invertible modulo {modulus}")
    return x % modulus


def batch_modular_inverse(values: Sequence[int], modulus: int) -> List[int]:
    """Invert many values modulo ``modulus`` with one extended gcd.

    Montgomery's trick: form the prefix products, invert the total once,
    then peel individual inverses off with two multiplications per
    value.  For ``n`` values this costs one :func:`modular_inverse` plus
    ``3(n - 1)`` modular multiplications instead of ``n`` inversions.
    Results are identical to calling :func:`modular_inverse` per value.

    Raises :class:`ValidationError` when any value is not invertible,
    naming the first offending value.
    """
    if modulus <= 1:
        raise ValidationError(f"modulus must exceed 1, got {modulus}")
    reduced = [value % modulus for value in values]
    if not reduced:
        return []
    # Under the hot path, run the product chains on backend-native
    # values (mpz under gmpy2; identity under python) and lower each
    # inverse back to int — type and value identical to the reference.
    backend = fastpath.get_backend() if fastpath.enabled() else None
    lift = backend.mpz if backend is not None else (lambda v: v)
    mod = lift(modulus)
    lifted = [lift(value) for value in reduced]
    prefix = [0] * len(lifted)
    running = lift(1)
    for index, value in enumerate(lifted):
        prefix[index] = running
        running = (running * value) % mod
    if math.gcd(int(running), modulus) != 1:
        for value in reduced:  # locate the culprit for a precise error
            if math.gcd(value, modulus) != 1:
                raise ValidationError(f"{value} is not invertible modulo {modulus}")
    inverse_running = lift(modular_inverse(int(running), modulus))
    inverses = [0] * len(lifted)
    for index in range(len(lifted) - 1, -1, -1):
        inverses[index] = int((inverse_running * prefix[index]) % mod)
        inverse_running = (inverse_running * lifted[index]) % mod
    return inverses


def jacobi_symbol(a: int, n: int) -> int:
    """Jacobi symbol ``(a | n)`` for odd ``n > 0``.

    Binary algorithm: pull out factors of two (flipping sign when
    ``n ≡ ±3 mod 8``) and apply quadratic reciprocity.  For prime ``n``
    this equals the Legendre symbol, so ``jacobi_symbol(a, p) == 1``
    tests quadratic residuosity — the fast membership test for the
    order-``q`` subgroup of ``Z_p^*`` when ``p = 2q + 1`` is a safe
    prime (the subgroup is exactly the squares).
    """
    if n <= 0 or n % 2 == 0:
        raise ValidationError(f"Jacobi symbol requires odd positive n, got {n}")
    if fastpath.enabled():
        return fastpath.get_backend().jacobi(a, n)
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n & 7 in (3, 5):
                result = -result
        a, n = n, a
        if a & 3 == 3 and n & 3 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def sliding_window_pow(base: int, exponent: int, modulus: int, window: int = 4) -> int:
    """Left-to-right sliding-window modular exponentiation.

    Precomputes the odd powers ``base^1, base^3, ..., base^(2^w - 1)``
    and scans the exponent bits, absorbing maximal odd windows.  Output
    equals ``pow(base, exponent, modulus)`` exactly.

    Measured note (recorded in ``BENCH_hotpath.json``): CPython's C
    ``pow`` already uses a windowed ladder internally, so this pure-
    Python variant does *not* beat it for variable bases — the win for
    protocol exponentiation comes from fixed-base tables
    (:class:`repro.math.groups.FixedBaseTable`), which eliminate the
    squarings entirely.  This function exists as the readable reference
    for the windowed technique and for property testing.
    """
    if modulus <= 0:
        raise ValidationError(f"modulus must be positive, got {modulus}")
    if exponent < 0:
        raise ValidationError("exponent must be non-negative")
    if window < 1:
        raise ValidationError(f"window must be at least 1, got {window}")
    if modulus == 1:
        return 0
    if exponent == 0:
        return 1
    base %= modulus
    # Odd powers: odd_powers[k] = base^(2k + 1).
    squared = (base * base) % modulus
    odd_powers = [base]
    for _ in range((1 << (window - 1)) - 1):
        odd_powers.append((odd_powers[-1] * squared) % modulus)
    result = 1
    position = exponent.bit_length() - 1
    while position >= 0:
        if not (exponent >> position) & 1:
            result = (result * result) % modulus
            position -= 1
            continue
        # Take the widest window ending in a set bit.
        low = max(position - window + 1, 0)
        while not (exponent >> low) & 1:
            low += 1
        digit = (exponent >> low) & ((1 << (position - low + 1)) - 1)
        for _ in range(position - low + 1):
            result = (result * result) % modulus
        result = (result * odd_powers[digit >> 1]) % modulus
        position = low - 1
    return result


def simultaneous_exp(a: int, x: int, b: int, y: int, modulus: int) -> int:
    """Straus/Shamir simultaneous exponentiation ``a^x · b^y mod modulus``.

    Interleaves the two square-and-multiply ladders, sharing the
    squarings: one pass over ``max(bits(x), bits(y))`` bit positions
    with a four-entry table ``{1, a, b, ab}``, instead of two full
    ladders.  Output equals ``(pow(a, x, m) * pow(b, y, m)) % m``.
    """
    if modulus <= 0:
        raise ValidationError(f"modulus must be positive, got {modulus}")
    if x < 0 or y < 0:
        raise ValidationError("exponents must be non-negative")
    if modulus == 1:
        return 0
    a %= modulus
    b %= modulus
    table = (1, a, b, (a * b) % modulus)
    result = 1
    for position in range(max(x.bit_length(), y.bit_length()) - 1, -1, -1):
        result = (result * result) % modulus
        digit = (((y >> position) & 1) << 1) | ((x >> position) & 1)
        if digit:
            result = (result * table[digit]) % modulus
    return result


def crt_combine(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Chinese Remainder Theorem for pairwise-coprime moduli.

    Returns the unique ``x`` modulo the product with
    ``x ≡ residues[i] (mod moduli[i])`` for every ``i``.
    """
    if len(residues) != len(moduli):
        raise ValidationError("residues and moduli must have equal length")
    if not moduli:
        raise ValidationError("at least one congruence is required")
    for i, m_i in enumerate(moduli):
        if m_i <= 1:
            raise ValidationError(f"moduli[{i}] must exceed 1, got {m_i}")
        for m_j in moduli[i + 1 :]:
            if math.gcd(m_i, m_j) != 1:
                raise ValidationError("moduli must be pairwise coprime")
    total = 0
    product = math.prod(moduli)
    for residue, modulus in zip(residues, moduli):
        partial = product // modulus
        total += residue * partial * modular_inverse(partial, modulus)
    return total % product


def lcm(a: int, b: int) -> int:
    """Least common multiple (0 when either argument is 0)."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // math.gcd(a, b)


def primes_below(bound: int) -> List[int]:
    """Sieve of Eratosthenes: all primes strictly below ``bound``."""
    if bound <= 2:
        return []
    sieve = bytearray(b"\x01") * bound
    sieve[0:2] = b"\x00\x00"
    for value in range(2, int(bound**0.5) + 1):
        if sieve[value]:
            sieve[value * value :: value] = b"\x00" * len(sieve[value * value :: value])
    return [index for index, flag in enumerate(sieve) if flag]
