"""Number-theoretic primitives for the cryptographic substrate.

Implements Miller–Rabin primality testing, prime and safe-prime
generation, modular inverses, and the Chinese Remainder Theorem — the
building blocks for the Naor–Pinkas oblivious transfer group
(:mod:`repro.math.groups`) and the Paillier cryptosystem
(:mod:`repro.crypto.paillier`).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import KeyGenerationError, ValidationError
from repro.utils.rng import ReproRandom

#: Small primes used for fast trial-division pre-screening.
_SMALL_PRIMES: Tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

#: Deterministic Miller–Rabin witnesses valid for all n < 3.3e24.
_DETERMINISTIC_WITNESSES: Tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

#: Bound below which the deterministic witness set is exact.
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def _miller_rabin_witness(candidate: int, witness: int) -> bool:
    """Return True when ``witness`` proves ``candidate`` composite."""
    if witness % candidate == 0:
        return False
    exponent = candidate - 1
    twos = 0
    while exponent % 2 == 0:
        exponent //= 2
        twos += 1
    x = pow(witness, exponent, candidate)
    if x in (1, candidate - 1):
        return False
    for _ in range(twos - 1):
        x = pow(x, 2, candidate)
        if x == candidate - 1:
            return False
    return True


def is_probable_prime(
    candidate: int,
    rounds: int = 40,
    rng: Optional[ReproRandom] = None,
) -> bool:
    """Miller–Rabin primality test.

    Deterministic (exact) below ``3.3e24``; probabilistic with error at
    most ``4^-rounds`` above.
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    if candidate < _DETERMINISTIC_BOUND:
        witnesses: Iterable[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or ReproRandom()
        witnesses = (rng.randint(2, candidate - 2) for _ in range(rounds))
    return not any(_miller_rabin_witness(candidate, w) for w in witnesses)


def generate_prime(bits: int, rng: ReproRandom, attempts: int = 100_000) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ValidationError(f"bits must be at least 2, got {bits}")
    for _ in range(attempts):
        candidate = rng.randbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate
    raise KeyGenerationError(f"no {bits}-bit prime found in {attempts} attempts")


def generate_safe_prime(bits: int, rng: ReproRandom, attempts: int = 200_000) -> int:
    """Generate a safe prime ``p = 2q + 1`` with ``p`` of ``bits`` bits.

    Safe primes give a large prime-order subgroup of ``Z_p^*`` for the
    Naor–Pinkas oblivious-transfer construction.
    """
    if bits < 5:
        raise ValidationError(f"bits must be at least 5 for a safe prime, got {bits}")
    for _ in range(attempts):
        q = rng.randbits(bits - 1) | (1 << (bits - 2)) | 1
        if not is_probable_prime(q, rng=rng):
            continue
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p
    raise KeyGenerationError(f"no {bits}-bit safe prime found in {attempts} attempts")


def extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def modular_inverse(value: int, modulus: int) -> int:
    """Return the inverse of ``value`` modulo ``modulus``.

    Raises :class:`ValidationError` when no inverse exists.
    """
    if modulus <= 1:
        raise ValidationError(f"modulus must exceed 1, got {modulus}")
    g, x, _ = extended_gcd(value % modulus, modulus)
    if g != 1:
        raise ValidationError(f"{value} is not invertible modulo {modulus}")
    return x % modulus


def crt_combine(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Chinese Remainder Theorem for pairwise-coprime moduli.

    Returns the unique ``x`` modulo the product with
    ``x ≡ residues[i] (mod moduli[i])`` for every ``i``.
    """
    if len(residues) != len(moduli):
        raise ValidationError("residues and moduli must have equal length")
    if not moduli:
        raise ValidationError("at least one congruence is required")
    for i, m_i in enumerate(moduli):
        if m_i <= 1:
            raise ValidationError(f"moduli[{i}] must exceed 1, got {m_i}")
        for m_j in moduli[i + 1 :]:
            if math.gcd(m_i, m_j) != 1:
                raise ValidationError("moduli must be pairwise coprime")
    total = 0
    product = math.prod(moduli)
    for residue, modulus in zip(residues, moduli):
        partial = product // modulus
        total += residue * partial * modular_inverse(partial, modulus)
    return total % product


def lcm(a: int, b: int) -> int:
    """Least common multiple (0 when either argument is 0)."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // math.gcd(a, b)


def primes_below(bound: int) -> List[int]:
    """Sieve of Eratosthenes: all primes strictly below ``bound``."""
    if bound <= 2:
        return []
    sieve = bytearray(b"\x01") * bound
    sieve[0:2] = b"\x00\x00"
    for value in range(2, int(bound**0.5) + 1):
        if sieve[value]:
            sieve[value * value :: value] = b"\x00" * len(sieve[value * value :: value])
    return [index for index, flag in enumerate(sieve) if flag]
