"""Mathematical substrate: exact algebra, number theory, statistics."""

from repro.math.groups import SchnorrGroup, default_group, fast_group, generate_group
from repro.math.interpolation import (
    clear_zero_weight_cache,
    lagrange_at_zero,
    lagrange_interpolate,
    newton_interpolate,
    zero_weight_cache_stats,
)
from repro.math.multinomial import (
    compositions,
    count_compositions,
    degree_p_basis,
    mixed_degree_basis,
    multinomial_coefficient,
    transform_point,
)
from repro.math.linalg import exact_determinant, exact_solve, fit_affine_exact
from repro.math.multivariate import MultivariatePolynomial
from repro.math.numtheory import (
    crt_combine,
    extended_gcd,
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
    modular_inverse,
)
from repro.math.polynomials import Polynomial
from repro.math.statistics import (
    KSResult,
    ks_2samp,
    ks_average_over_dimensions,
    pearson_correlation,
    spearman_correlation,
)
from repro.math.taylor import bernoulli_numbers, exp_taylor, tanh_taylor

__all__ = [
    "SchnorrGroup",
    "default_group",
    "fast_group",
    "generate_group",
    "clear_zero_weight_cache",
    "lagrange_at_zero",
    "zero_weight_cache_stats",
    "lagrange_interpolate",
    "newton_interpolate",
    "compositions",
    "count_compositions",
    "degree_p_basis",
    "mixed_degree_basis",
    "multinomial_coefficient",
    "transform_point",
    "MultivariatePolynomial",
    "exact_determinant",
    "exact_solve",
    "fit_affine_exact",
    "crt_combine",
    "extended_gcd",
    "generate_prime",
    "generate_safe_prime",
    "is_probable_prime",
    "modular_inverse",
    "Polynomial",
    "KSResult",
    "ks_2samp",
    "ks_average_over_dimensions",
    "pearson_correlation",
    "spearman_correlation",
    "bernoulli_numbers",
    "exp_taylor",
    "tanh_taylor",
]
