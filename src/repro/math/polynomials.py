"""Univariate polynomials over exact rationals (or floats).

The protocols manipulate univariate masking polynomials ``h(u)`` with
``h(0) = 0`` and per-coordinate hiding polynomials ``g_i(v)`` with
``g_i(0) = t_i`` (paper Section IV).  Coefficients may be
:class:`fractions.Fraction` for exact protocol arithmetic or ``float``
for the throughput-oriented mode; the class is agnostic.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Sequence, Union

from repro.exceptions import ValidationError
from repro.math import fastpath
from repro.utils.rng import ReproRandom

Number = Union[int, float, Fraction]


class Polynomial:
    """Immutable univariate polynomial ``c0 + c1 x + ... + cd x^d``.

    Coefficients are stored lowest-degree first with trailing zeros
    stripped (the zero polynomial stores a single zero coefficient).

    Evaluation carries an integer fast path: rational coefficient sets
    are lazily rescaled once onto a common denominator, after which
    every evaluation at a rational point is pure integer arithmetic
    with a single ``Fraction`` normalisation at the end — same value,
    same result type as the naive Horner reference (which remains the
    code path for floats, and whenever
    :func:`repro.math.fastpath.enabled` is off).
    """

    __slots__ = ("_coefficients", "_fast")

    def __init__(self, coefficients: Sequence[Number]) -> None:
        coeffs = list(coefficients)
        if not coeffs:
            coeffs = [0]
        while len(coeffs) > 1 and coeffs[-1] == 0:
            coeffs.pop()
        self._coefficients = tuple(coeffs)
        self._fast = None  # lazy scaled-integer form; False = not rational

    # -- constructors ----------------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return cls([0])

    @classmethod
    def constant(cls, value: Number) -> "Polynomial":
        """The constant polynomial ``value``."""
        return cls([value])

    @classmethod
    def monomial(cls, degree: int, coefficient: Number = 1) -> "Polynomial":
        """The monomial ``coefficient * x^degree``."""
        if degree < 0:
            raise ValidationError(f"degree must be non-negative, got {degree}")
        return cls([0] * degree + [coefficient])

    @classmethod
    def random(
        cls,
        degree: int,
        rng: ReproRandom,
        constant_term: Number = 0,
        coefficient_bound: int = 10,
        exact: bool = True,
    ) -> "Polynomial":
        """Random polynomial of exactly ``degree`` with fixed constant term.

        This is the paper's masking-polynomial generator: ``h(u)`` uses
        ``constant_term=0`` and the client's hiding polynomials ``g_i``
        use ``constant_term=t_i``.  The leading coefficient is forced
        nonzero so the degree is exact.
        """
        if degree < 0:
            raise ValidationError(f"degree must be non-negative, got {degree}")
        if degree == 0:
            return cls([constant_term])
        draw: Callable[[], Number]
        if exact:
            draw = lambda: rng.fraction(-coefficient_bound, coefficient_bound)
            lead = rng.nonzero_fraction(-coefficient_bound, coefficient_bound)
        else:
            draw = lambda: rng.uniform(-coefficient_bound, coefficient_bound)
            lead = rng.uniform(0.5, coefficient_bound)
        coeffs: List[Number] = [constant_term]
        coeffs.extend(draw() for _ in range(degree - 1))
        coeffs.append(lead)
        return cls(coeffs)

    # -- basic properties -------------------------------------------------------

    @property
    def coefficients(self) -> tuple:
        """Coefficients, lowest degree first."""
        return self._coefficients

    @property
    def degree(self) -> int:
        """Degree of the polynomial (0 for constants, including zero)."""
        return len(self._coefficients) - 1

    def is_zero(self) -> bool:
        """True when this is the zero polynomial."""
        return self._coefficients == (0,)

    def constant_term(self) -> Number:
        """The coefficient of ``x^0`` (i.e. ``p(0)``)."""
        return self._coefficients[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._coefficients == other._coefficients

    def __hash__(self) -> int:
        return hash(self._coefficients)

    def __repr__(self) -> str:
        terms = []
        for power, coeff in enumerate(self._coefficients):
            if coeff == 0 and self.degree > 0:
                continue
            if power == 0:
                terms.append(f"{coeff}")
            elif power == 1:
                terms.append(f"{coeff}*x")
            else:
                terms.append(f"{coeff}*x^{power}")
        return f"Polynomial({' + '.join(terms)})"

    # -- evaluation ---------------------------------------------------------------

    def _fast_form(self):
        """Scaled-integer form ``(numerators, common_den, has_fraction)``.

        Computed once per instance; ``False`` when any coefficient is
        not an int/Fraction (floats stay on the naive path).
        """
        form = self._fast
        if form is None:
            scaled = fastpath.scale_to_integers(self._coefficients)
            form = scaled if scaled is not None else False
            self._fast = form
        return form

    def _evaluate_fast(self, point: Number):
        """Scaled-integer Horner; :data:`fastpath.MISS` → use naive path.

        Only claims the cases where the naive reference would produce a
        :class:`Fraction` (a Fraction coefficient or a Fraction point):
        the weighted Horner recurrence computes ``N = Σ c_j a^j b^(d-j)``
        over plain integers and normalises once via
        ``Fraction(N, den · b^d)``, which is exactly the canonical form
        the naive operator chain arrives at.
        """
        form = self._fast_form()
        if form is False:
            return fastpath.MISS
        scaled, den, has_fraction = form
        if isinstance(point, Fraction):
            a, b = point.numerator, point.denominator
        elif isinstance(point, int) and not isinstance(point, bool):
            if not has_fraction:
                return fastpath.MISS  # all-int Horner is already integer-only
            a, b = point, 1
        else:
            return fastpath.MISS
        degree = len(scaled) - 1
        accumulator = scaled[degree]
        if b == 1:
            for index in range(degree - 1, -1, -1):
                accumulator = accumulator * a + scaled[index]
            return Fraction(accumulator, den)
        b_power = 1
        for index in range(degree - 1, -1, -1):
            b_power *= b
            accumulator = accumulator * a + scaled[index] * b_power
        return Fraction(accumulator, den * b_power)

    def __call__(self, point: Number) -> Number:
        """Evaluate via Horner's rule (integer fast path when rational)."""
        if fastpath.enabled():
            value = self._evaluate_fast(point)
            if value is not fastpath.MISS:
                return value
        result: Number = 0
        for coeff in reversed(self._coefficients):
            result = result * point + coeff
        return result

    def evaluate_many(self, points: Sequence[Number]) -> List[Number]:
        """Evaluate at several points."""
        return [self(point) for point in points]

    # -- arithmetic -----------------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        a, b = self._coefficients, other._coefficients
        if len(a) < len(b):
            a, b = b, a
        summed = list(a)
        for index, coeff in enumerate(b):
            summed[index] += coeff
        return Polynomial(summed)

    def __neg__(self) -> "Polynomial":
        return Polynomial([-coeff for coeff in self._coefficients])

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self + (-other)

    def __mul__(self, other: Union["Polynomial", Number]) -> "Polynomial":
        if isinstance(other, Polynomial):
            if self.is_zero() or other.is_zero():
                return Polynomial.zero()
            product = [0] * (len(self._coefficients) + len(other._coefficients) - 1)
            for i, a in enumerate(self._coefficients):
                if a == 0:
                    continue
                for j, b in enumerate(other._coefficients):
                    product[i + j] += a * b
            return Polynomial(product)
        return Polynomial([coeff * other for coeff in self._coefficients])

    def __rmul__(self, other: Number) -> "Polynomial":
        return self * other

    def scale(self, factor: Number) -> "Polynomial":
        """Return ``factor * self`` (alias of scalar multiplication)."""
        return self * factor

    def shift(self, offset: Number) -> "Polynomial":
        """Return ``self + offset`` as a polynomial."""
        return self + Polynomial.constant(offset)

    def compose(self, inner: "Polynomial") -> "Polynomial":
        """Return ``self(inner(x))`` via Horner on polynomials."""
        result = Polynomial.zero()
        for coeff in reversed(self._coefficients):
            result = result * inner + Polynomial.constant(coeff)
        return result

    def power(self, exponent: int) -> "Polynomial":
        """Return ``self ** exponent`` by repeated squaring."""
        if exponent < 0:
            raise ValidationError(f"exponent must be non-negative, got {exponent}")
        result = Polynomial.constant(1)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def derivative(self) -> "Polynomial":
        """First derivative."""
        if self.degree == 0:
            return Polynomial.zero()
        return Polynomial(
            [coeff * power for power, coeff in enumerate(self._coefficients)][1:]
        )

    def to_exact(self) -> "Polynomial":
        """Return a copy with all coefficients as exact Fractions."""
        return Polynomial([Fraction(c) for c in self._coefficients])

    def to_float(self) -> "Polynomial":
        """Return a copy with all coefficients as floats."""
        return Polynomial([float(c) for c in self._coefficients])


def evaluate_all(polynomials: Sequence[Polynomial], point: Number) -> List[Number]:
    """Evaluate several polynomials at one shared point.

    The OMPE receiver evaluates all ``n`` hiding polynomials ``g_i`` at
    each cover node ``v``; building the ``v^j`` (and denominator) power
    tables once and reusing them across the batch beats ``n``
    independent Horner runs.  Falls back to per-polynomial evaluation —
    and therefore to the naive reference — for floats or when the hot
    path is disabled.  Values and result types are identical either
    way.
    """
    if not fastpath.enabled():
        return [polynomial(point) for polynomial in polynomials]
    if isinstance(point, Fraction):
        a, b = point.numerator, point.denominator
        point_is_fraction = True
    elif isinstance(point, int) and not isinstance(point, bool):
        a, b = point, 1
        point_is_fraction = False
    else:
        return [polynomial(point) for polynomial in polynomials]
    max_degree = 0
    forms = []
    for polynomial in polynomials:
        form = polynomial._fast_form()
        forms.append(form)
        if form is not False:
            max_degree = max(max_degree, len(form[0]) - 1)
    a_powers = [1]
    b_powers = [1]
    for _ in range(max_degree):
        a_powers.append(a_powers[-1] * a)
        b_powers.append(b_powers[-1] * b)
    results: List[Number] = []
    for polynomial, form in zip(polynomials, forms):
        if form is False:
            results.append(polynomial(point))
            continue
        scaled, den, has_fraction = form
        if not (has_fraction or point_is_fraction):
            results.append(polynomial(point))  # all-int: naive is integer Horner
            continue
        degree = len(scaled) - 1
        if b == 1:
            total = sum(
                coefficient * a_powers[index]
                for index, coefficient in enumerate(scaled)
            )
            results.append(Fraction(total, den))
        else:
            total = sum(
                coefficient * a_powers[index] * b_powers[degree - index]
                for index, coefficient in enumerate(scaled)
            )
            results.append(Fraction(total, den * b_powers[degree]))
    return results
