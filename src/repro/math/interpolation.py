"""Polynomial interpolation (Lagrange and Newton forms).

Protocol step IV-A.3 of the paper reconstructs the univariate
polynomial ``B(v) = h(v) + d'(G(v))`` from ``m`` point evaluations and
reads off the secret as ``B(0)``.  :func:`lagrange_at_zero` performs
exactly that evaluation without building the full polynomial, and
:func:`lagrange_interpolate` returns the full coefficient form used in
tests and the privacy analysis.
"""

from __future__ import annotations

from collections import OrderedDict
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import InterpolationError
from repro.math import fastpath
from repro.math.polynomials import Number, Polynomial


def _check_nodes(xs: Sequence[Number], ys: Sequence[Number]) -> None:
    if len(xs) != len(ys):
        raise InterpolationError(
            f"node/value count mismatch: {len(xs)} vs {len(ys)}"
        )
    if not xs:
        raise InterpolationError("at least one interpolation node is required")
    if len(set(xs)) != len(xs):
        raise InterpolationError("interpolation nodes must be pairwise distinct")


def lagrange_interpolate(
    xs: Sequence[Number], ys: Sequence[Number]
) -> Polynomial:
    """Return the unique polynomial of degree < len(xs) through the points.

    Implements Eq. (3) of the paper:
    ``B(v) = Σ_j B(v_j) Π_{i≠j} (v - v_i) / (v_j - v_i)``.
    """
    _check_nodes(xs, ys)
    result = Polynomial.zero()
    for j, (xj, yj) in enumerate(zip(xs, ys)):
        if yj == 0:
            continue
        basis = Polynomial.constant(1)
        denominator: Number = 1
        for i, xi in enumerate(xs):
            if i == j:
                continue
            basis = basis * Polynomial([-xi, 1])
            denominator *= xj - xi
        result = result + basis * _divide(yj, denominator)
    return result


#: Capacity of the zero-basis weight cache.  One entry per distinct node
#: set; a batched/pooled run revisits node sets whenever seeds repeat
#: (benchmark reruns, engine drains, drift checks on fixed workloads).
_ZERO_WEIGHT_CACHE_CAP = 512

_ZERO_WEIGHT_CACHE: "OrderedDict[Tuple[Number, ...], Tuple[Number, ...]]" = (
    OrderedDict()
)
_ZERO_WEIGHT_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def _zero_basis_weights(xs: Tuple[Number, ...]) -> Tuple[Number, ...]:
    """Lagrange basis weights at ``v = 0``: ``w_j = Π_{i≠j} x_i/(x_i - x_j)``.

    The weights depend only on the node set, never on the values, so
    they are memoized per node tuple (bounded LRU).  Exact arithmetic
    makes a cache hit bit-identical to recomputation; the float path is
    identical too because the multiplication order is preserved.
    """
    cached = _ZERO_WEIGHT_CACHE.get(xs)
    if cached is not None:
        _ZERO_WEIGHT_STATS["hits"] += 1
        try:
            _ZERO_WEIGHT_CACHE.move_to_end(xs)
        except KeyError:
            pass  # concurrently evicted; the value in hand is still valid
        return cached
    _ZERO_WEIGHT_STATS["misses"] += 1
    result = None
    if fastpath.enabled() and len(xs) > 1:
        result = _fast_zero_basis_weights(xs)
    if result is None:
        weights: List[Number] = []
        for j, xj in enumerate(xs):
            weight: Number = 1
            for i, xi in enumerate(xs):
                if i == j:
                    continue
                weight = weight * _divide(xi, xi - xj)
            weights.append(weight)
        result = tuple(weights)
    _ZERO_WEIGHT_CACHE[xs] = result
    while len(_ZERO_WEIGHT_CACHE) > _ZERO_WEIGHT_CACHE_CAP:
        try:
            _ZERO_WEIGHT_CACHE.popitem(last=False)
        except KeyError:
            break  # another thread emptied the cache under us
    return result


def _fast_zero_basis_weights(xs: Tuple[Number, ...]):
    """Integer fast path for the zero-basis weights (rational nodes).

    Rescaling the nodes to ``n_i / D`` over a common denominator makes
    ``D`` cancel out of every factor, so
    ``w_j = Π_{i≠j} n_i / Π_{i≠j} (n_i - n_j)`` — two integer product
    chains and a single normalising ``Fraction`` per weight, instead of
    ``m - 1`` Fraction divisions.  Returns ``None`` for non-rational
    nodes (naive path handles those).
    """
    scaled = fastpath.scale_to_integers(xs)
    if scaled is None:
        return None
    nodes, _, _ = scaled
    weights = []
    for j, nj in enumerate(nodes):
        numerator = 1
        denominator = 1
        for i, ni in enumerate(nodes):
            if i == j:
                continue
            numerator *= ni
            denominator *= ni - nj
        weights.append(Fraction(numerator, denominator))
    return tuple(weights)


def clear_zero_weight_cache() -> None:
    """Drop all cached zero-basis weights and reset hit/miss counters."""
    _ZERO_WEIGHT_CACHE.clear()
    _ZERO_WEIGHT_STATS["hits"] = 0
    _ZERO_WEIGHT_STATS["misses"] = 0


def zero_weight_cache_stats() -> Dict[str, int]:
    """Current ``{"hits", "misses", "size"}`` of the weight cache."""
    stats = dict(_ZERO_WEIGHT_STATS)
    stats["size"] = len(_ZERO_WEIGHT_CACHE)
    return stats


def lagrange_at_zero(xs: Sequence[Number], ys: Sequence[Number]) -> Number:
    """Evaluate the interpolating polynomial at 0 directly.

    This is the protocol's secret-recovery step ``B(0)``; it costs
    ``O(m^2)`` without constructing coefficients:
    ``B(0) = Σ_j y_j Π_{i≠j} x_i / (x_i - x_j)``.

    The basis weights depend only on the nodes, so they are cached per
    node set (see :func:`zero_weight_cache_stats`); repeated
    reconstructions over the same nodes — batched conversations,
    engine workers draining seeded workloads, benchmark reruns — pay
    the ``O(m^2)`` division work once.
    """
    _check_nodes(xs, ys)
    if any(x == 0 for x in xs):
        raise InterpolationError("nodes must be nonzero to evaluate at zero")
    weights = _zero_basis_weights(tuple(xs))
    total: Number = 0
    for yj, weight in zip(ys, weights):
        if yj == 0:
            continue
        total = total + yj * weight
    return total


def newton_coefficients(
    xs: Sequence[Number], ys: Sequence[Number]
) -> List[Number]:
    """Divided-difference coefficients of the Newton form."""
    _check_nodes(xs, ys)
    coeffs = list(ys)
    for level in range(1, len(xs)):
        for index in range(len(xs) - 1, level - 1, -1):
            coeffs[index] = _divide(
                coeffs[index] - coeffs[index - 1], xs[index] - xs[index - level]
            )
    return coeffs


def newton_evaluate(
    xs: Sequence[Number], coefficients: Sequence[Number], point: Number
) -> Number:
    """Evaluate a Newton-form polynomial at ``point``."""
    if len(coefficients) == 0:
        raise InterpolationError("empty Newton coefficient list")
    result: Number = coefficients[-1]
    for index in range(len(coefficients) - 2, -1, -1):
        result = result * (point - xs[index]) + coefficients[index]
    return result


def newton_interpolate(xs: Sequence[Number], ys: Sequence[Number]) -> Polynomial:
    """Return the interpolating polynomial via the Newton form.

    Mathematically identical to :func:`lagrange_interpolate`; kept as an
    independent implementation for cross-checking in tests.
    """
    coeffs = newton_coefficients(xs, ys)
    result = Polynomial.constant(coeffs[0])
    factor = Polynomial.constant(1)
    for index in range(1, len(coeffs)):
        factor = factor * Polynomial([-xs[index - 1], 1])
        result = result + factor * coeffs[index]
    return result


def _divide(numerator: Number, denominator: Number) -> Number:
    """Exact division for int/Fraction inputs, float division otherwise."""
    if denominator == 0:
        raise InterpolationError("division by zero during interpolation")
    if isinstance(numerator, float) or isinstance(denominator, float):
        return numerator / denominator
    return Fraction(numerator) / Fraction(denominator)
