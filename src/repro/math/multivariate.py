"""Sparse multivariate polynomials.

The trainer's decision function is an ``n``-variate polynomial (degree 1
for linear SVMs, degree ``p`` for polynomial-kernel SVMs after the
monomial expansion of paper Section IV-B).  This module represents such
polynomials sparsely as ``{exponent_tuple: coefficient}`` maps and
supports the operations the protocols need: evaluation, addition,
scaling, multiplication, substitution of univariate polynomials for
each variable (the step that turns ``d(G(v))`` into a univariate
polynomial in ``v``), and exponent-vector iteration.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Mapping, Sequence, Tuple, Union

from repro.exceptions import ValidationError
from repro.math import fastpath
from repro.math.polynomials import Number, Polynomial

Exponents = Tuple[int, ...]


class MultivariatePolynomial:
    """Immutable sparse multivariate polynomial in ``arity`` variables.

    Like :class:`repro.math.polynomials.Polynomial`, evaluation carries
    a scaled-integer fast path: rational coefficients are rescaled once
    onto a common denominator and each evaluation at a rational point
    becomes integer monomial products over shared per-variable power
    tables, normalised by a single final ``Fraction``.  Identical
    values and result types to the naive reference.
    """

    __slots__ = ("_arity", "_terms", "_fast")

    def __init__(self, arity: int, terms: Mapping[Exponents, Number]) -> None:
        if arity < 1:
            raise ValidationError(f"arity must be at least 1, got {arity}")
        cleaned: Dict[Exponents, Number] = {}
        for exponents, coefficient in terms.items():
            key = tuple(int(e) for e in exponents)
            if len(key) != arity:
                raise ValidationError(
                    f"exponent tuple {key} does not match arity {arity}"
                )
            if any(e < 0 for e in key):
                raise ValidationError(f"negative exponent in {key}")
            if coefficient == 0:
                continue
            cleaned[key] = cleaned.get(key, 0) + coefficient
            if cleaned[key] == 0:
                del cleaned[key]
        self._arity = arity
        self._terms = cleaned
        self._fast = None  # lazy scaled-integer form; False = not rational

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls, arity: int) -> "MultivariatePolynomial":
        """The zero polynomial in ``arity`` variables."""
        return cls(arity, {})

    @classmethod
    def constant(cls, arity: int, value: Number) -> "MultivariatePolynomial":
        """A constant polynomial."""
        return cls(arity, {tuple([0] * arity): value})

    @classmethod
    def affine(
        cls, weights: Sequence[Number], bias: Number = 0
    ) -> "MultivariatePolynomial":
        """Build ``w · t + b`` — the linear SVM decision function shape."""
        weights = list(weights)
        if not weights:
            raise ValidationError("weights must be non-empty")
        arity = len(weights)
        terms: Dict[Exponents, Number] = {}
        for index, weight in enumerate(weights):
            exponents = [0] * arity
            exponents[index] = 1
            terms[tuple(exponents)] = weight
        terms[tuple([0] * arity)] = bias
        return cls(arity, terms)

    # -- properties ----------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of variables."""
        return self._arity

    @property
    def terms(self) -> Dict[Exponents, Number]:
        """A copy of the sparse term map."""
        return dict(self._terms)

    @property
    def total_degree(self) -> int:
        """Maximum total degree over all terms (0 for the zero polynomial)."""
        if not self._terms:
            return 0
        return max(sum(exponents) for exponents in self._terms)

    def is_zero(self) -> bool:
        """True when there are no nonzero terms."""
        return not self._terms

    def coefficient(self, exponents: Sequence[int]) -> Number:
        """Coefficient of the given monomial (0 when absent)."""
        return self._terms.get(tuple(exponents), 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultivariatePolynomial):
            return NotImplemented
        return self._arity == other._arity and self._terms == other._terms

    def __hash__(self) -> int:
        return hash((self._arity, frozenset(self._terms.items())))

    def __repr__(self) -> str:
        if not self._terms:
            return f"MultivariatePolynomial({self._arity}, 0)"
        parts = []
        for exponents in sorted(self._terms):
            monomial = "*".join(
                f"t{i}^{e}" if e > 1 else f"t{i}"
                for i, e in enumerate(exponents)
                if e
            )
            coefficient = self._terms[exponents]
            parts.append(f"{coefficient}*{monomial}" if monomial else f"{coefficient}")
        return f"MultivariatePolynomial({self._arity}, {' + '.join(parts)})"

    # -- evaluation -------------------------------------------------------------

    def _fast_form(self):
        """Scaled-integer form of the term map (computed once).

        ``(exponent_rows, numerators, common_den, has_fraction,
        max_exponents)`` with term order fixed by the term dict, or
        ``False`` when any coefficient is not an int/Fraction.
        """
        form = self._fast
        if form is None:
            rows = tuple(self._terms.keys())
            scaled = fastpath.scale_to_integers(tuple(self._terms.values()))
            if scaled is None or not rows:
                form = False
            else:
                numerators, common_den, has_fraction = scaled
                max_exponents = tuple(
                    max(row[axis] for row in rows) for axis in range(self._arity)
                )
                form = (rows, numerators, common_den, has_fraction, max_exponents)
            self._fast = form
        return form

    def _evaluate_fast(self, values: Tuple[Number, ...]):
        """Scaled-integer evaluation; :data:`fastpath.MISS` → naive path.

        Writes each coordinate as ``a_i / b_i`` and computes
        ``N = Σ_t c_t · Π_i a_i^{e_i} · b_i^{E_i - e_i}`` over integers
        (``E_i`` the maximum exponent of variable ``i``), so the value
        is exactly ``N / (den · Π_i b_i^{E_i})`` — one ``Fraction``
        normalisation per evaluation.  Claims only the cases where the
        naive reference would itself return a ``Fraction``.
        """
        form = self._fast_form()
        if form is False:
            return fastpath.MISS
        rows, numerators, common_den, has_fraction, max_exponents = form
        point_numerators = []
        point_denominators = []
        fraction_result = has_fraction
        for axis, value in enumerate(values):
            if isinstance(value, Fraction):
                # A Fraction coordinate only fractionalises the naive
                # result if some term actually raises it to a power.
                if max_exponents[axis] > 0:
                    fraction_result = True
                point_numerators.append(value.numerator)
                point_denominators.append(value.denominator)
            elif isinstance(value, int) and not isinstance(value, bool):
                point_numerators.append(value)
                point_denominators.append(1)
            else:
                return fastpath.MISS
        if not fraction_result:
            return fastpath.MISS  # all-int: naive evaluation is integer-only
        a_power_tables = []
        b_power_tables = []
        total_denominator = common_den
        for a, b, top in zip(point_numerators, point_denominators, max_exponents):
            a_powers = [1]
            for _ in range(top):
                a_powers.append(a_powers[-1] * a)
            a_power_tables.append(a_powers)
            if b == 1:
                b_power_tables.append(None)
            else:
                b_powers = [1]
                for _ in range(top):
                    b_powers.append(b_powers[-1] * b)
                b_power_tables.append(b_powers)
                total_denominator *= b_powers[top]
        total = 0
        for row, numerator in zip(rows, numerators):
            term = numerator
            for axis, exponent in enumerate(row):
                if exponent:
                    term *= a_power_tables[axis][exponent]
                b_powers = b_power_tables[axis]
                if b_powers is not None:
                    remaining = max_exponents[axis] - exponent
                    if remaining:
                        term *= b_powers[remaining]
            total += term
        return Fraction(total, total_denominator)

    def __call__(self, point: Sequence[Number]) -> Number:
        """Evaluate at a point (sequence of ``arity`` numbers)."""
        values = tuple(point)
        if len(values) != self._arity:
            raise ValidationError(
                f"point has {len(values)} coordinates, expected {self._arity}"
            )
        if fastpath.enabled():
            value = self._evaluate_fast(values)
            if value is not fastpath.MISS:
                return value
        total: Number = 0
        for exponents, coefficient in self._terms.items():
            term = coefficient
            for value, exponent in zip(values, exponents):
                if exponent:
                    term = term * value**exponent
            total = total + term
        return total

    # -- arithmetic -----------------------------------------------------------------

    def _require_same_arity(self, other: "MultivariatePolynomial") -> None:
        if self._arity != other._arity:
            raise ValidationError(
                f"arity mismatch: {self._arity} vs {other._arity}"
            )

    def __add__(self, other: "MultivariatePolynomial") -> "MultivariatePolynomial":
        if not isinstance(other, MultivariatePolynomial):
            return NotImplemented
        self._require_same_arity(other)
        merged = dict(self._terms)
        for exponents, coefficient in other._terms.items():
            merged[exponents] = merged.get(exponents, 0) + coefficient
        return MultivariatePolynomial(self._arity, merged)

    def __neg__(self) -> "MultivariatePolynomial":
        return MultivariatePolynomial(
            self._arity, {e: -c for e, c in self._terms.items()}
        )

    def __sub__(self, other: "MultivariatePolynomial") -> "MultivariatePolynomial":
        if not isinstance(other, MultivariatePolynomial):
            return NotImplemented
        return self + (-other)

    def __mul__(
        self, other: Union["MultivariatePolynomial", Number]
    ) -> "MultivariatePolynomial":
        if isinstance(other, MultivariatePolynomial):
            self._require_same_arity(other)
            product: Dict[Exponents, Number] = {}
            for e1, c1 in self._terms.items():
                for e2, c2 in other._terms.items():
                    key = tuple(a + b for a, b in zip(e1, e2))
                    product[key] = product.get(key, 0) + c1 * c2
            return MultivariatePolynomial(self._arity, product)
        return MultivariatePolynomial(
            self._arity, {e: c * other for e, c in self._terms.items()}
        )

    def __rmul__(self, other: Number) -> "MultivariatePolynomial":
        return self * other

    def scale(self, factor: Number) -> "MultivariatePolynomial":
        """Return ``factor * self``."""
        return self * factor

    def add_constant(self, value: Number) -> "MultivariatePolynomial":
        """Return ``self + value``."""
        return self + MultivariatePolynomial.constant(self._arity, value)

    # -- substitution -------------------------------------------------------------

    def substitute_univariate(
        self, replacements: Sequence[Polynomial]
    ) -> Polynomial:
        """Substitute a univariate polynomial for each variable.

        Given ``G(v) = (g_1(v), ..., g_n(v))`` this returns the
        univariate polynomial ``self(g_1(v), ..., g_n(v))`` — the
        algebraic heart of the OMPE receiver's correctness argument:
        its degree is ``total_degree * max_i deg(g_i)``.
        """
        replacements = list(replacements)
        if len(replacements) != self._arity:
            raise ValidationError(
                f"{len(replacements)} replacement polynomials for arity {self._arity}"
            )
        result = Polynomial.zero()
        power_cache: Dict[Tuple[int, int], Polynomial] = {}

        def powered(index: int, exponent: int) -> Polynomial:
            key = (index, exponent)
            if key not in power_cache:
                power_cache[key] = replacements[index].power(exponent)
            return power_cache[key]

        for exponents, coefficient in self._terms.items():
            term = Polynomial.constant(coefficient)
            for index, exponent in enumerate(exponents):
                if exponent:
                    term = term * powered(index, exponent)
            result = result + term
        return result

    def to_exact(self) -> "MultivariatePolynomial":
        """Copy with all coefficients as exact Fractions."""
        return MultivariatePolynomial(
            self._arity, {e: Fraction(c) for e, c in self._terms.items()}
        )

    def to_float(self) -> "MultivariatePolynomial":
        """Copy with all coefficients as floats."""
        return MultivariatePolynomial(
            self._arity, {e: float(c) for e, c in self._terms.items()}
        )

    def gradient_at(self, point: Sequence[Number]) -> Tuple[Number, ...]:
        """Gradient vector at ``point`` (used by boundary diagnostics)."""
        values = tuple(point)
        if len(values) != self._arity:
            raise ValidationError(
                f"point has {len(values)} coordinates, expected {self._arity}"
            )
        gradient = []
        for axis in range(self._arity):
            partial: Number = 0
            for exponents, coefficient in self._terms.items():
                exponent = exponents[axis]
                if exponent == 0:
                    continue
                term = coefficient * exponent
                for index, (value, power) in enumerate(zip(values, exponents)):
                    effective = power - 1 if index == axis else power
                    if effective:
                        term = term * value**effective
                partial = partial + term
            gradient.append(partial)
        return tuple(gradient)
