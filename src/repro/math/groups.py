"""Prime-order Schnorr subgroups of ``Z_p^*``.

The Naor–Pinkas oblivious transfer (:mod:`repro.crypto.ot`) works in a
cyclic group where the Decisional Diffie–Hellman problem is assumed
hard.  We use the order-``q`` subgroup of ``Z_p^*`` for a safe prime
``p = 2q + 1``: squaring maps any element into the subgroup, membership
is testable, and all arithmetic is plain modular exponentiation.

Parameter sizes here are tunable: tests and benchmarks use small groups
(128–256 bit) for speed; :func:`default_group` offers a precomputed
512-bit group.  A deployment would use ≥2048-bit parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ValidationError
from repro.math.numtheory import generate_safe_prime, is_probable_prime, modular_inverse
from repro.utils.rng import ReproRandom


@dataclass(frozen=True)
class SchnorrGroup:
    """A prime-order-``q`` subgroup of ``Z_p^*`` with ``p = 2q + 1``.

    Attributes
    ----------
    p:
        Safe prime modulus.
    q:
        Subgroup order, ``(p - 1) // 2``.
    g:
        Generator of the order-``q`` subgroup.
    """

    p: int
    q: int
    g: int

    def __post_init__(self) -> None:
        if self.p != 2 * self.q + 1:
            raise ValidationError("p must equal 2q + 1")
        if not is_probable_prime(self.p) or not is_probable_prime(self.q):
            raise ValidationError("p and q must both be prime")
        if not self.contains(self.g) or self.g == 1:
            raise ValidationError("g must generate the order-q subgroup")

    # -- group operations ----------------------------------------------------

    def contains(self, element: int) -> bool:
        """True when ``element`` lies in the order-``q`` subgroup."""
        return 0 < element < self.p and pow(element, self.q, self.p) == 1

    def exp(self, base: int, exponent: int) -> int:
        """Return ``base ** exponent mod p``."""
        return pow(base, exponent % self.q, self.p)

    def exp_g(self, exponent: int) -> int:
        """Return ``g ** exponent mod p`` via a cached fixed-base table.

        The OT protocols compute ``g^r`` for a fresh ``r`` on every
        slot; a windowed precomputation table for the fixed base ``g``
        cuts that cost several-fold (see ``bench_ablation_ot``).  The
        table is built lazily on first use and cached per group.
        """
        table = _FIXED_BASE_TABLES.get(id(self))
        if table is None:
            table = FixedBaseTable(self.g, self.p, self.q.bit_length())
            _FIXED_BASE_TABLES[id(self)] = table
        return table.power(exponent % self.q)

    def mul(self, a: int, b: int) -> int:
        """Group multiplication."""
        return (a * b) % self.p

    def inv(self, element: int) -> int:
        """Group inverse."""
        return modular_inverse(element, self.p)

    def div(self, a: int, b: int) -> int:
        """Return ``a / b`` in the group."""
        return self.mul(a, self.inv(b))

    def random_exponent(self, rng: ReproRandom) -> int:
        """Uniform exponent in ``[1, q - 1]``."""
        return rng.randint(1, self.q - 1)

    def random_element(self, rng: ReproRandom) -> int:
        """Uniform non-identity subgroup element."""
        return self.exp_g(self.random_exponent(rng))

    @property
    def element_bytes(self) -> int:
        """Bytes needed to encode one group element."""
        return (self.p.bit_length() + 7) // 8

    def encode_element(self, element: int) -> bytes:
        """Fixed-width big-endian encoding of a group element."""
        if not 0 < element < self.p:
            raise ValidationError("element out of range for encoding")
        return element.to_bytes(self.element_bytes, "big")


#: Cache of fixed-base tables, keyed by group object identity.  Frozen
#: dataclasses cannot hold mutable state, so the cache lives module-side.
_FIXED_BASE_TABLES: dict = {}


class FixedBaseTable:
    """Windowed fixed-base exponentiation.

    Precomputes ``base^(d * 2^(w*i))`` for every window position ``i``
    and digit ``d``; a subsequent exponentiation is then just one
    modular multiplication per nonzero window — no squarings.
    """

    def __init__(self, base: int, modulus: int, exponent_bits: int, window: int = 6):
        if window < 1:
            raise ValidationError(f"window must be at least 1, got {window}")
        self.modulus = modulus
        self.window = window
        self.windows = (exponent_bits + window - 1) // window
        self._table = []
        radix = 1 << window
        block_base = base
        for _ in range(self.windows):
            row = [1] * radix
            for digit in range(1, radix):
                row[digit] = (row[digit - 1] * block_base) % modulus
            self._table.append(row)
            block_base = (row[radix - 1] * block_base) % modulus

    def power(self, exponent: int) -> int:
        """Return ``base ** exponent mod modulus``."""
        if exponent < 0:
            raise ValidationError("exponent must be non-negative")
        result = 1
        mask = (1 << self.window) - 1
        position = 0
        while exponent and position < self.windows:
            digit = exponent & mask
            if digit:
                result = (result * self._table[position][digit]) % self.modulus
            exponent >>= self.window
            position += 1
        if exponent:
            raise ValidationError("exponent exceeds the precomputed range")
        return result


def generate_group(bits: int, rng: Optional[ReproRandom] = None) -> SchnorrGroup:
    """Generate a fresh Schnorr group with a ``bits``-bit safe prime."""
    rng = rng or ReproRandom()
    p = generate_safe_prime(bits, rng)
    q = (p - 1) // 2
    # Squaring any element lands in the order-q subgroup; avoid the identity.
    while True:
        h = rng.randint(2, p - 2)
        g = pow(h, 2, p)
        if g != 1:
            return SchnorrGroup(p=p, q=q, g=g)


# Precomputed safe primes so callers do not pay generation cost at
# import time.  p = 2q + 1 with p, q prime; g = 4 = 2^2 is a quadratic
# residue and therefore generates the order-q subgroup.  Both were
# produced by generate_safe_prime(bits, ReproRandom(2016)).
_P_256 = int(
    "1018899632155406837894638751842396378426563141714804843979959701573"
    "83394629547"
)
_P_512 = int(
    "9089552301755067186032138780513399388424399611891803208602136417393"
    "3068515444526490970966502044340050389091891670009972740985952578658"
    "40989330835240449059"
)
_CACHED: dict = {}


def _cached_group(p: int) -> SchnorrGroup:
    group = _CACHED.get(p)
    if group is None:
        group = SchnorrGroup(p=p, q=(p - 1) // 2, g=4)
        _CACHED[p] = group
    return group


def default_group() -> SchnorrGroup:
    """Return a shared 512-bit group (lazily verified on first use)."""
    return _cached_group(_P_512)


def fast_group() -> SchnorrGroup:
    """Return a shared 256-bit group — fast, for tests and benchmarks."""
    return _cached_group(_P_256)


def small_test_group() -> SchnorrGroup:
    """A tiny (64-bit) group for fast unit tests — NOT secure."""
    rng = ReproRandom(2016)
    return generate_group(64, rng)
