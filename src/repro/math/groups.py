"""Prime-order Schnorr subgroups of ``Z_p^*``.

The Naor–Pinkas oblivious transfer (:mod:`repro.crypto.ot`) works in a
cyclic group where the Decisional Diffie–Hellman problem is assumed
hard.  We use the order-``q`` subgroup of ``Z_p^*`` for a safe prime
``p = 2q + 1``: squaring maps any element into the subgroup, membership
is testable, and all arithmetic is plain modular exponentiation.

Parameter sizes here are tunable: tests and benchmarks use small groups
(128–256 bit) for speed; :func:`default_group` offers a precomputed
512-bit group.  A deployment would use ≥2048-bit parameters.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.exceptions import ValidationError
from repro.math import fastpath
from repro.math.numtheory import (
    batch_modular_inverse,
    generate_safe_prime,
    is_probable_prime,
    jacobi_symbol,
    modular_inverse,
)
from repro.utils.rng import ReproRandom
from repro.utils.serialization import register_payload_type


@register_payload_type("math/schnorr-group")
@dataclass(frozen=True)
class SchnorrGroup:
    """A prime-order-``q`` subgroup of ``Z_p^*`` with ``p = 2q + 1``.

    Attributes
    ----------
    p:
        Safe prime modulus.
    q:
        Subgroup order, ``(p - 1) // 2``.
    g:
        Generator of the order-``q`` subgroup.
    """

    p: int
    q: int
    g: int

    def __post_init__(self) -> None:
        if self.p != 2 * self.q + 1:
            raise ValidationError("p must equal 2q + 1")
        if not is_probable_prime(self.p) or not is_probable_prime(self.q):
            raise ValidationError("p and q must both be prime")
        if not self.contains(self.g) or self.g == 1:
            raise ValidationError("g must generate the order-q subgroup")

    # -- group operations ----------------------------------------------------

    def contains(self, element: int) -> bool:
        """True when ``element`` lies in the order-``q`` subgroup.

        For a safe prime ``p = 2q + 1`` the order-``q`` subgroup is
        exactly the set of quadratic residues, so membership is a
        Jacobi-symbol computation (gcd-like, ~5x cheaper than the
        ``e^q mod p`` test).  The naive ``pow`` test is retained as the
        reference and used when the hot path is disabled; both agree on
        every input (``p ≡ 3 mod 4``, so ``-1`` is a non-residue and
        ``p - 1`` is correctly excluded by either test).
        """
        if not 0 < element < self.p:
            return False
        if fastpath.enabled():
            return jacobi_symbol(element, self.p) == 1
        return pow(element, self.q, self.p) == 1

    def exp(self, base: int, exponent: int) -> int:
        """Return ``base ** exponent mod p``.

        Variable-base exponentiation routes through the active bignum
        backend under the hot path (gmpy2's ``powmod`` is several times
        faster than CPython ``pow`` at these sizes); the naive
        reference stays pure CPython.
        """
        if fastpath.enabled():
            return fastpath.get_backend().powmod(base, exponent % self.q, self.p)
        return pow(base, exponent % self.q, self.p)

    def exp_g(self, exponent: int) -> int:
        """Return ``g ** exponent mod p`` via a cached fixed-base table.

        The OT protocols compute ``g^r`` for a fresh ``r`` on every
        slot; a windowed precomputation table for the fixed base ``g``
        cuts that cost ~10x (see ``bench_hotpath_arith``).  The table is
        built lazily on first use and cached per parameter set.  When
        the hot path is disabled this falls back to the naive ``pow``
        reference; both produce identical group elements.
        """
        reduced = exponent % self.q
        if not fastpath.enabled():
            return pow(self.g, reduced, self.p)
        return self.fixed_base_table().power(reduced)

    def fixed_base_table(self) -> "FixedBaseTable":
        """The cached windowed table for the generator ``g``.

        Keyed by the parameter triple ``(p, q, g)`` in a bounded LRU:
        keying by ``id(self)`` (as earlier revisions did) both leaked
        entries for freed groups and could serve a *stale table* if a
        freed group's id was reused by a new group with different
        parameters.  Equal parameter sets now share one table
        regardless of instance identity.
        """
        key = (self.p, self.q, self.g)
        table = _FIXED_BASE_TABLES.get(key)
        if table is None:
            started = time.perf_counter()
            table = FixedBaseTable(self.g, self.p, self.q.bit_length())
            elapsed = time.perf_counter() - started
            _TABLE_STATS["builds"] += 1
            _TABLE_STATS["build_seconds"] += elapsed
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "repro_precompute_misses_total",
                    "Precompute-store misses that forced a live build",
                ).inc(kind="fixed-base-table")
                metrics.histogram(
                    "repro_precompute_build_seconds",
                    "Time spent building precompute material on a miss",
                ).observe(elapsed, kind="fixed-base-table")
            _FIXED_BASE_TABLES[key] = table
            while len(_FIXED_BASE_TABLES) > _FIXED_BASE_TABLE_CAP:
                try:
                    _FIXED_BASE_TABLES.popitem(last=False)
                except KeyError:
                    break  # another thread emptied the cache under us
        else:
            # Hot path (once per exp_g): a plain dict bump only — the
            # metrics registry is consulted on misses, never on hits.
            _TABLE_STATS["hits"] += 1
            try:
                _FIXED_BASE_TABLES.move_to_end(key)
            except KeyError:
                pass  # concurrently evicted; the table in hand stays valid
        return table

    def mul(self, a: int, b: int) -> int:
        """Group multiplication."""
        return (a * b) % self.p

    def inv(self, element: int) -> int:
        """Group inverse."""
        return modular_inverse(element, self.p)

    def batch_inv(self, elements: Sequence[int]) -> List[int]:
        """Invert many elements with one extended gcd (Montgomery's trick).

        Used by the k-of-n OT sender to invert every session's blinding
        point in one shot.  Inverses are unique, so the output matches
        per-element :meth:`inv` exactly.
        """
        return batch_modular_inverse(elements, self.p)

    def div(self, a: int, b: int) -> int:
        """Return ``a / b`` in the group."""
        return self.mul(a, self.inv(b))

    def random_exponent(self, rng: ReproRandom) -> int:
        """Uniform exponent in ``[1, q - 1]``."""
        return rng.randint(1, self.q - 1)

    def random_element(self, rng: ReproRandom) -> int:
        """Uniform non-identity subgroup element."""
        return self.exp_g(self.random_exponent(rng))

    @property
    def element_bytes(self) -> int:
        """Bytes needed to encode one group element."""
        return (self.p.bit_length() + 7) // 8

    def encode_element(self, element: int) -> bytes:
        """Fixed-width big-endian encoding of a group element."""
        if not 0 < element < self.p:
            raise ValidationError("element out of range for encoding")
        return element.to_bytes(self.element_bytes, "big")


#: Cache of generator fixed-base tables, keyed by the group parameter
#: triple ``(p, q, g)`` — never by object identity, which can be reused
#: after a group is freed.  Bounded LRU; frozen dataclasses cannot hold
#: mutable state, so the cache lives module-side.
_FIXED_BASE_TABLES: "OrderedDict" = OrderedDict()
_FIXED_BASE_TABLE_CAP = 16

#: Process-local generator-table cache statistics.  Kept as a plain
#: dict (not metrics instruments) because the hit counter is bumped on
#: every ``exp_g`` — the precompute service exports these into the
#: registry at convenient boundaries (engine drain, ``repro observe``).
_TABLE_STATS: Dict[str, float] = {"hits": 0, "builds": 0, "build_seconds": 0.0}


def fixed_base_table_stats() -> Dict[str, float]:
    """Snapshot of the generator-table cache counters (hits/builds)."""
    return dict(_TABLE_STATS)


def reset_fixed_base_table_stats() -> None:
    """Zero the cache counters (engine workers call this after fork,
    so inherited parent-side builds are not charged to the worker)."""
    _TABLE_STATS["hits"] = 0
    _TABLE_STATS["builds"] = 0
    _TABLE_STATS["build_seconds"] = 0.0


def cached_table_keys() -> List[tuple]:
    """The ``(p, q, g)`` triples currently warm in the table cache."""
    return list(_FIXED_BASE_TABLES.keys())


def export_fixed_base_tables(
    keys: Optional[Sequence[tuple]] = None,
) -> List[dict]:
    """Serialize cached generator tables for another process.

    Rows are lowered to plain ints, so the blob is picklable and
    backend-independent; ``keys`` filters to specific ``(p, q, g)``
    triples (the engine ships only its own group, not every cached
    table).
    """
    wanted = set(keys) if keys is not None else None
    exported = []
    for key, table in _FIXED_BASE_TABLES.items():
        if wanted is not None and key not in wanted:
            continue
        p, q, g = key
        exported.append(
            {
                "p": p,
                "q": q,
                "g": g,
                "window": table.window,
                "rows": table.to_rows(),
            }
        )
    return exported


def install_fixed_base_tables(blobs: Sequence[dict]) -> int:
    """Install serialized tables into this process's cache.

    Existing entries win (a worker forked from a warm parent already
    holds the identical table); returns the number actually installed.
    """
    installed = 0
    for blob in blobs:
        key = (blob["p"], blob["q"], blob["g"])
        if key in _FIXED_BASE_TABLES:
            continue
        _FIXED_BASE_TABLES[key] = FixedBaseTable.from_rows(
            blob["p"], blob["window"], blob["rows"]
        )
        installed += 1
        while len(_FIXED_BASE_TABLES) > _FIXED_BASE_TABLE_CAP:
            try:
                _FIXED_BASE_TABLES.popitem(last=False)
            except KeyError:
                break
    return installed


class FixedBaseTable:
    """Windowed fixed-base exponentiation.

    Precomputes ``base^(d * 2^(w*i))`` for every window position ``i``
    and digit ``d``; a subsequent exponentiation is then just one
    modular multiplication per nonzero window — no squarings.  With the
    default window of 8 a 255-bit exponentiation is ≤32 multiplications
    (vs ~320 multiplication-equivalents inside C ``pow``), ~10x faster
    once the one-time table build is amortized.
    """

    def __init__(self, base: int, modulus: int, exponent_bits: int, window: int = 8):
        if window < 1:
            raise ValidationError(f"window must be at least 1, got {window}")
        self.modulus = modulus
        self.window = window
        self.windows = (exponent_bits + window - 1) // window
        self._table = []
        # Table entries are held in the backend-native representation
        # (mpz under gmpy2, plain int under python): the per-window
        # multiplications in ``mul_power`` then run on native values
        # with operator syntax — no per-multiply dispatch overhead —
        # and the result is lowered to int exactly once on return.
        lift = fastpath.get_backend().mpz
        native_modulus = lift(modulus)
        radix = 1 << window
        block_base = lift(base % modulus)
        one = lift(1)
        for _ in range(self.windows):
            row = [one] * radix
            for digit in range(1, radix):
                row[digit] = (row[digit - 1] * block_base) % native_modulus
            self._table.append(row)
            block_base = (row[radix - 1] * block_base) % native_modulus

    def to_rows(self) -> List[List[int]]:
        """The precomputed rows as plain ints (picklable, backend-free)."""
        return [[int(entry) for entry in row] for row in self._table]

    @classmethod
    def from_rows(
        cls, modulus: int, window: int, rows: Sequence[Sequence[int]]
    ) -> "FixedBaseTable":
        """Rebuild a table from :meth:`to_rows` output without recomputing."""
        table = cls.__new__(cls)
        table.modulus = modulus
        table.window = window
        table.windows = len(rows)
        lift = fastpath.get_backend().mpz
        table._table = [[lift(entry) for entry in row] for row in rows]
        return table

    def power(self, exponent: int) -> int:
        """Return ``base ** exponent mod modulus``."""
        return self.mul_power(1, exponent)

    def mul_power(self, accumulator: int, exponent: int) -> int:
        """Return ``accumulator * base ** exponent mod modulus``.

        Folding the table walk into a caller's accumulator lets two
        tables share one product chain (see
        :class:`DualBaseExponentiator`) without an extra multiply.
        """
        if exponent < 0:
            raise ValidationError("exponent must be non-negative")
        result = accumulator
        mask = (1 << self.window) - 1
        position = 0
        modulus = self.modulus
        table = self._table
        while exponent and position < self.windows:
            digit = exponent & mask
            if digit:
                result = (result * table[position][digit]) % modulus
            exponent >>= self.window
            position += 1
        if exponent:
            raise ValidationError("exponent exceeds the precomputed range")
        # Lower back to int: table entries may be backend-native (mpz).
        return int(result)


#: Minimum slot count before the per-session dual tables pay for their
#: build cost (2 bases × window tables ≈ 1.7 ms at 256 bits, recouped
#: ~100 µs per slot; breakeven measured around 16 slots).
DUAL_TABLE_MIN_SLOTS = 16


class DualBaseExponentiator:
    """Shamir-style dual-table evaluator for OT key derivation.

    The Naor–Pinkas sender derives, for slot ``i`` with fresh exponent
    ``r``, the key point ``(V · w^{-i})^r``.  Rewriting::

        (V · w^{-i})^r  =  V^r · (w^{-1})^(i·r mod q)

    turns every slot into *two fixed-base* evaluations over the session
    constants ``V`` and ``w^{-1}`` — no per-slot squarings, one shared
    product chain.  Output is bit-identical to the naive
    ``pow(V * w^{-i}, r, p)`` derivation for every ``(i, r)``.

    Worth it only when the per-slot savings amortize the two table
    builds: callers gate on :data:`DUAL_TABLE_MIN_SLOTS`.
    """

    def __init__(self, group: SchnorrGroup, blinded: int, w_inverse: int, window: int = 4):
        self._q = group.q
        bits = group.q.bit_length()
        self._blinded_table = FixedBaseTable(blinded, group.p, bits, window=window)
        self._inverse_table = FixedBaseTable(w_inverse, group.p, bits, window=window)

    def key_point(self, index: int, exponent: int) -> int:
        """Return ``(V · w^{-index})^exponent`` in the group."""
        reduced = exponent % self._q
        partial = self._blinded_table.power(reduced)
        shift = (index * reduced) % self._q
        if shift:
            partial = self._inverse_table.mul_power(partial, shift)
        return partial


def generate_group(bits: int, rng: Optional[ReproRandom] = None) -> SchnorrGroup:
    """Generate a fresh Schnorr group with a ``bits``-bit safe prime."""
    rng = rng or ReproRandom()
    p = generate_safe_prime(bits, rng)
    q = (p - 1) // 2
    # Squaring any element lands in the order-q subgroup; avoid the identity.
    while True:
        h = rng.randint(2, p - 2)
        g = pow(h, 2, p)
        if g != 1:
            return SchnorrGroup(p=p, q=q, g=g)


# Precomputed safe primes so callers do not pay generation cost at
# import time.  p = 2q + 1 with p, q prime; g = 4 = 2^2 is a quadratic
# residue and therefore generates the order-q subgroup.  Both were
# produced by generate_safe_prime(bits, ReproRandom(2016)).
_P_256 = int(
    "1018899632155406837894638751842396378426563141714804843979959701573"
    "83394629547"
)
_P_512 = int(
    "9089552301755067186032138780513399388424399611891803208602136417393"
    "3068515444526490970966502044340050389091891670009972740985952578658"
    "40989330835240449059"
)
_CACHED: dict = {}


def _cached_group(p: int) -> SchnorrGroup:
    group = _CACHED.get(p)
    if group is None:
        group = SchnorrGroup(p=p, q=(p - 1) // 2, g=4)
        _CACHED[p] = group
    return group


def default_group() -> SchnorrGroup:
    """Return a shared 512-bit group (lazily verified on first use)."""
    return _cached_group(_P_512)


def fast_group() -> SchnorrGroup:
    """Return a shared 256-bit group — fast, for tests and benchmarks."""
    return _cached_group(_P_256)


def small_test_group() -> SchnorrGroup:
    """A tiny (64-bit) group for fast unit tests — NOT secure."""
    rng = ReproRandom(2016)
    return generate_group(64, rng)
