"""Statistical tests used by the evaluation harness.

Implements the two-sample Kolmogorov–Smirnov test (the comparator in
the paper's Table II), plus the rank statistics used to assert that our
similarity metric orders dataset pairs the same way the K-S averages
do.  Written from scratch; :mod:`scipy.stats` is used only in the test
suite as an independent oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class KSResult:
    """Result of a two-sample Kolmogorov–Smirnov test.

    Attributes
    ----------
    statistic:
        The supremum distance ``D`` between the empirical CDFs.
    scaled_statistic:
        ``sqrt(n*m/(n+m)) * D`` — the normalized test statistic whose
        asymptotic distribution is Kolmogorov's.  (Table II of the paper
        reports averages on this larger scale.)
    pvalue:
        Asymptotic two-sided p-value (Kolmogorov distribution tail).
    """

    statistic: float
    scaled_statistic: float
    pvalue: float


def empirical_cdf(sample: Sequence[float], point: float) -> float:
    """Empirical CDF of ``sample`` evaluated at ``point``."""
    if not sample:
        raise ValidationError("sample must be non-empty")
    return sum(1 for value in sample if value <= point) / len(sample)


def _kolmogorov_sf(x: float, terms: int = 100) -> float:
    """Survival function of the Kolmogorov distribution.

    ``Q(x) = 2 Σ_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2)``.
    """
    if x <= 0:
        return 1.0
    total = 0.0
    for k in range(1, terms + 1):
        term = (-1) ** (k - 1) * math.exp(-2.0 * k * k * x * x)
        total += term
        if abs(term) < 1e-16:
            break
    return max(0.0, min(1.0, 2.0 * total))


def ks_2samp(first: Sequence[float], second: Sequence[float]) -> KSResult:
    """Two-sample Kolmogorov–Smirnov test.

    Computes the exact supremum distance between the two empirical CDFs
    by a linear merge of the sorted samples.
    """
    xs = sorted(float(v) for v in first)
    ys = sorted(float(v) for v in second)
    if not xs or not ys:
        raise ValidationError("both samples must be non-empty")
    n, m = len(xs), len(ys)
    i = j = 0
    cdf_x = cdf_y = 0.0
    distance = 0.0
    while i < n and j < m:
        value = min(xs[i], ys[j])
        while i < n and xs[i] <= value:
            i += 1
        while j < m and ys[j] <= value:
            j += 1
        cdf_x = i / n
        cdf_y = j / m
        distance = max(distance, abs(cdf_x - cdf_y))
    scale = math.sqrt(n * m / (n + m))
    scaled = scale * distance
    return KSResult(statistic=distance, scaled_statistic=scaled, pvalue=_kolmogorov_sf(scaled))


def ks_average_over_dimensions(
    first_rows: Sequence[Sequence[float]], second_rows: Sequence[Sequence[float]]
) -> float:
    """Average scaled K-S statistic across feature dimensions.

    Reproduces the paper's Table II methodology: "we test it on each
    data feature dimension for the split subsets [and] get the average
    value over the dimensions' K-S test results".
    """
    first_rows = [list(row) for row in first_rows]
    second_rows = [list(row) for row in second_rows]
    if not first_rows or not second_rows:
        raise ValidationError("both datasets must be non-empty")
    dims = len(first_rows[0])
    if any(len(row) != dims for row in first_rows + second_rows):
        raise ValidationError("rows must all have the same dimensionality")
    total = 0.0
    for dim in range(dims):
        column_a = [row[dim] for row in first_rows]
        column_b = [row[dim] for row in second_rows]
        total += ks_2samp(column_a, column_b).scaled_statistic
    return total / dims


def rankdata(values: Sequence[float]) -> List[float]:
    """Average ranks (1-based) with tie handling."""
    if not values:
        raise ValidationError("values must be non-empty")
    indexed = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(indexed):
        tail = position
        while (
            tail + 1 < len(indexed)
            and values[indexed[tail + 1]] == values[indexed[position]]
        ):
            tail += 1
        average_rank = (position + tail) / 2 + 1
        for k in range(position, tail + 1):
            ranks[indexed[k]] = average_rank
        position = tail + 1
    return ranks


def spearman_correlation(first: Sequence[float], second: Sequence[float]) -> float:
    """Spearman rank correlation of two paired samples."""
    if len(first) != len(second):
        raise ValidationError("samples must be paired (equal length)")
    if len(first) < 2:
        raise ValidationError("need at least two pairs")
    ranks_a = rankdata(first)
    ranks_b = rankdata(second)
    return pearson_correlation(ranks_a, ranks_b)


def pearson_correlation(first: Sequence[float], second: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    if len(first) != len(second):
        raise ValidationError("samples must be paired (equal length)")
    n = len(first)
    if n < 2:
        raise ValidationError("need at least two pairs")
    mean_a = sum(first) / n
    mean_b = sum(second) / n
    cov = sum((a - mean_a) * (b - mean_b) for a, b in zip(first, second))
    var_a = sum((a - mean_a) ** 2 for a in first)
    var_b = sum((b - mean_b) ** 2 for b in second)
    if var_a == 0 or var_b == 0:
        raise ValidationError("correlation undefined for constant samples")
    return cov / math.sqrt(var_a * var_b)


def mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and (population) standard deviation."""
    if not values:
        raise ValidationError("values must be non-empty")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(variance)
