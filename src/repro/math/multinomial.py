"""Multinomial expansion machinery for the nonlinear transform.

Paper Section IV-B expands the polynomial kernel decision function

    d(t) = Σ_s α_s y_s (x_s · t)^p + b
         = Σ_{k1+...+kn=p} [Σ_s α_s y_s C(p; k1..kn) Π x_si^ki] Π t_i^ki + b

and treats each monomial ``Π t_i^ki`` as a fresh variable ``τ_j``.  This
module enumerates the exponent vectors (weak compositions of ``p`` into
``n`` parts), computes multinomial coefficients, and performs the
``t → τ`` transform in both directions.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.math.polynomials import Number

Exponents = Tuple[int, ...]


def multinomial_coefficient(total: int, parts: Sequence[int]) -> int:
    """Return ``C(total; parts) = total! / (k1! k2! ... kn!)``.

    Raises when the parts do not sum to ``total``.
    """
    parts = list(parts)
    if any(part < 0 for part in parts):
        raise ValidationError(f"parts must be non-negative, got {parts}")
    if sum(parts) != total:
        raise ValidationError(f"parts {parts} do not sum to {total}")
    result = math.factorial(total)
    for part in parts:
        result //= math.factorial(part)
    return result


def compositions(total: int, parts: int) -> Iterator[Exponents]:
    """Yield all weak compositions of ``total`` into ``parts`` parts.

    These are the exponent vectors ``(k1, ..., kn)`` with ``Σ ki = total``
    and ``ki >= 0``, in lexicographic order (first part decreasing).
    """
    if parts < 1:
        raise ValidationError(f"parts must be at least 1, got {parts}")
    if total < 0:
        raise ValidationError(f"total must be non-negative, got {total}")
    if parts == 1:
        yield (total,)
        return
    for head in range(total, -1, -1):
        for tail in compositions(total - head, parts - 1):
            yield (head,) + tail


def count_compositions(total: int, parts: int) -> int:
    """Number of weak compositions: ``C(total + parts - 1, parts - 1)``.

    This is the paper's monomial count ``n' = C(n + p - 1, n - 1)`` for
    degree-``p`` monomials in ``n`` variables.
    """
    if parts < 1:
        raise ValidationError(f"parts must be at least 1, got {parts}")
    if total < 0:
        raise ValidationError(f"total must be non-negative, got {total}")
    return math.comb(total + parts - 1, parts - 1)


def compositions_up_to(total: int, parts: int) -> Iterator[Exponents]:
    """Yield exponent vectors of total degree 1..``total`` (no constant).

    Used when the polynomialized kernel has terms of every degree (e.g.
    truncated RBF/sigmoid series), not only degree exactly ``p``.
    """
    for degree in range(1, total + 1):
        yield from compositions(degree, parts)


def count_compositions_up_to(total: int, parts: int) -> int:
    """Number of monomials of total degree 1..``total`` in ``parts`` vars."""
    return sum(count_compositions(degree, parts) for degree in range(1, total + 1))


def monomial_value(point: Sequence[Number], exponents: Exponents) -> Number:
    """Evaluate the monomial ``Π point_i^{exponents_i}``."""
    if len(point) != len(exponents):
        raise ValidationError(
            f"point/exponent length mismatch: {len(point)} vs {len(exponents)}"
        )
    value: Number = 1
    for coordinate, exponent in zip(point, exponents):
        if exponent:
            value = value * coordinate**exponent
    return value


def transform_point(
    point: Sequence[Number], exponent_basis: Sequence[Exponents]
) -> List[Number]:
    """Map ``t`` to ``τ = (monomial_j(t))_j`` — the IV-B client transform."""
    return [monomial_value(point, exponents) for exponents in exponent_basis]


def degree_p_basis(dimension: int, degree: int) -> List[Exponents]:
    """Exponent basis for monomials of total degree exactly ``degree``."""
    return list(compositions(degree, dimension))


def mixed_degree_basis(dimension: int, degree: int) -> List[Exponents]:
    """Exponent basis for total degree 1..``degree`` (no constant term)."""
    return list(compositions_up_to(degree, dimension))
