"""Taylor-series polynomialization of non-polynomial kernels.

Paper Section IV-B lists the RBF and sigmoid kernels and notes that a
truncated Taylor expansion turns both into polynomials so the OMPE
machinery still applies ("in real applications, we can use a large
number p to approximate the infinity").  This module supplies:

* Bernoulli numbers (exact rationals), which appear in the paper's
  ``tanh`` expansion ``Σ B_{2i} 4^i (4^i - 1) / (2i)! · z^{2i-1}``;
* truncated series for ``exp`` and ``tanh`` as
  :class:`repro.math.polynomials.Polynomial` objects;
* error bounds so callers can pick a truncation degree for a target
  accuracy on the data domain ``[-1, 1]``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List

from repro.exceptions import ValidationError
from repro.math.polynomials import Polynomial


def bernoulli_numbers(count: int) -> List[Fraction]:
    """Return the Bernoulli numbers ``B_0 .. B_{count-1}`` (B1 = -1/2).

    Computed exactly with the classic recurrence
    ``Σ_{j=0}^{m} C(m+1, j) B_j = 0`` for ``m >= 1``.
    """
    if count < 1:
        raise ValidationError(f"count must be at least 1, got {count}")
    numbers: List[Fraction] = [Fraction(1)]
    for m in range(1, count):
        accumulator = Fraction(0)
        for j in range(m):
            accumulator += math.comb(m + 1, j) * numbers[j]
        numbers.append(-accumulator / (m + 1))
    return numbers


def exp_taylor(degree: int) -> Polynomial:
    """Truncated Maclaurin series of ``exp(z)`` up to ``z^degree``."""
    if degree < 0:
        raise ValidationError(f"degree must be non-negative, got {degree}")
    coefficients = [Fraction(1, math.factorial(k)) for k in range(degree + 1)]
    return Polynomial(coefficients)


def tanh_taylor(degree: int) -> Polynomial:
    """Truncated Maclaurin series of ``tanh(z)`` up to ``z^degree``.

    ``tanh z = Σ_{i>=1} B_{2i} 4^i (4^i - 1) / (2i)! · z^{2i-1}`` — the
    expansion quoted for the sigmoid kernel in paper Section IV-B.
    Converges for ``|z| < π/2``, which covers the paper's scaled data
    domain (inner products of vectors in [-1, 1]^n need rescaling for
    large n; see :func:`tanh_truncation_error`).
    """
    if degree < 0:
        raise ValidationError(f"degree must be non-negative, got {degree}")
    terms_needed = degree // 2 + 2
    bernoulli = bernoulli_numbers(2 * terms_needed + 2)
    coefficients = [Fraction(0)] * (degree + 1)
    for i in range(1, terms_needed + 1):
        power = 2 * i - 1
        if power > degree:
            break
        coefficient = (
            bernoulli[2 * i]
            * Fraction(4**i)
            * Fraction(4**i - 1)
            / Fraction(math.factorial(2 * i))
        )
        coefficients[power] = coefficient
    return Polynomial(coefficients)


def exp_truncation_error(degree: int, radius: float) -> float:
    """Upper bound on ``|exp(z) - T_degree(z)|`` for ``|z| <= radius``.

    Uses the Lagrange remainder ``e^radius * radius^{d+1} / (d+1)!``.
    """
    if radius < 0:
        raise ValidationError(f"radius must be non-negative, got {radius}")
    return math.exp(radius) * radius ** (degree + 1) / math.factorial(degree + 1)


def tanh_truncation_error(degree: int, radius: float) -> float:
    """Empirical bound on the tanh truncation error on ``[-radius, radius]``.

    The tanh series alternates for ``|z| < π/2``; we bound the error by
    the magnitude of the first omitted term, validated by sampling.
    """
    if radius >= math.pi / 2:
        raise ValidationError(
            f"tanh series diverges for radius >= pi/2, got {radius}"
        )
    series = tanh_taylor(degree + 4)
    worst = 0.0
    samples = 64
    for index in range(samples + 1):
        z = -radius + 2 * radius * index / samples
        worst = max(worst, abs(math.tanh(z) - float(series.to_float()(z))))
    return worst + 1e-12


def minimal_degree_for_exp(radius: float, tolerance: float, cap: int = 64) -> int:
    """Smallest truncation degree whose exp error bound is below tolerance."""
    if tolerance <= 0:
        raise ValidationError(f"tolerance must be positive, got {tolerance}")
    for degree in range(cap + 1):
        if exp_truncation_error(degree, radius) <= tolerance:
            return degree
    raise ValidationError(
        f"no degree <= {cap} achieves tolerance {tolerance} at radius {radius}"
    )
