"""Zero-dependency metrics registry (counters, gauges, histograms).

The registry holds named instruments, each of which keeps one value per
label set — the Prometheus data model, minus the client-library weight:

* :class:`Counter` — monotonically increasing (bytes sent, OT
  transfers, protocol runs, injected faults, retries);
* :class:`Gauge` — last-write-wins (remaining precompute bundles);
* :class:`Histogram` — fixed cumulative buckets (message sizes).

Exports: :meth:`MetricsRegistry.to_prometheus` emits the Prometheus
text exposition format (scrapeable when pasted behind any HTTP
endpoint); :meth:`MetricsRegistry.snapshot` returns a JSON-safe dict
for benchmark artifacts.

Like tracing, metrics are **off by default**: the module-level registry
is a :class:`NoopRegistry` whose instruments are a shared inert object,
so disabled instrumentation costs one attribute load per hook.  Enable
with :func:`enable_metrics`.

The registry and every instrument are **thread-safe**: the concurrent
trainer service increments shared counters from one thread per
connection.  Writes (``inc``/``set``/``observe``) serialize on a
per-instrument lock; reads (``value``/``total``/``count``/``sum``) stay
lock-free — under CPython's GIL a single ``dict.get`` is atomic, so a
reader sees either the pre- or post-increment value, never a torn one.
Instrument creation double-checks under the registry lock, with a
lock-free fast path for the common already-registered case.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ValidationError

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote, and line-feed are the three characters the
    format reserves inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape HELP text (backslash and line-feed only, per the format)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    rendered = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + rendered + "}"


class Counter:
    """A monotonically increasing value per label set.

    ``inc`` is a read-modify-write, so it serializes on the instrument
    lock; reads are lock-free (a point-in-time ``dict.get``).
    """

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Increase by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name} cannot decrease (got {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value for one label set (0.0 when unseen)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(list(self._values.values()))

    def items(self) -> Iterable[Tuple[LabelKey, float]]:
        return list(self._values.items())

    def _expose(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} {_format(value)}"
            for key, value in sorted(self._values.items())
        ]

    def _snapshot(self):
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge:
    """A last-write-wins value per label set."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def items(self) -> Iterable[Tuple[LabelKey, float]]:
        return list(self._values.items())

    def _expose(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} {_format(value)}"
            for key, value in sorted(self._values.items())
        ]

    def _snapshot(self):
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


#: Default histogram buckets, sized for wire-message byte counts
#: (64 B .. 1 MiB) — the registry's dominant histogram use.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
)

#: Buckets for wall-clock latencies in seconds (1 ms .. 60 s) — used by
#: the per-session duration histogram in the trainer service.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.5,
    2.0,
    10.0,
    60.0,
)


class Histogram:
    """Fixed cumulative buckets per label set (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.help_text = help_text
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValidationError(
                f"histogram {name} buckets must be a sorted non-empty sequence"
            )
        self.buckets = bounds
        # label set -> (per-bucket counts, sum, count)
        self._series: Dict[LabelKey, List[Any]] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * len(self.buckets), 0.0, 0]
                self._series[key] = series
            counts, _, _ = series
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            series[1] += value
            series[2] += 1

    def count(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return series[2] if series else 0

    def sum(self, **labels: Any) -> float:
        series = self._series.get(_label_key(labels))
        return series[1] if series else 0.0

    def bucket_counts(self, **labels: Any) -> Dict[float, int]:
        """Cumulative count per bucket bound for one label set."""
        series = self._series.get(_label_key(labels))
        counts = series[0] if series else [0] * len(self.buckets)
        return dict(zip(self.buckets, counts))

    def _merge(
        self,
        labels: Dict[str, Any],
        bucket_counts: Dict[float, int],
        total: float,
        count: int,
    ) -> None:
        """Add another series' cumulative state (cross-process merge)."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * len(self.buckets), 0.0, 0]
                self._series[key] = series
            for index, bound in enumerate(self.buckets):
                series[0][index] += int(bucket_counts.get(bound, 0))
            series[1] += total
            series[2] += count

    def _expose(self) -> List[str]:
        lines: List[str] = []
        for key, (counts, total, count) in sorted(self._series.items()):
            for bound, bucket_count in zip(self.buckets, counts):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, ('le', _format(bound)))} {bucket_count}"
                )
            lines.append(
                f"{self.name}_bucket{_render_labels(key, ('le', '+Inf'))} {count}"
            )
            lines.append(f"{self.name}_sum{_render_labels(key)} {_format(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines

    def _snapshot(self):
        return [
            {
                "labels": dict(key),
                "buckets": dict(zip((str(b) for b in self.buckets), counts)),
                "sum": total,
                "count": count,
            }
            for key, (counts, total, count) in sorted(self._series.items())
        ]


def _format(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _NoopInstrument:
    """Inert counter/gauge/histogram; one shared instance."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels: Any) -> int:
        return 0

    def sum(self, **labels: Any) -> float:
        return 0.0

    def items(self):
        return ()


NOOP_INSTRUMENT = _NoopInstrument()


class NoopRegistry:
    """Disabled registry: hands out the shared inert instrument."""

    __slots__ = ()

    enabled = False

    def counter(self, name: str, help_text: str = "") -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def gauge(self, name: str, help_text: str = "") -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def histogram(self, name: str, help_text: str = "", buckets=None) -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def to_prometheus(self) -> str:
        return ""

    def snapshot(self) -> Dict[str, Any]:
        return {}


NOOP_REGISTRY = NoopRegistry()


class MetricsRegistry:
    """Named instruments, created on first use and memoized.

    Thread-safe: creation double-checks under the registry lock and the
    steady-state lookup is one lock-free ``dict.get`` — concurrent
    serve threads pay no lock to *find* an instrument, only to mutate
    one (see the per-instrument locks above).
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if metric.kind != kind:
            raise ValidationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help_text), "counter")

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help_text), "gauge")

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        return self._get(
            name, lambda: Histogram(name, help_text, buckets), "histogram"
        )

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        with self._lock:
            self._metrics = {}

    # -- export ------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one block per metric)."""
        blocks: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            block = []
            if metric.help_text:
                block.append(f"# HELP {name} {_escape_help(metric.help_text)}")
            block.append(f"# TYPE {name} {metric.kind}")
            block.extend(metric._expose())
            blocks.append("\n".join(block))
        return "\n".join(blocks) + ("\n" if blocks else "")

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every instrument's current state."""
        return {
            name: {
                "kind": self._metrics[name].kind,
                "help": self._metrics[name].help_text,
                "series": self._metrics[name]._snapshot(),
            }
            for name in self.names()
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dump from another registry into this one.

        This is the cross-process aggregation path: engine workers run
        with their own in-process registry, snapshot it on drain, and
        the parent merges every worker's snapshot here.  Merge
        semantics follow the instrument kinds: counters *add*, gauges
        *last-write-win*, histograms add per-bucket counts, sums, and
        counts (bucket bounds must match any existing series).
        """
        for name, dump in snapshot.items():
            kind = dump.get("kind")
            help_text = dump.get("help", "")
            series = dump.get("series", [])
            if kind == "counter":
                counter = self.counter(name, help_text)
                for entry in series:
                    counter.inc(entry["value"], **entry.get("labels", {}))
            elif kind == "gauge":
                gauge = self.gauge(name, help_text)
                for entry in series:
                    gauge.set(entry["value"], **entry.get("labels", {}))
            elif kind == "histogram":
                for entry in series:
                    bounds = tuple(
                        sorted(float(b) for b in entry.get("buckets", {}))
                    )
                    histogram = self.histogram(
                        name, help_text, buckets=bounds or None
                    )
                    if tuple(histogram.buckets) != (bounds or histogram.buckets):
                        raise ValidationError(
                            f"histogram {name!r} bucket bounds disagree "
                            f"across merged snapshots"
                        )
                    histogram._merge(
                        entry.get("labels", {}),
                        {float(b): c for b, c in entry.get("buckets", {}).items()},
                        entry.get("sum", 0.0),
                        entry.get("count", 0),
                    )
            else:
                raise ValidationError(
                    f"cannot merge metric {name!r} of unknown kind {kind!r}"
                )


# -- module-level registry (no-op unless enabled) -------------------------

_REGISTRY = NOOP_REGISTRY


def get_metrics():
    """The active registry (a shared no-op unless metrics are enabled)."""
    return _REGISTRY


def set_metrics(registry) -> None:
    """Install a registry (pass :data:`NOOP_REGISTRY` to disable)."""
    global _REGISTRY
    _REGISTRY = registry


def enable_metrics() -> MetricsRegistry:
    """Install and return a fresh recording registry."""
    registry = MetricsRegistry()
    set_metrics(registry)
    return registry


def disable_metrics() -> None:
    """Restore the shared no-op registry."""
    set_metrics(NOOP_REGISTRY)
