"""Zero-dependency span tracer for protocol observability.

A :class:`Span` is a named, timed region of protocol execution carrying
the party that executed it, the protocol phase it belongs to, and
arbitrary key/value attributes (``M``, ``m``, bytes on wire, ...).
Spans nest: entering a span while another is active attaches it as a
child, so one classification run produces a tree

    ompe
    ├── ompe.request        (receiver)
    ├── ompe.params         (sender)
    ├── ompe.points         (receiver)
    ├── ompe.ot_setup       (sender)     ── ot.setup
    ├── ompe.ot_choice      (receiver)   ── ot.choose
    ├── ompe.ot_transfer    (sender)     ── ot.transfer
    └── ompe.finish         (receiver)   ── ot.retrieve, ompe.interpolate

The tree is exportable as JSON-lines (:meth:`Tracer.to_jsonl`) and as a
human-readable flame summary (:meth:`Tracer.flame`).

Tracing is **off by default**: the module-level tracer is a
:class:`NoopTracer` whose ``span`` returns a shared, inert context
manager, so instrumented code costs one attribute load and one call
per hook when disabled (see ``tests/obs/test_overhead.py`` for the
enforced budget).  Enable with :func:`enable_tracing`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

# -- span identity ---------------------------------------------------------
#
# Every recorded span carries a process-unique ``span_id`` so span trees
# from *different* processes (client/server/engine workers) can be
# stitched back together (:mod:`repro.obs.distributed`).  The id is a
# ``<pid-token>.<counter>`` string: the token re-derives itself after a
# fork (engine workers), and the counter increment is atomic under the
# GIL, so ids are unique across threads and processes without a lock.

_ID_COUNTER = itertools.count(1)
_TOKEN: Optional[str] = None
_TOKEN_PID: Optional[int] = None


def new_span_id() -> str:
    """A process-unique span id (fork-safe, lock-free)."""
    global _TOKEN, _TOKEN_PID
    pid = os.getpid()
    if pid != _TOKEN_PID:
        _TOKEN = f"{pid:x}-{os.urandom(3).hex()}"
        _TOKEN_PID = pid
    return f"{_TOKEN}.{next(_ID_COUNTER)}"


class Span:
    """One named, timed region with attributes and children."""

    __slots__ = (
        "name",
        "party",
        "phase",
        "attributes",
        "start_s",
        "end_s",
        "children",
        "span_id",
        "trace_id",
        "remote_parent",
        "_tracer",
    )

    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        party: Optional[str] = None,
        phase: Optional[str] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.party = party
        self.phase = phase
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.start_s: float = 0.0
        self.end_s: float = 0.0
        self.children: List["Span"] = []
        self.span_id: str = new_span_id()
        self.trace_id: Optional[str] = None
        self.remote_parent: Optional[str] = None

    # -- attributes --------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach key/value attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def add(self, key: str, amount: Any) -> None:
        """Accumulate a numeric attribute (e.g. bytes on wire)."""
        self.attributes[key] = self.attributes.get(key, 0) + amount

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Span":
        self.start_s = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.end_s = time.perf_counter()
        self._tracer._pop(self)
        return False

    @property
    def duration_s(self) -> float:
        """Wall-clock duration (0.0 while still open)."""
        if self.end_s == 0.0:
            return 0.0
        return self.end_s - self.start_s

    def walk(self, depth: int = 0) -> Iterator[tuple]:
        """Depth-first ``(span, depth)`` iteration over this subtree."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> List["Span"]:
        """All spans named ``name`` in this subtree, depth-first."""
        return [span for span, _ in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, party={self.party!r}, phase={self.phase!r}, "
            f"duration={self.duration_s * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Inert span: every operation is a no-op.

    A single shared instance backs the disabled tracer, so the hot path
    allocates nothing.
    """

    __slots__ = ()

    enabled = False
    name = ""
    party = None
    phase = None
    attributes: Dict[str, Any] = {}
    duration_s = 0.0
    children: List[Span] = []
    span_id = None
    trace_id = None
    remote_parent = None

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def add(self, key: str, amount: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Disabled tracer: hands out the shared inert span."""

    __slots__ = ()

    enabled = False

    def span(
        self,
        name: str,
        party: Optional[str] = None,
        phase: Optional[str] = None,
        **attributes: Any,
    ) -> _NoopSpan:
        return NOOP_SPAN

    def current(self) -> _NoopSpan:
        return NOOP_SPAN


NOOP_TRACER = NoopTracer()


class Tracer:
    """Collects spans into trees.

    Thread-safe: the open-span stack is **per thread**, so spans nest
    within the thread that opened them and concurrent workloads (one
    serve thread per trainer-service connection) each grow their own
    root trees inside the shared tracer — appended under a lock, so no
    span is ever lost.  A span must be exited on the thread that
    entered it.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._local = threading.local()
        self._roots_lock = threading.Lock()
        self._open_stacks: Dict[int, List[Span]] = {}

    @property
    def _stack(self) -> List[Span]:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._roots_lock:
                self._open_stacks[threading.get_ident()] = stack
        return stack

    # -- recording ---------------------------------------------------------

    def span(
        self,
        name: str,
        party: Optional[str] = None,
        phase: Optional[str] = None,
        **attributes: Any,
    ) -> Span:
        """Create a span; it starts when entered as a context manager."""
        return Span(self, name, party=party, phase=phase, attributes=attributes)

    def current(self):
        """The innermost open span on this thread (no-op span when none)."""
        stack = self._stack
        return stack[-1] if stack else NOOP_SPAN

    def _push(self, span: Span) -> None:
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        else:
            with self._roots_lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()

    def open_spans(self) -> Dict[int, Span]:
        """Innermost *currently open* span per thread id.

        Live introspection for ``admin/health``: while a serve thread is
        inside a protocol phase, this reports which span it is in right
        now.  Best-effort — stacks mutate concurrently — but never
        raises and never blocks the recording threads.
        """
        with self._roots_lock:
            stacks = list(self._open_stacks.items())
        out: Dict[int, Span] = {}
        for ident, stack in stacks:
            if stack:
                out[ident] = stack[-1]
        return out

    def reset(self) -> None:
        """Drop all recorded spans (and every thread's open-span stack)."""
        with self._roots_lock:
            self.roots = []
            self._local = threading.local()
            self._open_stacks = {}

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's root trees into this one, losslessly.

        The per-connection/per-worker aggregation path: a workload that
        recorded into its own tracer folds its completed span trees into
        a parent here; every root (and therefore every descendant)
        carries over.  Roots are re-sorted by ``(start time, span id)``
        so the merged order is deterministic regardless of which worker
        merged first (concurrent drains arrive in racy order).
        """
        with other._roots_lock:
            adopted = list(other.roots)
        with self._roots_lock:
            self.roots.extend(adopted)
            self.roots.sort(key=lambda span: (span.start_s, span.span_id))

    # -- queries -----------------------------------------------------------

    def spans(self) -> Iterator[tuple]:
        """Depth-first ``(span, depth)`` over every recorded tree."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        """All recorded spans with the given name."""
        return [span for span, _ in self.spans() if span.name == name]

    def phases(self) -> List[str]:
        """Distinct phase labels seen, in first-seen order."""
        seen: List[str] = []
        for span, _ in self.spans():
            if span.phase is not None and span.phase not in seen:
                seen.append(span.phase)
        return seen

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per span, depth-first, parents before children."""
        with self._roots_lock:
            roots = list(self.roots)
        return spans_to_jsonl(roots)

    def flame(self) -> str:
        """Human-readable indented tree with durations and attributes."""
        lines: List[str] = []
        for span, depth in self.spans():
            indent = "  " * depth
            label = f"{indent}{span.name}"
            party = f" [{span.party}]" if span.party else ""
            attrs = ""
            if span.attributes:
                rendered = " ".join(
                    f"{key}={value}" for key, value in sorted(span.attributes.items())
                )
                attrs = f"  {{{rendered}}}"
            lines.append(
                f"{label:<34s}{party:<8s} {span.duration_s * 1e3:9.3f} ms{attrs}"
            )
        return "\n".join(lines)


def spans_to_jsonl(roots: List[Span]) -> str:
    """Serialise span trees as JSON-lines, parents before children.

    Each record carries both a *local* integer ``id``/``parent`` pair
    (compact, tree-internal) and the globally unique ``span_id`` /
    ``trace_id`` / ``remote_parent`` identity fields that
    :mod:`repro.obs.distributed` uses to stitch fragments from
    different processes into one tree.
    """
    lines = []
    ids: Dict[int, int] = {}
    parent_of: Dict[int, Optional[int]] = {}
    ordered: List[Span] = []
    for root in roots:
        stack: List[tuple] = [(root, None)]
        while stack:
            span, parent_id = stack.pop()
            local_id = len(ids) + 1
            ids[id(span)] = local_id
            parent_of[local_id] = parent_id
            ordered.append(span)
            stack.extend((child, local_id) for child in reversed(span.children))
    for span in ordered:
        local_id = ids[id(span)]
        lines.append(
            json.dumps(
                {
                    "id": local_id,
                    "parent": parent_of[local_id],
                    "span_id": span.span_id,
                    "trace_id": span.trace_id,
                    "remote_parent": span.remote_parent,
                    "name": span.name,
                    "party": span.party,
                    "phase": span.phase,
                    "start_s": span.start_s,
                    "duration_s": span.duration_s,
                    "attributes": _jsonable(span.attributes),
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines)


def _jsonable(attributes: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars."""
    safe: Dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        else:
            safe[key] = str(value)
    return safe


# -- module-level tracer (no-op unless enabled) ---------------------------

_TRACER = NOOP_TRACER


def get_tracer():
    """The active tracer (a shared no-op unless tracing is enabled)."""
    return _TRACER


def set_tracer(tracer) -> None:
    """Install a tracer (pass :data:`NOOP_TRACER` to disable)."""
    global _TRACER
    _TRACER = tracer


def enable_tracing() -> Tracer:
    """Install and return a fresh recording tracer."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the shared no-op tracer."""
    set_tracer(NOOP_TRACER)
