"""Cost-model drift detection.

:mod:`repro.evaluation.costmodel` predicts the wire bytes of every
protocol phase in closed form; this module compares those predictions
against *observed* bytes — from a live metrics registry
(``repro_phase_bytes_total``) or a recorded transcript — and flags any
phase whose measured traffic diverges beyond tolerance.

Why it matters: the cost model is calibrated against today's
variable-length rational encodings.  A serialization change, an OT
framing regression, or a protocol edit that silently inflates a message
shows up here first, as a drifted phase — before it shows up as a
bandwidth bill.

Tolerances: the model documents ~25% accuracy on totals (the rational
encodings are variable-length).  Per-phase errors are larger for the
tiny fixed-size phases (request/params are a handful of bytes), so the
check uses a relative tolerance *plus* an absolute floor under which a
phase can never be flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.ompe.config import OMPEConfig
from repro.evaluation.costmodel import (
    CostBreakdown,
    predict_classification_bytes,
)

#: Default relative tolerance: the cost model's documented ~25%
#: accuracy plus headroom for the variable-length integer encodings.
DEFAULT_TOLERANCE = 0.35

#: Phases whose predicted size is below this many bytes are compared
#: with absolute slack instead of relative (a 7-byte request message
#: that measures 9 bytes is a 29% "drift" nobody should page for).
ABSOLUTE_FLOOR_BYTES = 64


@dataclass(frozen=True)
class PhaseDrift:
    """Observed-versus-predicted bytes for one protocol phase."""

    phase: str
    observed_bytes: int
    predicted_bytes: int
    tolerance: float
    drifted: bool

    @property
    def ratio(self) -> float:
        """``observed / predicted`` (``inf`` when nothing was predicted)."""
        if self.predicted_bytes == 0:
            return float("inf") if self.observed_bytes else 1.0
        return self.observed_bytes / self.predicted_bytes

    @property
    def relative_error(self) -> float:
        if self.predicted_bytes == 0:
            return float("inf") if self.observed_bytes else 0.0
        return abs(self.observed_bytes - self.predicted_bytes) / self.predicted_bytes


@dataclass(frozen=True)
class DriftReport:
    """Per-phase drift verdicts for one (class of) protocol run."""

    phases: Tuple[PhaseDrift, ...]
    tolerance: float
    runs: int = 1

    @property
    def ok(self) -> bool:
        """True when no phase drifted beyond tolerance."""
        return not any(phase.drifted for phase in self.phases)

    @property
    def drifted_phases(self) -> Tuple[PhaseDrift, ...]:
        return tuple(phase for phase in self.phases if phase.drifted)

    @property
    def total_observed(self) -> int:
        return sum(phase.observed_bytes for phase in self.phases)

    @property
    def total_predicted(self) -> int:
        return sum(phase.predicted_bytes for phase in self.phases)

    def to_text(self) -> str:
        """Aligned human-readable drift table."""
        lines = [
            f"{'phase':14s} {'observed':>10s} {'predicted':>10s} "
            f"{'ratio':>7s}  verdict"
        ]
        for phase in self.phases:
            verdict = "DRIFT" if phase.drifted else "ok"
            ratio = (
                f"{phase.ratio:7.2f}" if phase.ratio != float("inf") else "    inf"
            )
            lines.append(
                f"{phase.phase:14s} {phase.observed_bytes:10d} "
                f"{phase.predicted_bytes:10d} {ratio}  {verdict}"
            )
        total_ratio = (
            self.total_observed / self.total_predicted
            if self.total_predicted
            else float("inf")
        )
        lines.append(
            f"{'total':14s} {self.total_observed:10d} "
            f"{self.total_predicted:10d} {total_ratio:7.2f}  "
            f"(tolerance ±{self.tolerance:.0%}"
            + (f", averaged over {self.runs} runs)" if self.runs != 1 else ")")
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary for harness artifacts."""
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "runs": self.runs,
            "total_observed_bytes": self.total_observed,
            "total_predicted_bytes": self.total_predicted,
            "phases": [
                {
                    "phase": phase.phase,
                    "observed_bytes": phase.observed_bytes,
                    "predicted_bytes": phase.predicted_bytes,
                    "drifted": phase.drifted,
                }
                for phase in self.phases
            ],
        }


def compare_to_prediction(
    observed_by_phase: Mapping[str, float],
    predicted: CostBreakdown,
    tolerance: float = DEFAULT_TOLERANCE,
    runs: int = 1,
) -> DriftReport:
    """Compare observed per-phase bytes against a predicted breakdown.

    ``observed_by_phase`` maps canonical phase labels (see
    :func:`repro.net.transcript.phase_of`) to bytes summed over
    ``runs`` protocol executions; observations are averaged per run
    before comparison.  Phases observed but never predicted (unknown
    labels) are always flagged — the model does not know about them.
    """
    predicted_by_phase = predicted.by_phase()
    verdicts = []
    for phase, predicted_bytes in predicted_by_phase.items():
        observed = int(round(observed_by_phase.get(phase, 0) / runs))
        if predicted_bytes < ABSOLUTE_FLOOR_BYTES:
            drifted = abs(observed - predicted_bytes) > ABSOLUTE_FLOOR_BYTES
        else:
            drifted = (
                abs(observed - predicted_bytes) / predicted_bytes > tolerance
            )
        verdicts.append(
            PhaseDrift(
                phase=phase,
                observed_bytes=observed,
                predicted_bytes=predicted_bytes,
                tolerance=tolerance,
                drifted=drifted,
            )
        )
    for phase in sorted(observed_by_phase):
        if phase not in predicted_by_phase:
            observed = int(round(observed_by_phase[phase] / runs))
            verdicts.append(
                PhaseDrift(
                    phase=phase,
                    observed_bytes=observed,
                    predicted_bytes=0,
                    tolerance=tolerance,
                    drifted=observed > ABSOLUTE_FLOOR_BYTES,
                )
            )
    return DriftReport(phases=tuple(verdicts), tolerance=tolerance, runs=runs)


def classification_drift(
    observed_by_phase: Mapping[str, float],
    config: OMPEConfig,
    dimension: int,
    function_degree: int = 1,
    tolerance: float = DEFAULT_TOLERANCE,
    runs: int = 1,
) -> DriftReport:
    """Drift of observed classification traffic against the cost model."""
    predicted = predict_classification_bytes(config, dimension, function_degree)
    return compare_to_prediction(
        observed_by_phase, predicted, tolerance=tolerance, runs=runs
    )


def drift_from_transcript(
    transcript,
    config: OMPEConfig,
    dimension: int,
    function_degree: int = 1,
    tolerance: float = DEFAULT_TOLERANCE,
) -> DriftReport:
    """Drift of one recorded protocol run against the cost model."""
    return classification_drift(
        transcript.bytes_by_phase(),
        config,
        dimension,
        function_degree=function_degree,
        tolerance=tolerance,
    )


def drift_from_metrics(
    registry,
    config: OMPEConfig,
    dimension: int,
    function_degree: int = 1,
    tolerance: float = DEFAULT_TOLERANCE,
    runs: Optional[int] = None,
) -> DriftReport:
    """Drift of live metrics against the cost model.

    Reads the ``repro_phase_bytes_total`` counter that
    :meth:`repro.net.channel.Channel.send` maintains.  ``runs``
    defaults to the ``repro_ompe_runs_total`` counter so multi-query
    sessions are compared per run.
    """
    phase_counter = registry.counter("repro_phase_bytes_total")
    observed: Dict[str, float] = {}
    for labels, value in phase_counter.items():
        label_map = dict(labels)
        phase = label_map.get("phase", "unknown")
        observed[phase] = observed.get(phase, 0.0) + value
    if runs is None:
        runs = int(registry.counter("repro_ompe_runs_total").total()) or 1
    return classification_drift(
        observed,
        config,
        dimension,
        function_degree=function_degree,
        tolerance=tolerance,
        runs=runs,
    )


def drift_from_service_metrics(
    registry,
    config: OMPEConfig,
    dimension: int,
    function_degree: int = 1,
    tolerance: float = DEFAULT_TOLERANCE,
    kind: str = "classify",
    runs: Optional[int] = None,
) -> DriftReport:
    """Drift of the trainer service's per-session telemetry.

    Reads ``repro_service_phase_bytes_total`` — the per-phase counter
    the server reconciles from every session transcript's
    ``bytes_by_phase()`` — restricted to sessions of the given
    ``kind``, and compares against the analytic cost model.  Because
    the server-side :class:`~repro.net.wire.WireChannel` transcript
    records both directions, those numbers are directly comparable to
    the single-process ``repro_phase_bytes_total`` path in
    :func:`drift_from_metrics`.  ``runs`` defaults to the
    ``repro_service_sessions_total`` count for ``kind``.
    """
    phase_counter = registry.counter("repro_service_phase_bytes_total")
    observed: Dict[str, float] = {}
    for labels, value in phase_counter.items():
        label_map = dict(labels)
        if label_map.get("kind") != kind:
            continue
        phase = label_map.get("phase", "unknown")
        observed[phase] = observed.get(phase, 0.0) + value
    if runs is None:
        sessions = registry.counter("repro_service_sessions_total")
        runs = int(sessions.value(kind=kind)) or 1
    return classification_drift(
        observed,
        config,
        dimension,
        function_degree=function_degree,
        tolerance=tolerance,
        runs=runs,
    )
