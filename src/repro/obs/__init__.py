"""repro.obs — end-to-end protocol observability.

Three pieces, all zero-dependency:

* :mod:`repro.obs.tracing` — context-manager spans (name, party, phase,
  duration, attributes) nested into trees, exportable as JSON-lines and
  a flame summary;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms, exportable in Prometheus text format and JSON;
* :mod:`repro.obs.drift` — compares observed per-phase wire bytes
  against the closed-form cost model
  (:func:`repro.evaluation.costmodel.predict_classification_bytes`)
  and flags divergence beyond tolerance;
* :mod:`repro.obs.distributed` — cross-process trace propagation
  (:class:`~repro.obs.distributed.TraceContext` rides in control frames
  and job envelopes) and :func:`~repro.obs.distributed.stitch`, which
  joins per-process span fragments into one tree.

Both the tracer and the registry are process-global and **no-op by
default**; the instrumentation hooks threaded through ``repro.net``,
``repro.crypto.ot``, and ``repro.core`` cost one attribute load per
hook when disabled.  Typical use::

    from repro import obs

    with obs.observed() as (tracer, registry):
        outcome = classify_linear(model, sample, seed=7)
    print(tracer.flame())
    print(registry.to_prometheus())

``obs.drift`` is intentionally *not* imported here: it depends on the
cost model, which sits above the instrumented layers; importing it
eagerly would create an import cycle through ``repro.net``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Tuple

from repro.obs.distributed import (
    TraceContext,
    adopt_context,
    current_trace_context,
    stitch,
)
from repro.obs.metrics import (
    NOOP_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from repro.obs.tracing import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    spans_to_jsonl,
)

__all__ = [
    "TraceContext",
    "adopt_context",
    "current_trace_context",
    "stitch",
    "spans_to_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopRegistry",
    "NoopTracer",
    "NOOP_REGISTRY",
    "NOOP_TRACER",
    "Span",
    "Tracer",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "get_metrics",
    "get_tracer",
    "observed",
    "record_fault",
    "set_metrics",
    "set_tracer",
]


def record_fault(
    kind: str,
    counter: str = "repro_faults_injected_total",
    description: str = "Injected channel faults, by kind",
) -> None:
    """Bump a fault counter (labelled by ``kind``) and annotate the
    current span with ``faults.<kind>``.

    Shared by the fault-injecting channel wrappers
    (:mod:`repro.net.faults`) and the real TCP transport
    (:mod:`repro.net.wire`), which records *observed* faults — peer
    disconnects, timeouts, oversized frames — under its own counter.
    """
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter(counter, description).inc(kind=kind)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.current().add(f"faults.{kind}", 1)


@contextmanager
def observed() -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Enable tracing and metrics for a region, restoring the previous
    tracer/registry afterwards.  Yields ``(tracer, registry)``."""
    previous_tracer = get_tracer()
    previous_registry = get_metrics()
    tracer = Tracer()
    registry = MetricsRegistry()
    set_tracer(tracer)
    set_metrics(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_registry)
