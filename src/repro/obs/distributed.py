"""Cross-process trace propagation and stitching.

One protocol run may touch several processes: the client that opened
the session, the trainer-server thread that served it, and the engine
worker processes that executed jobs.  Each process records spans into
its own tracer, so a run yields *fragments* — span trees that are
complete locally but disconnected globally.

This module joins them:

* :class:`TraceContext` — the propagation envelope (trace id + parent
  span id + string baggage).  It is a registered wire payload, carried
  inside ``session/open`` control frames and engine job envelopes.
* :func:`current_trace_context` — capture the innermost open span as a
  context to hand to a remote party (``None`` when tracing is off, so
  the disabled path stays one attribute load + one check).
* :func:`adopt_context` — mark a local span as the remote continuation
  of the context's parent span.
* :func:`stitch` — given jsonl fragments (see
  :func:`repro.obs.tracing.spans_to_jsonl`), reattach every fragment
  root under the remote parent span it names, across fragments.  Roots
  whose remote parent is missing are kept and flagged ``orphan`` —
  never dropped.

Span identity survives serialization: every span carries a
process-unique ``span_id`` and fragments reference each other only
through those ids, so stitching works regardless of which transport
(TCP or in-memory) carried the context — the conformance test in
``tests/integration/test_distributed_trace.py`` pins that the stitched
tree *structure* is transport-independent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ValidationError
from repro.obs.tracing import get_tracer
from repro.utils.serialization import register_payload_type

#: Bounds on hostile/accidental bloat in propagated contexts.
MAX_BAGGAGE_ITEMS = 16
MAX_BAGGAGE_CHARS = 256
MAX_ID_CHARS = 128


def _require_id(name: str, value: Any) -> None:
    if not isinstance(value, str) or not value or len(value) > MAX_ID_CHARS:
        raise ValidationError(
            f"trace context {name} must be a non-empty string "
            f"of at most {MAX_ID_CHARS} characters"
        )


@register_payload_type("obs/trace-context")
@dataclass(frozen=True)
class TraceContext:
    """Propagation envelope linking a remote span under a local one."""

    trace_id: str
    parent_span_id: str
    baggage: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_id("trace_id", self.trace_id)
        _require_id("parent_span_id", self.parent_span_id)
        if not isinstance(self.baggage, dict) or len(self.baggage) > MAX_BAGGAGE_ITEMS:
            raise ValidationError(
                f"trace context baggage must be a dict of at most "
                f"{MAX_BAGGAGE_ITEMS} items"
            )
        for key, value in self.baggage.items():
            if (
                not isinstance(key, str)
                or not isinstance(value, str)
                or len(key) > MAX_BAGGAGE_CHARS
                or len(value) > MAX_BAGGAGE_CHARS
            ):
                raise ValidationError(
                    "trace context baggage entries must be short strings"
                )


def current_trace_context(**baggage: str) -> Optional[TraceContext]:
    """The innermost open span as a :class:`TraceContext`, else ``None``.

    ``None`` when tracing is disabled or no span is open — callers ship
    the context only when there is something to attach to, so the wire
    format is unchanged for untraced runs.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    span = tracer.current()
    if not span.enabled:
        return None
    if span.trace_id is None:
        span.trace_id = span.span_id
    return TraceContext(
        trace_id=span.trace_id,
        parent_span_id=span.span_id,
        baggage=dict(baggage),
    )


def adopt_context(span: Any, context: Optional[TraceContext]) -> None:
    """Mark ``span`` as the remote continuation of ``context``.

    No-op for ``None`` contexts and no-op spans, so call sites need no
    conditionals.  Baggage lands in the span's attributes.
    """
    if context is None or not getattr(span, "enabled", False):
        return
    span.trace_id = context.trace_id
    span.remote_parent = context.parent_span_id
    if context.baggage:
        span.set(**context.baggage)


# -- admin channel payloads ------------------------------------------------


@register_payload_type("obs/admin-health")
@dataclass(frozen=True)
class AdminHealth:
    """``admin/health`` response: live server occupancy and sessions."""

    active_connections: int
    max_connections: int
    sessions_served: int
    stopping: bool
    draining: bool
    sessions: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        for name in ("active_connections", "max_connections", "sessions_served"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValidationError(f"admin health {name} must be a non-negative int")
        if not isinstance(self.stopping, bool) or not isinstance(self.draining, bool):
            raise ValidationError("admin health flags must be booleans")
        sessions = tuple(self.sessions) if self.sessions else ()
        if any(not isinstance(entry, dict) for entry in sessions):
            raise ValidationError("admin health sessions must be dicts")
        object.__setattr__(self, "sessions", sessions)


@register_payload_type("obs/admin-metrics")
@dataclass(frozen=True)
class AdminMetricsDump:
    """``admin/metrics`` response: the live registry, two renderings.

    ``prometheus`` is the text exposition format; ``snapshot_json`` is
    the JSON snapshot (the same shape
    :meth:`repro.obs.MetricsRegistry.merge_snapshot` accepts).
    """

    enabled: bool
    prometheus: str
    snapshot_json: str

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ValidationError("admin metrics enabled must be a boolean")
        if not isinstance(self.prometheus, str) or not isinstance(
            self.snapshot_json, str
        ):
            raise ValidationError("admin metrics dumps must be strings")

    def snapshot(self) -> Dict[str, Any]:
        return json.loads(self.snapshot_json) if self.snapshot_json else {}


@register_payload_type("obs/admin-trace")
@dataclass(frozen=True)
class AdminTraceDump:
    """``admin/trace`` response: completed sessions' span fragments.

    Each entry is ``{"session", "kind", "error", "jsonl"}`` where
    ``jsonl`` is a :func:`repro.obs.tracing.spans_to_jsonl` fragment of
    that session's server-side span tree.
    """

    sessions: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        sessions = tuple(self.sessions) if self.sessions else ()
        for entry in sessions:
            if not isinstance(entry, dict) or not isinstance(
                entry.get("jsonl", ""), str
            ):
                raise ValidationError("admin trace sessions must be jsonl dicts")
        object.__setattr__(self, "sessions", sessions)


# -- fragment stitching ----------------------------------------------------


class StitchedSpan:
    """One span rebuilt from a jsonl record, linked across fragments."""

    __slots__ = (
        "span_id",
        "remote_parent",
        "name",
        "party",
        "phase",
        "start_s",
        "duration_s",
        "attributes",
        "children",
        "origin",
        "orphan",
    )

    def __init__(self, record: Dict[str, Any], origin: str, local_id: Any) -> None:
        span_id = record.get("span_id")
        if not isinstance(span_id, str) or not span_id:
            # Fragments from pre-identity exports still stitch locally.
            span_id = f"{origin}:{local_id}"
        self.span_id: str = span_id
        self.remote_parent: Optional[str] = record.get("remote_parent")
        self.name: str = record.get("name", "")
        self.party = record.get("party")
        self.phase = record.get("phase")
        self.start_s: float = float(record.get("start_s", 0.0))
        self.duration_s: float = float(record.get("duration_s", 0.0))
        self.attributes: Dict[str, Any] = dict(record.get("attributes") or {})
        self.children: List["StitchedSpan"] = []
        self.origin = origin
        self.orphan = False

    def walk(self, depth: int = 0):
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> List["StitchedSpan"]:
        return [span for span, _ in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StitchedSpan({self.name!r}, origin={self.origin!r}, "
            f"children={len(self.children)}, orphan={self.orphan})"
        )


def _parse_fragment(origin: str, jsonl: str) -> List[StitchedSpan]:
    """Rebuild one fragment's local trees; returns the fragment roots."""
    nodes: Dict[Any, StitchedSpan] = {}
    parents: Dict[Any, Any] = {}
    order: List[Any] = []
    for line in jsonl.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValidationError(f"malformed trace fragment line: {error}")
        if not isinstance(record, dict) or "id" not in record:
            raise ValidationError("trace fragment records must be span objects")
        local_id = record["id"]
        nodes[local_id] = StitchedSpan(record, origin, local_id)
        parents[local_id] = record.get("parent")
        order.append(local_id)
    roots: List[StitchedSpan] = []
    for local_id in order:
        parent_id = parents[local_id]
        node = nodes[local_id]
        if parent_id is not None and parent_id in nodes:
            nodes[parent_id].children.append(node)
        else:
            roots.append(node)
    return roots


def stitch(fragments: Iterable[Tuple[str, str]]) -> List[StitchedSpan]:
    """Join jsonl fragments from several processes into unified trees.

    ``fragments`` is ``(origin, jsonl)`` pairs (origin is a display
    label: ``"client"``, ``"server"``, ``"worker-3"``...).  Every
    fragment root that names a ``remote_parent`` present in *any*
    fragment is attached under that span; the rest stay top-level,
    flagged ``orphan=True`` when they wanted a parent that is missing.
    Children and top-level roots are ordered by ``(start_s, span_id)``
    so the result is deterministic and transport-independent.
    """
    all_roots: List[StitchedSpan] = []
    by_span_id: Dict[str, StitchedSpan] = {}
    for origin, jsonl in fragments:
        roots = _parse_fragment(origin, jsonl)
        all_roots.extend(roots)
        for root in roots:
            for span, _ in root.walk():
                by_span_id[span.span_id] = span

    top: List[StitchedSpan] = []
    for root in all_roots:
        parent_id = root.remote_parent
        if parent_id is None:
            top.append(root)
            continue
        parent = by_span_id.get(parent_id)
        in_own_subtree = parent is not None and any(
            span is parent for span, _ in root.walk()
        )
        if parent is None or in_own_subtree:
            # Missing parent, or a hostile fragment that would create a
            # cycle: keep the tree visible rather than dropping it.
            root.orphan = True
            top.append(root)
        else:
            parent.children.append(root)

    def sort_key(span: StitchedSpan):
        return (span.start_s, span.span_id)

    for span_node in by_span_id.values():
        span_node.children.sort(key=sort_key)
    top.sort(key=sort_key)
    return top


def structure(roots: List[StitchedSpan]) -> Tuple:
    """The stitched trees as nested ``(name, children)`` tuples.

    Strips timings, origins, and attributes — exactly the shape the
    cross-transport conformance test compares.
    """

    def one(span: StitchedSpan) -> Tuple:
        return (span.name, tuple(one(child) for child in span.children))

    return tuple(one(root) for root in roots)


def render(roots: List[StitchedSpan]) -> str:
    """Human-readable indented view of stitched trees."""
    lines: List[str] = []
    for root in roots:
        for span, depth in root.walk():
            indent = "  " * depth
            label = f"{indent}{span.name}"
            origin = f" <{span.origin}>"
            flags = " [ORPHAN]" if span.orphan else ""
            error = span.attributes.get("error")
            suffix = f"  !! {error}" if error else ""
            lines.append(
                f"{label:<40s}{origin:<12s} "
                f"{span.duration_s * 1e3:9.3f} ms{flags}{suffix}"
            )
    return "\n".join(lines)
