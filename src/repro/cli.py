"""Command-line interface for the repro library.

Usage (after ``pip install -e .``)::

    python -m repro.cli datasets                     # list dataset analogs
    python -m repro.cli generate breast-cancer d.libsvm
    python -m repro.cli train d.libsvm model.json --kernel poly --degree 3
    python -m repro.cli classify model.json d.libsvm --limit 5 --private
    python -m repro.cli similarity model_a.json model_b.json --private
    python -m repro.cli experiment table1            # regenerate a table/figure
    python -m repro.cli experiment --all
    python -m repro.cli observe --runs 3             # traced run + drift check
    python -m repro.cli serve model.json --port 9000 # host a trainer over TCP
    python -m repro.cli serve --models-dir left/ --port 9000
    python -m repro.cli remote-classify d.libsvm --connect 127.0.0.1:9000
    python -m repro.cli remote-similarity model_b.json --connect 127.0.0.1:9000
    python -m repro.cli link --left-dir left/ --right-dir right/ \
        --store store/ --backend engine --workers 4 --threshold 0.8
    python -m repro.cli serve-bench --jobs 16 --workers 1,2,4
    python -m repro.cli top --connect 127.0.0.1:9000 # live server view
    python -m repro.cli trace --connect 127.0.0.1:9000 --session s1

The CLI is a thin layer over the public API; each subcommand maps to
one documented library call, so it doubles as executable documentation.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

import numpy as np

from repro import obs
from repro.core.classification import classify_linear, private_classify
from repro.core.ompe import OMPEConfig
from repro.core.similarity import (
    MetricParams,
    evaluate_similarity_plain,
    evaluate_similarity_private,
    evaluate_similarity_private_nonlinear,
)
from repro.evaluation import available_experiments, run_experiment
from repro.exceptions import ReproError
from repro.ml.datasets import (
    available_datasets,
    load_dataset,
    read_libsvm,
    write_libsvm,
)
from repro.ml.datasets.registry import get_spec
from repro.ml.svm import accuracy, load_model, save_model, train_svm


def _cmd_datasets(_: argparse.Namespace) -> int:
    print(f"{'name':14s} {'dim':>4s} {'paper test':>10s} {'paper lin':>9s} {'paper poly':>10s}")
    for name in available_datasets():
        spec = get_spec(name)
        print(
            f"{name:14s} {spec.dimension:4d} {spec.paper_test_size:10d} "
            f"{spec.paper_linear_accuracy:9.4f} {spec.paper_polynomial_accuracy:10.4f}"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset, seed=args.seed)
    X = np.vstack([data.X_train, data.X_test])
    y = np.concatenate([data.y_train, data.y_test])
    write_libsvm(args.output, X, y)
    print(
        f"wrote {X.shape[0]} rows x {X.shape[1]} features "
        f"({data.train_size} train + {data.test_size} test) to {args.output}"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    X, y = read_libsvm(args.data)
    kernel_params = {}
    if args.kernel in ("poly", "polynomial"):
        kernel_params = {
            "degree": args.degree,
            "a0": args.a0 if args.a0 is not None else 1.0 / X.shape[1],
            "b0": args.b0,
        }
    elif args.kernel == "rbf":
        kernel_params = {"gamma": args.gamma}
    model = train_svm(X, y, kernel=args.kernel, C=args.C, **kernel_params)
    save_model(model, args.model)
    print(
        f"trained {args.kernel} model on {X.shape[0]} rows: "
        f"{model.n_support} support vectors, "
        f"training accuracy {accuracy(model.predict(X), y):.1%}; "
        f"saved to {args.model}"
    )
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    X, y = read_libsvm(args.data, dimension=model.dimension)
    limit = min(args.limit, X.shape[0]) if args.limit else X.shape[0]
    config = OMPEConfig(security_degree=args.security_degree)
    correct = 0
    for index in range(limit):
        if args.private:
            outcome = private_classify(
                model, X[index], config=config, seed=args.seed + index
            )
            label = outcome.label
            extra = f"  [{outcome.total_bytes} B]"
        else:
            label = float(model.predict(X[index : index + 1])[0])
            extra = ""
        marker = "ok " if label == y[index] else "ERR"
        correct += label == y[index]
        print(f"sample {index}: predicted {label:+.0f}, actual {y[index]:+.0f} {marker}{extra}")
    print(f"accuracy: {correct / limit:.1%} over {limit} samples "
          f"({'private protocol' if args.private else 'plain'})")
    return 0


def _print_similarity_outcome(outcome, transport: str) -> None:
    """Print what a (possibly mitigated) similarity outcome releases."""
    from repro.core.privacy.leakage import leakage_score
    from repro.core.similarity.policy import MitigatedSimilarityOutcome

    cost = f"{outcome.total_bytes} B over {outcome.total_rounds} rounds"
    if not isinstance(outcome, MitigatedSimilarityOutcome):
        print(f"similarity T = {outcome.t:.6g} "
              f"(privacy-preserving {transport}; {cost})")
        print("smaller T = more similar models")
        return
    policy = outcome.policy
    released = outcome.released
    if policy.mode == "raw":
        print(f"similarity T = {outcome.t:.6g} "
              f"(privacy-preserving {transport}; policy raw; {cost})")
        print("smaller T = more similar models")
    elif policy.mode == "threshold":
        ((_, bit),) = released.entries
        verdict = "MATCH" if bit else "no match"
        print(f"similarity: {verdict} at threshold {policy.threshold:g} "
              f"(policy {policy.label}; score withheld; {cost})")
    elif policy.mode == "top-k":
        scores = ", ".join(f"{score:.6g}" for score in released.revealed_scores)
        print(f"similarity top-{policy.k} scores: [{scores}] "
              f"(policy {policy.label}; {cost})")
    else:
        print(f"similarity released {released.count} masked value(s) "
              f"(policy permuted; magnitudes and linkage withheld; {cost})")
    score = leakage_score(policy, released.count)
    print(f"leakage score: {score.total:.3f} "
          + " ".join(f"{name}={value:.3f}"
                     for name, value in score.subscores().items()))


def _cmd_similarity(args: argparse.Namespace) -> int:
    model_a = load_model(args.model_a)
    model_b = load_model(args.model_b)
    params = MetricParams()
    policy = None
    if getattr(args, "output_policy", None):
        if not args.private:
            print("--output-policy requires --private (plain evaluation "
                  "has no protocol output to police)", file=sys.stderr)
            return 2
        from repro.core.similarity.policy import parse_output_policy

        policy = parse_output_policy(args.output_policy)
    if args.private:
        if model_a.is_linear():
            outcome = evaluate_similarity_private(
                model_a, model_b, params,
                config=OMPEConfig(security_degree=args.security_degree),
                seed=args.seed,
                policy=policy,
            )
        else:
            outcome = evaluate_similarity_private_nonlinear(
                model_a, model_b, params,
                config=OMPEConfig(security_degree=args.security_degree),
                seed=args.seed,
                policy=policy,
            )
        _print_similarity_outcome(outcome, "in-process")
    else:
        result = evaluate_similarity_plain(model_a, model_b, params)
        print(f"similarity T = {result.t:.6g} "
              f"(plain; L = {result.centroid_distance:.4g}, "
              f"angle = {result.angle_degrees:.2f} deg)")
        print("smaller T = more similar models")
    return 0


def _cmd_observe(args: argparse.Namespace) -> int:
    from repro.math.groups import fast_group
    from repro.ml.svm import make_linear_model
    from repro.obs import drift
    from repro.utils.rng import ReproRandom

    rng = ReproRandom(args.seed)
    model = make_linear_model(
        [rng.uniform(-2.0, 2.0) for _ in range(args.dimension)],
        rng.uniform(-1.0, 1.0),
    )
    config = OMPEConfig(
        security_degree=args.security_degree,
        cover_expansion=args.cover_expansion,
        group=fast_group(),
    )
    with obs.observed() as (tracer, registry):
        for index in range(args.runs):
            classify_linear(
                model,
                [rng.uniform(-1.0, 1.0) for _ in range(args.dimension)],
                config=config,
                seed=args.seed + index,
            )
    report = drift.drift_from_metrics(
        registry, config, args.dimension, tolerance=args.tolerance
    )

    from repro.crypto.precompute import get_precompute_service
    from repro.math import fastpath

    availability = (
        "gmpy2 available" if fastpath.gmpy2_available() else "gmpy2 unavailable"
    )
    precompute_stats = get_precompute_service().stats()
    tables = precompute_stats["tables"]
    print("== arithmetic engine ==")
    print(f"bignum backend: {fastpath.backend_name()} ({availability})")
    print(
        f"precompute: {tables['cached']} warm generator table(s), "
        f"{int(tables['hits'])} hits / {int(tables['builds'])} builds "
        f"({tables['build_seconds'] * 1000.0:.1f} ms building)"
    )
    print()
    print("== span tree ==")
    print(tracer.flame())
    print()
    print("== metrics (prometheus) ==")
    print(registry.to_prometheus())
    print("== cost-model drift ==")
    print(report.to_text())
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(tracer.to_jsonl())
        print(f"spans written to {args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(registry.to_json())
        print(f"metrics snapshot written to {args.metrics_out}")
    if not report.ok:
        drifted = ", ".join(phase.phase for phase in report.drifted_phases)
        print(f"DRIFT detected in: {drifted}", file=sys.stderr)
        return 3
    return 0


def _parse_worker_counts(text: str) -> List[int]:
    """Parse ``--workers "1,2,4"`` into validated worker counts."""
    from repro.exceptions import ValidationError

    try:
        counts = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ValidationError(
            f"--workers expects a comma-separated list of integers, got {text!r}"
        ) from None
    if not counts or any(count < 1 for count in counts):
        raise ValidationError(
            f"--workers needs one or more positive counts, got {text!r}"
        )
    return counts


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.engine import EnginePolicy, run_engine
    from repro.exceptions import ValidationError
    from repro.math.groups import fast_group
    from repro.ml.svm import make_linear_model
    from repro.utils.rng import ReproRandom

    if args.jobs < 1:
        raise ValidationError(f"--jobs must be at least 1, got {args.jobs}")
    if args.dimension < 1:
        raise ValidationError(
            f"--dimension must be at least 1, got {args.dimension}"
        )
    worker_counts = _parse_worker_counts(args.workers)

    rng = ReproRandom(args.seed)
    model = make_linear_model(
        [rng.uniform(-2.0, 2.0) for _ in range(args.dimension)],
        rng.uniform(-1.0, 1.0),
    )
    samples = [
        [rng.uniform(-1.0, 1.0) for _ in range(args.dimension)]
        for _ in range(args.jobs)
    ]
    config = OMPEConfig(security_degree=args.security_degree, group=fast_group())
    policy = EnginePolicy(timeout_s=args.timeout, max_retries=args.max_retries)

    print(f"{'workers':>7s} {'jobs/s':>9s} {'elapsed':>9s} {'failed':>6s} "
          f"{'ompe runs':>9s}")
    baseline: Optional[float] = None
    exit_code = 0
    for workers in worker_counts:
        report = run_engine(
            model,
            samples,
            config=config,
            workers=workers,
            pool_size=args.pool_size,
            queue_capacity=args.queue_capacity,
            policy=policy,
            seed=args.seed,
        )
        snapshot = report.metrics.snapshot()
        ompe_runs = sum(
            entry["value"]
            for entry in snapshot.get("repro_ompe_runs_total", {}).get("series", [])
        )
        speedup = ""
        if baseline is None:
            baseline = report.jobs_per_second
        elif baseline > 0:
            speedup = f"  ({report.jobs_per_second / baseline:.2f}x vs first)"
        print(
            f"{workers:7d} {report.jobs_per_second:9.2f} "
            f"{report.elapsed_s:8.2f}s {len(report.failed):6d} "
            f"{int(ompe_runs):9d}{speedup}"
        )
        if report.failed:
            exit_code = 1
    return exit_code


def _parse_endpoint(text: str) -> tuple:
    """Parse ``--connect host:port`` into ``(host, port)``."""
    from repro.exceptions import ValidationError

    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ValidationError(
            f"--connect expects host:port, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValidationError(
            f"--connect expects a numeric port, got {port_text!r}"
        ) from None
    return host, port


def _load_model_dir(path: str) -> dict:
    """Load ``<path>/*.json`` as a keyed model collection (stem = key)."""
    from pathlib import Path

    from repro.exceptions import ValidationError

    files = sorted(Path(path).glob("*.json"))
    if not files:
        raise ValidationError(f"no *.json model files in {path!r}")
    return {file.stem: load_model(str(file)) for file in files}


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.net.service import TrainerServer

    models = None
    if args.models_dir:
        models = _load_model_dir(args.models_dir)
        model = None
    elif args.model:
        model = load_model(args.model)
    else:
        print("serve needs a model file or --models-dir", file=sys.stderr)
        return 2
    config = OMPEConfig(security_degree=args.security_degree)
    output_policy = None
    if args.output_policy:
        from repro.core.similarity.policy import parse_output_policy

        output_policy = parse_output_policy(args.output_policy)
    if args.observe:
        # Live registry + tracer: scrapeable over admin/metrics, with
        # per-session span fragments retrievable over admin/trace.
        obs.enable_metrics()
        obs.enable_tracing()
    with TrainerServer(
        model,
        host=args.host,
        port=args.port,
        config=config,
        session_timeout=args.timeout,
        max_connections=args.workers,
        drain_timeout=args.drain_timeout,
        output_policy=output_policy,
        precompute=args.precompute,
        session_workers=args.session_workers,
        models=models,
    ) as server:
        from repro.math import fastpath

        host, port = server.address
        policy_note = (
            f", output policy {output_policy.label}" if output_policy else ""
        )
        precompute_note = "warm" if args.precompute else "cold"
        if models:
            what = (
                f"{len(models)} keyed models from {args.models_dir} "
                f"({', '.join(sorted(models))})"
            )
        else:
            what = args.model
        shown = server.model
        print(f"serving {what} on {host}:{port} "
              f"({'linear' if shown.is_linear() else 'kernel'} model, "
              f"dimension {shown.dimension}, "
              f"up to {args.workers} concurrent connections, "
              f"protocols v1+v2 ({args.session_workers} session workers)"
              f"{policy_note}, "
              f"bignum backend {fastpath.backend_name()}, "
              f"precompute {precompute_note})")
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(str(port))
        served = server.serve_forever(max_sessions=args.max_sessions)
        print(f"served {served} sessions")
    return 0


def _cmd_remote_classify(args: argparse.Namespace) -> int:
    from repro.net.service import TrainerClient, TrainerClientPool

    host, port = _parse_endpoint(args.connect)
    X, y = read_libsvm(args.data)
    limit = min(args.limit, X.shape[0]) if args.limit else X.shape[0]
    config = OMPEConfig(security_degree=args.security_degree)
    seeds = [args.seed + index for index in range(limit)]
    tracer = obs.enable_tracing() if args.trace_out else None
    try:
        if args.pool > 1:
            with TrainerClientPool(
                host, port, size=args.pool, config=config,
                timeout=args.timeout, protocol=args.protocol,
                pipeline=args.pipeline,
            ) as pool:
                outcomes = pool.classify_many(
                    [X[index] for index in range(limit)], seeds=seeds
                )
        else:
            with TrainerClient(
                host, port, config=config, timeout=args.timeout,
                protocol=args.protocol,
            ) as client:
                outcomes = [
                    client.classify(X[index], seed=seeds[index])
                    for index in range(limit)
                ]
    finally:
        if tracer is not None:
            obs.disable_tracing()
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                handle.write(tracer.to_jsonl() + "\n")
            print(f"wrote client trace fragment to {args.trace_out} "
                  f"(stitch with: repro trace --connect {args.connect} "
                  f"--stitch {args.trace_out})")
    correct = 0
    for index, outcome in enumerate(outcomes):
        marker = "ok " if outcome.label == y[index] else "ERR"
        correct += outcome.label == y[index]
        print(f"sample {index}: predicted {outcome.label:+.0f}, "
              f"actual {y[index]:+.0f} {marker}  [{outcome.total_bytes} B]")
    print(f"accuracy: {correct / limit:.1%} over {limit} samples "
          f"(private protocol over TCP)")
    return 0


def _cmd_remote_similarity(args: argparse.Namespace) -> int:
    from repro.net.service import TrainerClient

    host, port = _parse_endpoint(args.connect)
    model = load_model(args.model)
    config = OMPEConfig(security_degree=args.security_degree)
    policy = None
    if args.output_policy:
        from repro.core.similarity.policy import parse_output_policy

        policy = parse_output_policy(args.output_policy)
    with TrainerClient(
        host, port, config=config, timeout=args.timeout,
        protocol=args.protocol,
    ) as client:
        outcome = client.evaluate_similarity(
            model, seed=args.seed, policy=policy
        )
    _print_similarity_outcome(outcome, "over TCP")
    return 0


def _render_health(health, metrics_dump) -> str:
    """One ``repro top`` frame: occupancy, flags, live sessions, counters."""
    lines = [
        f"connections {health.active_connections}/{health.max_connections}"
        f"   served {health.sessions_served}"
        f"   stopping={health.stopping} draining={health.draining}",
    ]
    if health.sessions:
        lines.append(f"{'session':10s} {'kind':12s} {'age':>8s}  span")
        for entry in health.sessions:
            span = entry.get("span") or "-"
            phase = entry.get("phase")
            if phase:
                span = f"{span} [{phase}]"
            lines.append(
                f"{str(entry.get('session') or '-'):10s} "
                f"{str(entry.get('kind') or '-'):12s} "
                f"{entry.get('age_s', 0.0):7.2f}s  {span}"
            )
    else:
        lines.append("no sessions in flight")
    if metrics_dump.enabled:
        snapshot = metrics_dump.snapshot()
        for name in sorted(snapshot):
            dump = snapshot[name]
            if dump.get("kind") == "counter":
                total = sum(entry["value"] for entry in dump.get("series", []))
                lines.append(f"{name:44s} {total:12g}")
            elif dump.get("kind") == "gauge":
                # Gauges are last-write-wins per label set — summing
                # them would be meaningless, so each series gets its
                # own line (this is where the per-policy
                # repro_privacy_leakage_score shows up).
                for entry in dump.get("series", []):
                    labels = ",".join(
                        f"{key}={value}"
                        for key, value in sorted(
                            dict(entry.get("labels", {})).items()
                        )
                    )
                    series_name = f"{name}{{{labels}}}" if labels else name
                    lines.append(f"{series_name:60s} {entry['value']:12g}")
    else:
        lines.append("(server metrics disabled — start with serve --observe)")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.net.service import AdminClient

    host, port = _parse_endpoint(args.connect)
    with AdminClient(
        host, port, timeout=args.timeout, protocol=args.protocol
    ) as admin:
        for iteration in range(max(1, args.iterations)):
            if iteration:
                time.sleep(args.interval)
            health = admin.health()
            metrics_dump = admin.metrics()
            if args.iterations != 1 and not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(_render_health(health, metrics_dump))
            sys.stdout.flush()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.net.service import AdminClient
    from repro.obs.distributed import render, stitch

    if not args.connect and not args.stitch:
        print("trace needs --connect and/or --stitch", file=sys.stderr)
        return 2
    fragments = []
    if args.connect:
        host, port = _parse_endpoint(args.connect)
        with AdminClient(
            host, port, timeout=args.timeout, protocol=args.protocol
        ) as admin:
            dump = admin.trace(session=args.session)
        for entry in dump.sessions:
            origin = f"server/{entry.get('session', '?')}"
            fragments.append((origin, entry.get("jsonl", "")))
            error = entry.get("error")
            if error:
                print(f"note: session {entry.get('session')} "
                      f"ended with an error: {error}")
    for path in args.stitch:
        with open(path, "r", encoding="utf-8") as handle:
            fragments.append((os.path.basename(path), handle.read()))
    if not fragments:
        print("no trace fragments found (is the server running "
              "with --observe, and has a session completed?)")
        return 1
    roots = stitch(fragments)
    print(render(roots))
    return 0


def _cmd_link(args: argparse.Namespace) -> int:
    from repro.linkage import (
        EngineLinkageRunner,
        LinkageJobSpec,
        SerialLinkageRunner,
        ServiceLinkageRunner,
        run_linkage,
    )
    from repro.math.groups import fast_group

    config_kwargs = {"security_degree": args.security_degree}
    if args.fast_group:
        config_kwargs["group"] = fast_group()
    config = OMPEConfig(**config_kwargs)
    spec = LinkageJobSpec(
        _load_model_dir(args.left_dir),
        _load_model_dir(args.right_dir),
        chunk_pairs=args.chunk_pairs,
        threshold=args.threshold,
        top_k=args.top_k,
        seed=args.seed,
        config=config,
    )
    if args.backend == "engine":
        runner = EngineLinkageRunner(workers=args.workers, seed=args.seed)
    elif args.backend == "tcp":
        from repro.net.service import TrainerClientPool

        if not args.connect:
            print("--backend tcp needs --connect host:port", file=sys.stderr)
            return 2
        host, port = _parse_endpoint(args.connect)
        pool = TrainerClientPool(
            host, port, size=args.pool, config=config,
            timeout=args.timeout, protocol=args.protocol,
            pipeline=args.pipeline,
        )
        runner = ServiceLinkageRunner(pool, owns_pool=True)
    else:
        runner = SerialLinkageRunner()

    report = run_linkage(spec, runner, args.store, resume=not args.no_resume)
    if args.matches_out:
        with open(args.matches_out, "w", encoding="utf-8") as handle:
            for score in report.matches:
                handle.write(score.encode() + "\n")
    summary = report.summary()
    print(
        f"linked {summary['pairs_total']} pairs "
        f"({len(spec.left)} left x {len(spec.right)} right) in "
        f"{summary['chunks_total']} chunks via {args.backend}: "
        f"{summary['chunks_computed']} computed, "
        f"{summary['chunks_resumed']} resumed, "
        f"{summary['chunks_quarantined']} quarantined"
    )
    if report.corrupt:
        for error in report.corrupt:
            print(f"recovered from damaged chunk: {error}", file=sys.stderr)
    if summary["pairs_scored"]:
        print(
            f"scored {summary['pairs_scored']} pairs in "
            f"{summary['elapsed_s']:.2f}s "
            f"({summary['pairs_per_second']:.2f} pairs/s)"
        )
    filters = []
    if spec.threshold is not None:
        filters.append(f"T <= {spec.threshold:g}")
    if spec.top_k is not None:
        filters.append(f"top-{spec.top_k} per left record")
    note = f" ({', '.join(filters)})" if filters else ""
    print(f"{len(report.matches)} surviving pair(s){note}:")
    for score in report.matches[: args.limit]:
        print(f"  {score.left} ~ {score.right}  T = {score.t:.6g}")
    hidden = len(report.matches) - args.limit
    if hidden > 0:
        print(f"  ... and {hidden} more (raise --limit to show)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ids = available_experiments() if args.all else [args.experiment]
    if not args.all and args.experiment is None:
        print("choose an experiment id or pass --all; available: "
              + ", ".join(available_experiments()))
        return 2
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print(result.to_text())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-preserving classification and similarity evaluation "
                    "(ICDCS 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the paper-dataset analogs")

    generate = sub.add_parser("generate", help="generate a dataset analog to LIBSVM format")
    generate.add_argument("dataset", choices=available_datasets())
    generate.add_argument("output")
    generate.add_argument("--seed", type=int, default=2016)

    train = sub.add_parser("train", help="train an SVM from a LIBSVM file")
    train.add_argument("data")
    train.add_argument("model")
    train.add_argument("--kernel", default="linear",
                       choices=["linear", "poly", "rbf", "sigmoid"])
    train.add_argument("--C", type=float, default=10.0)
    train.add_argument("--degree", type=int, default=3)
    train.add_argument("--a0", type=float, default=None)
    train.add_argument("--b0", type=float, default=0.0)
    train.add_argument("--gamma", type=float, default=1.0)

    classify = sub.add_parser("classify", help="classify samples against a model")
    classify.add_argument("model")
    classify.add_argument("data")
    classify.add_argument("--private", action="store_true",
                          help="use the privacy-preserving protocol")
    classify.add_argument("--limit", type=int, default=10)
    classify.add_argument("--seed", type=int, default=0)
    classify.add_argument("--security-degree", type=int, default=2)

    similarity = sub.add_parser("similarity", help="compare two trained models")
    similarity.add_argument("model_a")
    similarity.add_argument("model_b")
    similarity.add_argument("--private", action="store_true")
    similarity.add_argument("--seed", type=int, default=0)
    similarity.add_argument("--security-degree", type=int, default=2)
    similarity.add_argument("--output-policy", default=None,
                            help="mitigated output mode (requires --private): "
                                 "raw, threshold:<t>, top-k:<k>, or permuted")

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument("experiment", nargs="?", default=None)
    experiment.add_argument("--all", action="store_true")

    observe = sub.add_parser(
        "observe",
        help="run a traced private classification and check cost-model drift",
    )
    observe.add_argument("--dimension", type=int, default=3)
    observe.add_argument("--security-degree", type=int, default=2)
    observe.add_argument("--cover-expansion", type=int, default=2)
    observe.add_argument("--runs", type=int, default=1)
    observe.add_argument("--seed", type=int, default=0)
    observe.add_argument("--tolerance", type=float, default=0.35,
                         help="per-phase relative drift tolerance")
    observe.add_argument("--trace-out", default=None,
                         help="write the span tree as JSON lines")
    observe.add_argument("--metrics-out", default=None,
                         help="write the metrics snapshot as JSON")

    serve = sub.add_parser(
        "serve",
        help="host a trained model as a TCP trainer service",
    )
    serve.add_argument("model", nargs="?", default=None)
    serve.add_argument("--models-dir", default=None,
                       help="serve every *.json model in this directory as a "
                            "keyed collection (filename stem = key); "
                            "sessions select one via the session/open "
                            "'model' field — the bulk-linkage TCP backend "
                            "relies on this")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks a free port (printed on startup)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port to this file (for scripts)")
    serve.add_argument("--max-sessions", type=int, default=None,
                       help="exit after serving this many sessions")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-connection socket timeout in seconds")
    serve.add_argument("--workers", type=int, default=8,
                       help="max concurrent client connections")
    serve.add_argument("--session-workers", type=int, default=8,
                       help="worker threads for protocol v2 multiplexed "
                            "sessions (v1 connections are unaffected)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       help="seconds in-flight sessions get to finish on shutdown")
    serve.add_argument("--security-degree", type=int, default=2)
    serve.add_argument("--observe", action="store_true",
                       help="enable metrics + tracing so admin/* frames, "
                            "repro top, and repro trace have data")
    serve.add_argument("--output-policy", default=None,
                       help="mandate a similarity output policy for every "
                            "session: raw, threshold:<t>, top-k:<k>, or "
                            "permuted (clients requesting a different "
                            "policy are refused)")
    serve.add_argument("--precompute", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="warm the shared precompute store (generator "
                            "tables) at startup so sessions never rebuild "
                            "it; --no-precompute measures cold starts")

    remote_classify = sub.add_parser(
        "remote-classify",
        help="classify samples against a served model over TCP",
    )
    remote_classify.add_argument("data")
    remote_classify.add_argument("--connect", required=True,
                                 help="trainer service endpoint host:port")
    remote_classify.add_argument("--limit", type=int, default=10)
    remote_classify.add_argument("--pool", type=int, default=1,
                                 help="pooled connections; >1 classifies "
                                      "concurrently via TrainerClientPool")
    remote_classify.add_argument("--seed", type=int, default=0)
    remote_classify.add_argument("--timeout", type=float, default=30.0)
    remote_classify.add_argument("--security-degree", type=int, default=2)
    remote_classify.add_argument("--protocol", default="auto",
                                 choices=("v1", "v2", "auto"),
                                 help="wire protocol: v1 (one session per "
                                      "connection), v2 (multiplexed "
                                      "sessions), or auto-negotiate")
    remote_classify.add_argument("--pipeline", type=int, default=16,
                                 help="max in-flight sessions per pooled v2 "
                                      "connection (ignored on v1)")
    remote_classify.add_argument("--trace-out", default=None,
                                 help="trace the run and write the client-side "
                                      "span fragment as JSON lines")

    remote_similarity = sub.add_parser(
        "remote-similarity",
        help="compare a local model against a served model over TCP",
    )
    remote_similarity.add_argument("model")
    remote_similarity.add_argument("--connect", required=True,
                                   help="trainer service endpoint host:port")
    remote_similarity.add_argument("--seed", type=int, default=0)
    remote_similarity.add_argument("--timeout", type=float, default=30.0)
    remote_similarity.add_argument("--security-degree", type=int, default=2)
    remote_similarity.add_argument("--protocol", default="auto",
                                   choices=("v1", "v2", "auto"),
                                   help="wire protocol: v1, v2, or "
                                        "auto-negotiate")
    remote_similarity.add_argument("--output-policy", default=None,
                                   help="request a mitigated output mode: "
                                        "raw, threshold:<t>, top-k:<k>, or "
                                        "permuted (e.g. top-k:5)")

    link = sub.add_parser(
        "link",
        help="bulk-link two model collections (chunked NxM similarity "
             "with a crash-resumable result store)",
    )
    link.add_argument("--left-dir", required=True,
                      help="directory of *.json left models (trainer side)")
    link.add_argument("--right-dir", required=True,
                      help="directory of *.json right models (querying side)")
    link.add_argument("--store", required=True,
                      help="result-store directory (reused to resume)")
    link.add_argument("--backend", default="serial",
                      choices=("serial", "engine", "tcp"),
                      help="serial (baseline), engine (worker fleet), or "
                           "tcp (fan out to a served left collection)")
    link.add_argument("--workers", type=int, default=2,
                      help="engine backend worker processes")
    link.add_argument("--connect", default=None,
                      help="tcp backend endpoint host:port (serve the left "
                           "collection with serve --models-dir first)")
    link.add_argument("--pool", type=int, default=2,
                      help="tcp backend pooled connections")
    link.add_argument("--pipeline", type=int, default=16,
                      help="tcp backend in-flight sessions per v2 connection")
    link.add_argument("--protocol", default="auto",
                      choices=("v1", "v2", "auto"),
                      help="tcp backend wire protocol")
    link.add_argument("--timeout", type=float, default=30.0,
                      help="tcp backend per-session timeout in seconds")
    link.add_argument("--chunk-pairs", type=int, default=128,
                      help="pairs per chunk (the unit of resume)")
    link.add_argument("--threshold", type=float, default=None,
                      help="keep pairs with T <= this (smaller T = more "
                           "similar)")
    link.add_argument("--top-k", type=int, default=None,
                      help="keep the k most-similar pairs per left record")
    link.add_argument("--seed", type=int, default=0)
    link.add_argument("--security-degree", type=int, default=2)
    link.add_argument("--fast-group", action="store_true",
                      help="use the small test group (fast, not "
                           "production-sized security)")
    link.add_argument("--no-resume", action="store_true",
                      help="recompute every chunk even if the store has "
                           "completed ones")
    link.add_argument("--matches-out", default=None,
                      help="write the final filtered pair set as canonical "
                           "JSONL (stable bytes across backends/resumes)")
    link.add_argument("--limit", type=int, default=20,
                      help="max surviving pairs to print")

    serve_bench = sub.add_parser(
        "serve-bench",
        help="benchmark the multi-core protocol engine (jobs/sec per worker count)",
    )
    serve_bench.add_argument("--dimension", type=int, default=3)
    serve_bench.add_argument("--jobs", type=int, default=16)
    serve_bench.add_argument("--workers", default="1,2,4",
                             help="comma-separated worker counts to sweep")
    serve_bench.add_argument("--pool-size", type=int, default=16)
    serve_bench.add_argument("--queue-capacity", type=int, default=64)
    serve_bench.add_argument("--security-degree", type=int, default=2)
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument("--timeout", type=float, default=None,
                             help="per-job timeout in seconds")
    serve_bench.add_argument("--max-retries", type=int, default=2)

    top = sub.add_parser(
        "top",
        help="live view of a running trainer service (admin channel)",
    )
    top.add_argument("--connect", required=True,
                     help="trainer service endpoint host:port")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=1,
                     help="number of frames to print (1 = snapshot)")
    top.add_argument("--no-clear", action="store_true",
                     help="do not clear the screen between frames")
    top.add_argument("--timeout", type=float, default=10.0)
    top.add_argument("--protocol", default="auto",
                     choices=("v1", "v2", "auto"),
                     help="admin channel wire protocol")

    trace = sub.add_parser(
        "trace",
        help="fetch per-session trace fragments and print the stitched tree",
    )
    trace.add_argument("--connect", default=None,
                       help="trainer service endpoint host:port")
    trace.add_argument("--session", default=None,
                       help="only this session id (e.g. s1)")
    trace.add_argument("--stitch", nargs="*", default=[],
                       help="extra local trace JSONL files to stitch in "
                            "(e.g. from remote-classify --trace-out)")
    trace.add_argument("--timeout", type=float, default=10.0)
    trace.add_argument("--protocol", default="auto",
                       choices=("v1", "v2", "auto"),
                       help="admin channel wire protocol")

    return parser


_HANDLERS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "train": _cmd_train,
    "classify": _cmd_classify,
    "similarity": _cmd_similarity,
    "experiment": _cmd_experiment,
    "link": _cmd_link,
    "observe": _cmd_observe,
    "serve": _cmd_serve,
    "remote-classify": _cmd_remote_classify,
    "remote-similarity": _cmd_remote_similarity,
    "serve-bench": _cmd_serve_bench,
    "top": _cmd_top,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
