"""``python -m repro`` — dispatch to the CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early — standard CLI
        # etiquette is a quiet exit.
        sys.exit(0)
