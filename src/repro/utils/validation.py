"""Lightweight argument validation helpers.

These helpers raise :class:`repro.exceptions.ValidationError` with
descriptive messages, keeping call sites one line long.
"""

from __future__ import annotations

from numbers import Real
from typing import Sequence, Tuple, Type, TypeVar, Union

from repro.exceptions import ValidationError

_T = TypeVar("_T")


def ensure_type(value: _T, expected: Union[Type, Tuple[Type, ...]], name: str) -> _T:
    """Raise unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be {expected!r}, got {type(value).__name__}"
        )
    return value


def ensure_positive(value, name: str):
    """Raise unless ``value`` is a strictly positive real number."""
    if not isinstance(value, Real):
        raise ValidationError(f"{name} must be a real number, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def ensure_non_negative(value, name: str):
    """Raise unless ``value`` is a non-negative real number."""
    if not isinstance(value, Real):
        raise ValidationError(f"{name} must be a real number, got {type(value).__name__}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value


def ensure_in_range(value, low, high, name: str):
    """Raise unless ``low <= value <= high``."""
    if not isinstance(value, Real):
        raise ValidationError(f"{name} must be a real number, got {type(value).__name__}")
    if not low <= value <= high:
        raise ValidationError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def ensure_probability(value, name: str):
    """Raise unless ``value`` is a probability in [0, 1]."""
    return ensure_in_range(value, 0.0, 1.0, name)


def ensure_vector(values: Sequence, name: str, length: int = None) -> tuple:
    """Validate a non-empty numeric vector, optionally of fixed length.

    Returns the values as a tuple so callers get an immutable copy.
    """
    try:
        items = tuple(values)
    except TypeError:
        raise ValidationError(f"{name} must be an iterable of numbers") from None
    if not items:
        raise ValidationError(f"{name} must be non-empty")
    if length is not None and len(items) != length:
        raise ValidationError(
            f"{name} must have length {length}, got {len(items)}"
        )
    for index, item in enumerate(items):
        if not isinstance(item, Real):
            raise ValidationError(
                f"{name}[{index}] must be a real number, got {type(item).__name__}"
            )
    return items


def ensure_same_length(first: Sequence, second: Sequence, names: str) -> None:
    """Raise unless the two sequences have equal length."""
    if len(first) != len(second):
        raise ValidationError(
            f"{names} must have equal length, got {len(first)} and {len(second)}"
        )
