"""Canonical byte encodings for protocol values.

The oblivious-transfer layer transports opaque byte strings, while the
OMPE layer manipulates exact rationals and rational vectors.  This
module provides a stable, self-describing codec between the two so a
value round-trips bit-exactly across the simulated network.

Wire format (all integers big-endian):

* ``int``      -> ``b"I" + varbytes(sign_magnitude)``
* ``Fraction`` -> ``b"F" + varbytes(numerator) + varbytes(denominator)``
* ``float``    -> ``b"D" + 8-byte IEEE 754``
* ``tuple``    -> ``b"T" + u32 count + items``

where ``varbytes(x)`` is ``u32 length + payload`` and integers use a
leading sign byte.
"""

from __future__ import annotations

import struct
from fractions import Fraction
from typing import Tuple, Union

from repro.exceptions import ValidationError

Scalar = Union[int, float, Fraction]
Encodable = Union[Scalar, Tuple]


def _encode_int(value: int) -> bytes:
    sign = b"\x01" if value < 0 else b"\x00"
    magnitude = abs(value)
    payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
    body = sign + payload
    return struct.pack(">I", len(body)) + body


def _decode_int(data: bytes, offset: int) -> Tuple[int, int]:
    (length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    body = data[offset : offset + length]
    if len(body) != length:
        raise ValidationError("truncated integer payload")
    sign = -1 if body[0] == 1 else 1
    return sign * int.from_bytes(body[1:], "big"), offset + length


def encode_value(value: Encodable) -> bytes:
    """Encode a scalar or (nested) tuple of scalars to canonical bytes."""
    if isinstance(value, bool):
        raise ValidationError("booleans are not protocol values")
    if isinstance(value, int):
        return b"I" + _encode_int(value)
    if isinstance(value, Fraction):
        return b"F" + _encode_int(value.numerator) + _encode_int(value.denominator)
    if isinstance(value, float):
        return b"D" + struct.pack(">d", value)
    if isinstance(value, tuple):
        parts = [b"T", struct.pack(">I", len(value))]
        parts.extend(encode_value(item) for item in value)
        return b"".join(parts)
    raise ValidationError(f"cannot encode {type(value).__name__} as a protocol value")


def _decode_at(data: bytes, offset: int) -> Tuple[Encodable, int]:
    if offset >= len(data):
        raise ValidationError("truncated protocol value")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == b"I":
        return _decode_int(data, offset)
    if tag == b"F":
        numerator, offset = _decode_int(data, offset)
        denominator, offset = _decode_int(data, offset)
        if denominator == 0:
            raise ValidationError("fraction with zero denominator")
        return Fraction(numerator, denominator), offset
    if tag == b"D":
        (value,) = struct.unpack_from(">d", data, offset)
        return value, offset + 8
    if tag == b"T":
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_at(data, offset)
            items.append(item)
        return tuple(items), offset
    raise ValidationError(f"unknown protocol value tag {tag!r}")


def decode_value(data: bytes) -> Encodable:
    """Decode bytes produced by :func:`encode_value`.

    Raises :class:`ValidationError` on trailing garbage, so the codec is
    injective in both directions.
    """
    value, offset = _decode_at(data, 0)
    if offset != len(data):
        raise ValidationError("trailing bytes after protocol value")
    return value


def encoded_size(value: Encodable) -> int:
    """Size in bytes of the canonical encoding (communication accounting)."""
    return len(encode_value(value))
