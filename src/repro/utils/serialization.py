"""Canonical byte encodings for protocol values and wire messages.

Two codec layers live here:

* The **scalar codec** (:func:`encode_value` / :func:`decode_value`) —
  the original OMPE vocabulary of exact rationals and rational tuples.
  The oblivious-transfer layer transports these as opaque byte strings,
  and their encodings are part of the protocol transcript, so this
  layer must stay bit-stable.
* The **message codec** (:func:`encode_payload` / :func:`decode_payload`
  and :func:`encode_message` / :func:`decode_message`) — a strict
  superset covering everything the protocols actually put on a channel:
  ``None``, booleans, byte strings, text, lists, dicts, and the
  registered protocol dataclasses (OT setups/choices/transfers, the
  OMPE config, ...).  This is what :mod:`repro.net.wire` frames onto a
  real TCP connection, and what :func:`repro.net.message.measure_size`
  mirrors byte-for-byte for the simulated transport.

Wire format (all integers big-endian; ``varbytes(x)`` is a ``u32``
length followed by the raw payload; integers use a leading sign byte):

* ``int``      -> ``b"I" + varbytes(sign_magnitude)``
* ``Fraction`` -> ``b"F" + varbytes(numerator) + varbytes(denominator)``
* ``float``    -> ``b"D" + 8-byte IEEE 754``
* ``tuple``    -> ``b"T" + u32 count + items``
* ``None``     -> ``b"N"``
* ``bool``     -> ``b"B" + 0x00/0x01``
* ``bytes``    -> ``b"Y" + varbytes(raw)``
* ``str``      -> ``b"S" + varbytes(utf-8)``
* ``list``     -> ``b"L" + u32 count + items``
* ``dict``     -> ``b"M" + u32 count + key/value pairs``
* dataclass    -> ``b"C" + varbytes(registered name) + fields in order``

A full message is ``version byte (0x01) + varbytes(msg_type) +
payload``; :mod:`repro.net.wire` length-prefixes that with a ``u32``
frame header.  Decoding is strict: every malformed, truncated, or
unknown-tag input raises :class:`ValidationError` (never a bare
``struct.error`` or an unbounded allocation), and trailing garbage is
rejected so both codecs are injective in each direction.
"""

from __future__ import annotations

import dataclasses
import struct
from fractions import Fraction
from typing import Any, Dict, Optional, Tuple, Type, Union

from repro.exceptions import ValidationError

Scalar = Union[int, float, Fraction]
Encodable = Union[Scalar, Tuple]

#: Version byte leading every encoded message.  Bump on any
#: backwards-incompatible change to the tag vocabulary.
WIRE_VERSION = 1

#: Version byte leading every *multiplexed* (protocol v2) frame.  A v2
#: frame wraps an ordinary v1 message in a session envelope:
#: ``0x02 + u32 session_id + v1 message``.  The first byte therefore
#: distinguishes the two frame generations unambiguously — a v1 decoder
#: handed a v2 frame fails loudly on the version byte, never silently.
MUX_WIRE_VERSION = 2

#: Nesting depth bound for the decoder: deeper frames are rejected as
#: hostile before Python's recursion limit turns them into a crash.
MAX_DECODE_DEPTH = 64


def _encode_int(value: int) -> bytes:
    sign = b"\x01" if value < 0 else b"\x00"
    magnitude = abs(value)
    payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
    body = sign + payload
    return struct.pack(">I", len(body)) + body


def _int_body_size(value: int) -> int:
    """Exact size of ``_encode_int``'s output, without materializing it."""
    magnitude = abs(value)
    return 4 + 1 + ((magnitude.bit_length() + 7) // 8 or 1)


def _decode_int(data: bytes, offset: int) -> Tuple[int, int]:
    if offset + 4 > len(data):
        raise ValidationError("truncated integer length")
    (length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    body = data[offset : offset + length]
    if len(body) != length or length < 1:
        raise ValidationError("truncated integer payload")
    sign = -1 if body[0] == 1 else 1
    return sign * int.from_bytes(body[1:], "big"), offset + length


def encode_value(value: Encodable) -> bytes:
    """Encode a scalar or (nested) tuple of scalars to canonical bytes."""
    if isinstance(value, bool):
        raise ValidationError("booleans are not protocol values")
    if isinstance(value, int):
        return b"I" + _encode_int(value)
    if isinstance(value, Fraction):
        return b"F" + _encode_int(value.numerator) + _encode_int(value.denominator)
    if isinstance(value, float):
        return b"D" + struct.pack(">d", value)
    if isinstance(value, tuple):
        parts = [b"T", struct.pack(">I", len(value))]
        parts.extend(encode_value(item) for item in value)
        return b"".join(parts)
    raise ValidationError(f"cannot encode {type(value).__name__} as a protocol value")


def _decode_at(data: bytes, offset: int) -> Tuple[Encodable, int]:
    if offset >= len(data):
        raise ValidationError("truncated protocol value")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == b"I":
        return _decode_int(data, offset)
    if tag == b"F":
        numerator, offset = _decode_int(data, offset)
        denominator, offset = _decode_int(data, offset)
        if denominator == 0:
            raise ValidationError("fraction with zero denominator")
        return Fraction(numerator, denominator), offset
    if tag == b"D":
        if offset + 8 > len(data):
            raise ValidationError("truncated float payload")
        (value,) = struct.unpack_from(">d", data, offset)
        return value, offset + 8
    if tag == b"T":
        if offset + 4 > len(data):
            raise ValidationError("truncated tuple count")
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        if count > len(data) - offset:
            raise ValidationError("tuple count exceeds available bytes")
        items = []
        for _ in range(count):
            item, offset = _decode_at(data, offset)
            items.append(item)
        return tuple(items), offset
    raise ValidationError(f"unknown protocol value tag {tag!r}")


def decode_value(data: bytes) -> Encodable:
    """Decode bytes produced by :func:`encode_value`.

    Raises :class:`ValidationError` on trailing garbage, so the codec is
    injective in both directions.
    """
    value, offset = _decode_at(data, 0)
    if offset != len(data):
        raise ValidationError("trailing bytes after protocol value")
    return value


def encoded_size(value: Encodable) -> int:
    """Size in bytes of the canonical encoding (communication accounting)."""
    return len(encode_value(value))


# -- message payload codec ---------------------------------------------------

#: Registered dataclass payload types: wire name <-> class.  Names are
#: part of the wire format; once published they must stay stable.
_PAYLOAD_TYPES_BY_NAME: Dict[str, Type] = {}
_PAYLOAD_NAMES_BY_TYPE: Dict[Type, str] = {}


def register_payload_type(name: str, cls: Optional[Type] = None):
    """Register a dataclass so it can cross the wire by ``name``.

    Fields are encoded in declaration order; decoding reconstructs the
    class through its constructor, so ``__post_init__`` validation runs
    on every decoded instance (hostile field values are rejected by the
    type itself).  Usable directly (``register_payload_type("x", X)``)
    or as a class decorator (``@register_payload_type("x")``).
    """
    if cls is None:
        return lambda actual: register_payload_type(name, actual)
    if not dataclasses.is_dataclass(cls):
        raise ValidationError(f"{cls.__name__} is not a dataclass")
    if not name:
        raise ValidationError("payload type name must be non-empty")
    existing = _PAYLOAD_TYPES_BY_NAME.get(name)
    if existing is not None and existing is not cls:
        raise ValidationError(
            f"payload type name {name!r} already registered to "
            f"{existing.__name__}"
        )
    _PAYLOAD_TYPES_BY_NAME[name] = cls
    _PAYLOAD_NAMES_BY_TYPE[cls] = name
    return cls


def _varbytes(raw: bytes) -> bytes:
    return struct.pack(">I", len(raw)) + raw


def _decode_varbytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    if offset + 4 > len(data):
        raise ValidationError("truncated length prefix")
    (length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    if length > len(data) - offset:
        raise ValidationError("length prefix exceeds available bytes")
    return data[offset : offset + length], offset + length


def encode_payload(payload: Any) -> bytes:
    """Encode any message-vocabulary value to canonical bytes."""
    if payload is None:
        return b"N"
    if isinstance(payload, bool):
        return b"B\x01" if payload else b"B\x00"
    if isinstance(payload, (int, float, Fraction)):
        return encode_value(payload)
    if isinstance(payload, (bytes, bytearray)):
        return b"Y" + _varbytes(bytes(payload))
    if isinstance(payload, str):
        return b"S" + _varbytes(payload.encode("utf-8"))
    if isinstance(payload, (tuple, list)):
        parts = [b"T" if isinstance(payload, tuple) else b"L"]
        parts.append(struct.pack(">I", len(payload)))
        parts.extend(encode_payload(item) for item in payload)
        return b"".join(parts)
    if isinstance(payload, dict):
        parts = [b"M", struct.pack(">I", len(payload))]
        for key, value in payload.items():
            parts.append(encode_payload(key))
            parts.append(encode_payload(value))
        return b"".join(parts)
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        name = _PAYLOAD_NAMES_BY_TYPE.get(type(payload))
        if name is None:
            raise ValidationError(
                f"{type(payload).__name__} is not a registered payload type "
                f"(see repro.utils.serialization.register_payload_type)"
            )
        parts = [b"C", _varbytes(name.encode("utf-8"))]
        parts.extend(
            encode_payload(getattr(payload, field.name))
            for field in dataclasses.fields(payload)
        )
        return b"".join(parts)
    raise ValidationError(
        f"cannot encode {type(payload).__name__} as a message payload"
    )


def encoded_payload_size(payload: Any) -> int:
    """Exact size of :func:`encode_payload`'s output, without building it.

    This is the single byte-accounting definition shared by the
    simulated transport (:func:`repro.net.message.measure_size`) and
    the TCP transport, so per-phase byte counts are identical across
    both; ``tests/utils/test_serialization.py`` pins the equality.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 2
    if isinstance(payload, int):
        return 1 + _int_body_size(payload)
    if isinstance(payload, Fraction):
        return (
            1 + _int_body_size(payload.numerator) + _int_body_size(payload.denominator)
        )
    if isinstance(payload, float):
        return 9
    if isinstance(payload, (bytes, bytearray)):
        return 5 + len(payload)
    if isinstance(payload, str):
        return 5 + len(payload.encode("utf-8"))
    if isinstance(payload, (tuple, list)):
        return 5 + sum(encoded_payload_size(item) for item in payload)
    if isinstance(payload, dict):
        return 5 + sum(
            encoded_payload_size(key) + encoded_payload_size(value)
            for key, value in payload.items()
        )
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        name = _PAYLOAD_NAMES_BY_TYPE.get(type(payload))
        if name is None:
            raise ValidationError(
                f"{type(payload).__name__} is not a registered payload type "
                f"(see repro.utils.serialization.register_payload_type)"
            )
        return 5 + len(name.encode("utf-8")) + sum(
            encoded_payload_size(getattr(payload, field.name))
            for field in dataclasses.fields(payload)
        )
    raise ValidationError(
        f"cannot encode {type(payload).__name__} as a message payload"
    )


def _decode_payload_at(data: bytes, offset: int, depth: int) -> Tuple[Any, int]:
    if depth > MAX_DECODE_DEPTH:
        raise ValidationError("payload nesting exceeds the decoder depth bound")
    if offset >= len(data):
        raise ValidationError("truncated message payload")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"B":
        if offset >= len(data):
            raise ValidationError("truncated boolean payload")
        flag = data[offset]
        if flag not in (0, 1):
            raise ValidationError(f"invalid boolean byte {flag:#x}")
        return bool(flag), offset + 1
    if tag in (b"I", b"F", b"D"):
        return _decode_at(data, offset - 1)
    if tag == b"Y":
        raw, offset = _decode_varbytes(data, offset)
        return raw, offset
    if tag == b"S":
        raw, offset = _decode_varbytes(data, offset)
        try:
            return raw.decode("utf-8"), offset
        except UnicodeDecodeError as error:
            raise ValidationError(f"invalid utf-8 in string payload: {error}")
    if tag in (b"T", b"L"):
        if offset + 4 > len(data):
            raise ValidationError("truncated container count")
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        if count > len(data) - offset:
            raise ValidationError("container count exceeds available bytes")
        items = []
        for _ in range(count):
            item, offset = _decode_payload_at(data, offset, depth + 1)
            items.append(item)
        return (tuple(items) if tag == b"T" else items), offset
    if tag == b"M":
        if offset + 4 > len(data):
            raise ValidationError("truncated dict count")
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        if count > (len(data) - offset) // 2:
            raise ValidationError("dict count exceeds available bytes")
        mapping = {}
        for _ in range(count):
            key, offset = _decode_payload_at(data, offset, depth + 1)
            value, offset = _decode_payload_at(data, offset, depth + 1)
            try:
                mapping[key] = value
            except TypeError:
                raise ValidationError(
                    f"unhashable dict key of type {type(key).__name__}"
                )
        return mapping, offset
    if tag == b"C":
        raw_name, offset = _decode_varbytes(data, offset)
        try:
            name = raw_name.decode("utf-8")
        except UnicodeDecodeError:
            raise ValidationError("invalid utf-8 in payload type name")
        cls = _PAYLOAD_TYPES_BY_NAME.get(name)
        if cls is None:
            raise ValidationError(f"unknown payload type {name!r}")
        values = {}
        for field in dataclasses.fields(cls):
            value, offset = _decode_payload_at(data, offset, depth + 1)
            values[field.name] = value
        try:
            return cls(**values), offset
        except ValidationError:
            raise
        except Exception as error:
            raise ValidationError(
                f"decoded {name!r} failed construction: {error}"
            )
    raise ValidationError(f"unknown message payload tag {tag!r}")


def decode_payload(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode_payload` (strict)."""
    try:
        payload, offset = _decode_payload_at(bytes(data), 0, 0)
    except ValidationError:
        raise
    except Exception as error:  # struct.error, OverflowError, ...
        raise ValidationError(f"malformed message payload: {error}")
    if offset != len(data):
        raise ValidationError("trailing bytes after message payload")
    return payload


# -- full message codec ------------------------------------------------------


def encode_message(msg_type: str, payload: Any) -> bytes:
    """Encode one protocol message (version + type + payload)."""
    if not msg_type:
        raise ValidationError("msg_type must be non-empty")
    return (
        bytes([WIRE_VERSION])
        + _varbytes(msg_type.encode("utf-8"))
        + encode_payload(payload)
    )


def peek_message_type(data: bytes) -> str:
    """Decode only the ``msg_type`` of an encoded v1 message.

    The multiplexing demultiplexer routes frames by type without paying
    for a full payload decode on the I/O loop — the session's worker
    thread decodes the payload.  Validation of the header segment is as
    strict as :func:`decode_message`'s.
    """
    data = bytes(data)
    if not data:
        raise ValidationError("empty message frame")
    if data[0] != WIRE_VERSION:
        raise ValidationError(
            f"unsupported wire version {data[0]} (expected {WIRE_VERSION})"
        )
    raw_type, _ = _decode_varbytes(data, 1)
    try:
        msg_type = raw_type.decode("utf-8")
    except UnicodeDecodeError:
        raise ValidationError("invalid utf-8 in message type")
    if not msg_type:
        raise ValidationError("empty message type")
    return msg_type


def decode_message(data: bytes) -> Tuple[str, Any, int]:
    """Decode one message; returns ``(msg_type, payload, payload_bytes)``.

    ``payload_bytes`` is the exact encoded size of the payload segment —
    the number :class:`repro.net.wire.WireChannel` records as the
    message's wire size (and which
    :func:`repro.net.message.measure_size` reproduces for the simulated
    transport).
    """
    data = bytes(data)
    if not data:
        raise ValidationError("empty message frame")
    if data[0] != WIRE_VERSION:
        raise ValidationError(
            f"unsupported wire version {data[0]} (expected {WIRE_VERSION})"
        )
    try:
        raw_type, offset = _decode_varbytes(data, 1)
        try:
            msg_type = raw_type.decode("utf-8")
        except UnicodeDecodeError:
            raise ValidationError("invalid utf-8 in message type")
        if not msg_type:
            raise ValidationError("empty message type")
        payload_bytes = len(data) - offset
        payload, offset = _decode_payload_at(data, offset, 0)
    except ValidationError:
        raise
    except Exception as error:
        raise ValidationError(f"malformed message: {error}")
    if offset != len(data):
        raise ValidationError("trailing bytes after message")
    return msg_type, payload, payload_bytes


# -- multiplexed (protocol v2) frame codec ------------------------------------

#: Hard ceiling on a v2 session id (u32 on the wire).  Session id 0 is
#: the connection-control session (negotiation, admin traffic).
MAX_SESSION_ID = 2**32 - 1

#: The reserved connection-control session id.
CONTROL_SESSION_ID = 0

_SESSION_HEADER = struct.Struct(">I")


def encode_mux_frame(session_id: int, message: bytes) -> bytes:
    """Wrap one encoded v1 message in a v2 session envelope.

    Layout: ``0x02 + u32_be session_id + message``.  The transport's
    length prefix goes *around* this, exactly as for v1 frames, so the
    framing layer below is version-agnostic.
    """
    if not isinstance(session_id, int) or isinstance(session_id, bool):
        raise ValidationError(
            f"session id must be an int, got {type(session_id).__name__}"
        )
    if not 0 <= session_id <= MAX_SESSION_ID:
        raise ValidationError(
            f"session id {session_id} outside the u32 range"
        )
    if not message:
        raise ValidationError("a mux frame needs a non-empty inner message")
    return bytes([MUX_WIRE_VERSION]) + _SESSION_HEADER.pack(session_id) + message


def split_mux_frame(data: bytes) -> Tuple[int, bytes]:
    """Split a v2 frame into ``(session_id, inner message bytes)``.

    Strict: a wrong version byte (including a v1 message byte, 0x01), a
    truncated session header, or an empty inner message all raise
    :class:`ValidationError`.  The inner message is *not* decoded here —
    the demultiplexer routes on the session id first and decodes on the
    session's own thread.
    """
    data = bytes(data)
    if not data:
        raise ValidationError("empty mux frame")
    if data[0] != MUX_WIRE_VERSION:
        raise ValidationError(
            f"unsupported mux frame version {data[0]} "
            f"(expected {MUX_WIRE_VERSION})"
        )
    if len(data) < 1 + _SESSION_HEADER.size + 1:
        raise ValidationError("truncated mux frame header")
    (session_id,) = _SESSION_HEADER.unpack_from(data, 1)
    return session_id, data[1 + _SESSION_HEADER.size:]
