"""Deterministic, forkable randomness for protocols and experiments.

Every randomized component in the library accepts an explicit random
source so that experiments are reproducible end-to-end.  The sources are
built on :class:`random.Random` (protocol randomness operates on Python
integers and :class:`fractions.Fraction`, where ``numpy`` generators are
awkward), with helpers to derive independent child streams.

Protocol security in this reproduction is analyzed in the semi-honest
model of the paper; a deployment would swap :class:`ReproRandom` for an
OS CSPRNG by constructing it with ``systematic=False``.
"""

from __future__ import annotations

import hashlib
import random
import secrets
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, TypeVar

from repro.exceptions import ValidationError

_T = TypeVar("_T")

#: Upper bound (exclusive) for the integer lattice used when drawing
#: "real" random coefficients as exact fractions.
_DEFAULT_FRACTION_GRID = 10**6


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a child seed from ``master_seed`` and a label path.

    The derivation hashes the master seed together with the labels, so
    children with different labels are statistically independent while
    remaining reproducible.

    >>> derive_seed(7, "ot", 3) == derive_seed(7, "ot", 3)
    True
    >>> derive_seed(7, "ot", 3) != derive_seed(7, "ot", 4)
    True
    """
    digest = hashlib.sha256()
    digest.update(str(master_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class ReproRandom:
    """A seedable random source with protocol-oriented helpers.

    Parameters
    ----------
    seed:
        Seed for the deterministic stream.  ``None`` draws a fresh seed
        from the OS entropy pool (still recorded on ``self.seed`` so a
        run can be replayed).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = secrets.randbits(64)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    # -- stream management -------------------------------------------------

    def fork(self, *labels: object) -> "ReproRandom":
        """Return an independent child stream labelled by ``labels``."""
        return ReproRandom(derive_seed(self.seed, *labels))

    # -- integers -----------------------------------------------------------

    def randbits(self, bits: int) -> int:
        """Return a uniform integer with at most ``bits`` bits."""
        if bits <= 0:
            raise ValidationError(f"bits must be positive, got {bits}")
        return self._rng.getrandbits(bits)

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range [low, high]."""
        if low > high:
            raise ValidationError(f"empty range [{low}, {high}]")
        return self._rng.randint(low, high)

    def randrange_coprime(self, modulus: int) -> int:
        """Return a uniform unit of ``Z_modulus`` (element coprime to it)."""
        import math

        if modulus <= 1:
            raise ValidationError(f"modulus must exceed 1, got {modulus}")
        while True:
            candidate = self._rng.randrange(1, modulus)
            if math.gcd(candidate, modulus) == 1:
                return candidate

    # -- reals / fractions ---------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Return a uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Return a Gaussian sample."""
        return self._rng.gauss(mu, sigma)

    def fraction(
        self,
        low: int = -10,
        high: int = 10,
        grid: int = _DEFAULT_FRACTION_GRID,
    ) -> Fraction:
        """Return an exact random fraction in [low, high].

        Values are drawn on a ``1/grid`` lattice so protocol arithmetic
        stays exact under :class:`fractions.Fraction`.
        """
        if low >= high:
            raise ValidationError(f"empty interval [{low}, {high}]")
        numerator = self._rng.randint(low * grid, high * grid)
        return Fraction(numerator, grid)

    def nonzero_fraction(
        self,
        low: int = -10,
        high: int = 10,
        grid: int = _DEFAULT_FRACTION_GRID,
    ) -> Fraction:
        """Return a nonzero exact random fraction in [low, high]."""
        while True:
            value = self.fraction(low, high, grid)
            if value != 0:
                return value

    def positive_fraction(
        self,
        low: int = 0,
        high: int = 10,
        grid: int = _DEFAULT_FRACTION_GRID,
    ) -> Fraction:
        """Return a strictly positive exact random fraction in (low, high]."""
        if high <= 0:
            raise ValidationError(f"high must be positive, got {high}")
        while True:
            value = self.fraction(low, high, grid)
            if value > 0:
                return value

    def distinct_fractions(
        self,
        count: int,
        low: int = -10,
        high: int = 10,
        grid: int = _DEFAULT_FRACTION_GRID,
        exclude_zero: bool = True,
    ) -> List[Fraction]:
        """Return ``count`` pairwise-distinct random fractions.

        Used for interpolation nodes, which must be distinct (and
        nonzero, since the protocols reserve ``v = 0`` for the secret).
        """
        span = (high - low) * grid + 1
        if count > span:
            raise ValidationError(
                f"cannot draw {count} distinct fractions from a grid of {span}"
            )
        chosen: List[Fraction] = []
        seen = set()
        while len(chosen) < count:
            value = self.fraction(low, high, grid)
            if exclude_zero and value == 0:
                continue
            if value in seen:
                continue
            seen.add(value)
            chosen.append(value)
        return chosen

    # -- sequences ------------------------------------------------------------

    def shuffle(self, items: List[_T]) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def sample_indices(self, population: int, count: int) -> List[int]:
        """Return ``count`` sorted distinct indices from ``range(population)``."""
        if count > population:
            raise ValidationError(
                f"cannot sample {count} indices from population {population}"
            )
        return sorted(self._rng.sample(range(population), count))

    def choice(self, items: Sequence[_T]) -> _T:
        """Return one uniformly random element of ``items``."""
        if not items:
            raise ValidationError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def bytes(self, length: int) -> bytes:
        """Return ``length`` random bytes."""
        if length < 0:
            raise ValidationError(f"length must be non-negative, got {length}")
        return self._rng.getrandbits(8 * length).to_bytes(length, "big") if length else b""


def fresh_rng(seed: Optional[int] = None, *labels: object) -> ReproRandom:
    """Convenience constructor: seeded stream, optionally forked by labels."""
    rng = ReproRandom(seed)
    if labels:
        rng = rng.fork(*labels)
    return rng


def spawn_streams(seed: int, names: Iterable[str]) -> dict:
    """Return a dict of independent named child streams of ``seed``."""
    return {name: fresh_rng(seed, name) for name in names}
