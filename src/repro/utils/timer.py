"""Timing utilities for the experiment harness.

:class:`Stopwatch` measures a single region; :class:`TimingRecorder`
accumulates named timings across a protocol run so the benchmark
harness can report per-phase costs (model randomization, OT, and
interpolation phases of the paper's Fig. 9 / Fig. 10).
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterator, List


class Stopwatch:
    """A simple perf_counter-based stopwatch usable as a context manager."""

    def __init__(self) -> None:
        self._start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed * 1e3


class TimingRecorder:
    """Accumulates named phase timings.

    >>> recorder = TimingRecorder()
    >>> with recorder.measure("phase"):
    ...     pass
    >>> recorder.count("phase")
    1
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = defaultdict(list)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager that appends the region's duration to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._samples[name].append(time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration."""
        self._samples[name].append(float(seconds))

    def total(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0.0 if absent)."""
        return sum(self._samples.get(name, ()))

    def count(self, name: str) -> int:
        """Number of samples recorded under ``name``."""
        return len(self._samples.get(name, ()))

    def mean(self, name: str) -> float:
        """Mean duration for ``name``; raises KeyError when unseen."""
        if name not in self._samples:
            raise KeyError(name)
        samples = self._samples[name]
        return sum(samples) / len(samples)

    def names(self) -> List[str]:
        """All phase names seen so far, sorted."""
        return sorted(self._samples)

    def as_dict(self) -> Dict[str, float]:
        """Mapping of phase name to total seconds."""
        return {name: self.total(name) for name in self.names()}

    def merge(self, other: "TimingRecorder") -> None:
        """Fold another recorder's samples into this one."""
        for name, samples in other._samples.items():
            self._samples[name].extend(samples)
