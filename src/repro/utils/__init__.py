"""Shared utilities: deterministic randomness, validation, timing, codecs."""

from repro.utils.rng import ReproRandom, derive_seed, fresh_rng
from repro.utils.timer import Stopwatch, TimingRecorder
from repro.utils.validation import (
    ensure_in_range,
    ensure_positive,
    ensure_probability,
    ensure_type,
    ensure_vector,
)

__all__ = [
    "ReproRandom",
    "derive_seed",
    "fresh_rng",
    "Stopwatch",
    "TimingRecorder",
    "ensure_in_range",
    "ensure_positive",
    "ensure_probability",
    "ensure_type",
    "ensure_vector",
]
