"""Model persistence: save/load trained SVMs as JSON.

A trained model is the trainer's asset (the very thing the protocols
protect), so a distributed deployment needs to persist and reload it.
The format is a small versioned JSON document carrying the support
vectors, dual coefficients, bias, and kernel spec — everything
:class:`~repro.ml.svm.model.SVMModel` needs to be reconstructed
bit-for-bit (floats are serialized exactly via ``float.hex``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.kernels import linear_kernel, make_kernel
from repro.ml.svm.model import SVMModel

PathLike = Union[str, Path]

#: Format version written into every document.
FORMAT_VERSION = 1


def _encode_floats(array: np.ndarray):
    return [[float.hex(float(v)) for v in row] for row in np.atleast_2d(array)]


def _decode_float(text: str) -> float:
    try:
        return float.fromhex(text)
    except (ValueError, TypeError):
        raise ValidationError(f"bad float encoding {text!r}") from None


def model_to_dict(model: SVMModel) -> dict:
    """Serialize a model to a JSON-compatible dictionary."""
    name, params = model.kernel_spec
    return {
        "format": "repro-svm",
        "version": FORMAT_VERSION,
        "kernel": {"name": name, "params": dict(params)},
        "bias": float.hex(float(model.bias)),
        "support_vectors": _encode_floats(model.support_vectors),
        "dual_coefficients": [
            float.hex(float(v)) for v in model.dual_coefficients
        ],
    }


def model_from_dict(document: dict) -> SVMModel:
    """Reconstruct a model from :func:`model_to_dict` output."""
    if not isinstance(document, dict):
        raise ValidationError("model document must be a dictionary")
    if document.get("format") != "repro-svm":
        raise ValidationError("not a repro-svm document")
    if document.get("version") != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported model format version {document.get('version')!r}"
        )
    try:
        kernel_info = document["kernel"]
        name = kernel_info["name"]
        params = dict(kernel_info.get("params", {}))
        bias = _decode_float(document["bias"])
        support_vectors = np.asarray(
            [[_decode_float(v) for v in row] for row in document["support_vectors"]]
        )
        dual_coefficients = np.asarray(
            [_decode_float(v) for v in document["dual_coefficients"]]
        )
    except (KeyError, TypeError) as error:
        raise ValidationError(f"malformed model document: {error}") from None
    kernel = linear_kernel() if name == "linear" else make_kernel(name, **params)
    return SVMModel(
        support_vectors=support_vectors,
        dual_coefficients=dual_coefficients,
        bias=bias,
        kernel=kernel,
        kernel_spec=(name, params),
    )


def save_model(model: SVMModel, path: PathLike) -> None:
    """Write a model to a JSON file."""
    Path(path).write_text(
        json.dumps(model_to_dict(model), indent=2), encoding="utf-8"
    )


def load_model(path: PathLike) -> SVMModel:
    """Read a model from a JSON file."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValidationError(f"invalid JSON in {path}: {error}") from None
    return model_from_dict(document)
