"""Classification metrics for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError


def accuracy(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Fraction of matching labels (paper Table I / Figs. 7–8 metric)."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValidationError("predicted and actual must have the same shape")
    if predicted.size == 0:
        raise ValidationError("cannot compute accuracy of empty arrays")
    return float(np.mean(predicted == actual))


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts for labels in {-1, +1}."""

    true_positive: int
    true_negative: int
    false_positive: int
    false_negative: int

    @classmethod
    def from_labels(
        cls, predicted: Sequence[float], actual: Sequence[float]
    ) -> "ConfusionMatrix":
        predicted = np.asarray(predicted, dtype=float)
        actual = np.asarray(actual, dtype=float)
        if predicted.shape != actual.shape:
            raise ValidationError("predicted and actual must have the same shape")
        return cls(
            true_positive=int(np.sum((predicted == 1) & (actual == 1))),
            true_negative=int(np.sum((predicted == -1) & (actual == -1))),
            false_positive=int(np.sum((predicted == 1) & (actual == -1))),
            false_negative=int(np.sum((predicted == -1) & (actual == 1))),
        )

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.true_negative
            + self.false_positive
            + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            raise ValidationError("empty confusion matrix")
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float,
    seed: int = 0,
):
    """Deterministic shuffled split; returns (X_train, y_train, X_test, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.shape[0] != y.shape[0]:
        raise ValidationError("X and y must have the same number of rows")
    indices = np.arange(X.shape[0])
    np.random.default_rng(seed).shuffle(indices)
    cut = int(round(X.shape[0] * (1.0 - test_fraction)))
    cut = max(1, min(X.shape[0] - 1, cut))
    train_idx, test_idx = indices[:cut], indices[cut:]
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]
