"""Multiclass SVM via one-vs-one and one-vs-rest reductions.

The paper's protocols are binary (SVM hyperplanes); related work [15]
(the Paillier baseline) handles multi-class.  These reductions close
the gap: a multiclass model is a set of binary models plus a voting
rule, and because the private protocol releases exactly one *sign* per
binary model, private multiclass classification is simply one protocol
run per member model plus local voting — no new leakage beyond the
votes themselves.

* **one-vs-one**: ``K(K-1)/2`` pairwise models, majority vote.
* **one-vs-rest**: ``K`` models, argmax of decision values — note the
  private variant cannot use argmax (the values are amplified by
  incomparable ``r_a``), so OvR voting falls back to positive-sign
  counting with ties broken by training prevalence; OvO needs no such
  compromise and is the recommended private reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrainingError, ValidationError
from repro.ml.svm.model import SVMModel
from repro.ml.svm.smo import train_svm


@dataclass
class MulticlassModel:
    """A set of binary models implementing a K-class classifier.

    ``strategy`` is ``"ovo"`` or ``"ovr"``.  For OvO, ``members`` maps
    ``(class_a, class_b)`` (with ``class_a < class_b``) to the binary
    model trained with ``class_a -> +1`` and ``class_b -> -1``.  For
    OvR, ``members`` maps ``(class_k, None)`` to the model with
    ``class_k -> +1``, rest ``-> -1``.
    """

    classes: Tuple[float, ...]
    strategy: str
    members: Dict[Tuple[float, Optional[float]], SVMModel]
    prevalence: Dict[float, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.strategy not in ("ovo", "ovr"):
            raise ValidationError(f"unknown strategy {self.strategy!r}")
        if len(self.classes) < 2:
            raise ValidationError("a multiclass model needs at least 2 classes")

    @property
    def n_members(self) -> int:
        """Number of binary member models."""
        return len(self.members)

    @property
    def dimension(self) -> int:
        """Input dimensionality."""
        return next(iter(self.members.values())).dimension

    # -- plaintext prediction ------------------------------------------------

    def predict_one(self, sample: Sequence[float]) -> float:
        """Classify one sample in the clear."""
        sample = np.asarray(sample, dtype=float)
        votes = self._votes(
            {
                key: (model.decision_value(sample) >= 0.0)
                for key, model in self.members.items()
            }
        )
        return self._decide(votes)

    def predict(self, samples: np.ndarray) -> np.ndarray:
        """Vectorized plaintext prediction."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2:
            raise ValidationError("samples must be a 2-D array")
        return np.asarray([self.predict_one(row) for row in samples])

    # -- voting ---------------------------------------------------------------

    def _votes(self, signs: Dict[Tuple[float, Optional[float]], bool]) -> Dict[float, int]:
        votes: Dict[float, int] = {label: 0 for label in self.classes}
        for (first, second), positive in signs.items():
            if self.strategy == "ovo":
                winner = first if positive else second
                votes[winner] += 1
            else:
                if positive:
                    votes[first] += 1
        return votes

    def _decide(self, votes: Dict[float, int]) -> float:
        best = max(votes.values())
        tied = [label for label, count in votes.items() if count == best]
        if len(tied) == 1:
            return tied[0]
        # Ties (including the OvR all-negative case) break toward the
        # most prevalent training class, then the smallest label.
        return max(
            sorted(tied),
            key=lambda label: (self.prevalence.get(label, 0), -label),
        )


def train_multiclass(
    X: np.ndarray,
    y: np.ndarray,
    strategy: str = "ovo",
    kernel: str = "linear",
    C: float = 1.0,
    seed: int = 0,
    **kernel_params,
) -> MulticlassModel:
    """Train a multiclass model by the chosen reduction."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.shape[0] != y.shape[0]:
        raise ValidationError("X and y must have the same number of rows")
    classes = tuple(sorted(float(c) for c in np.unique(y)))
    if len(classes) < 2:
        raise TrainingError("training data must contain at least 2 classes")
    prevalence = {label: int(np.sum(y == label)) for label in classes}
    members: Dict[Tuple[float, Optional[float]], SVMModel] = {}
    if strategy == "ovo":
        for first, second in combinations(classes, 2):
            mask = (y == first) | (y == second)
            binary_labels = np.where(y[mask] == first, 1.0, -1.0)
            members[(first, second)] = train_svm(
                X[mask], binary_labels, kernel=kernel, C=C, seed=seed,
                **kernel_params,
            )
    elif strategy == "ovr":
        for label in classes:
            binary_labels = np.where(y == label, 1.0, -1.0)
            members[(label, None)] = train_svm(
                X, binary_labels, kernel=kernel, C=C, seed=seed, **kernel_params
            )
    else:
        raise ValidationError(f"unknown strategy {strategy!r}")
    return MulticlassModel(
        classes=classes,
        strategy=strategy,
        members=members,
        prevalence=prevalence,
    )


@dataclass(frozen=True)
class PrivateMulticlassOutcome:
    """Result of a private multiclass classification.

    ``votes`` is what the client can legitimately derive (one sign per
    member model); ``total_bytes`` aggregates all member protocol runs.
    """

    label: float
    votes: Dict[float, int]
    total_bytes: int
    total_rounds: int


def private_classify_multiclass(
    model: MulticlassModel,
    sample: Sequence[float],
    config=None,
    seed: Optional[int] = None,
) -> PrivateMulticlassOutcome:
    """Classify one sample against every member model privately.

    Each member run releases only an amplified decision value; the
    client extracts the sign (its vote) and tallies locally.
    """
    from repro.core.classification import private_classify
    from repro.utils.rng import ReproRandom

    root = ReproRandom(seed)
    signs: Dict[Tuple[float, Optional[float]], bool] = {}
    total_bytes = 0
    total_rounds = 0
    for index, (key, member) in enumerate(sorted(model.members.items(),
                                                 key=lambda item: str(item[0]))):
        outcome = private_classify(
            member, sample, config=config, seed=root.fork("member", index).seed
        )
        signs[key] = outcome.label > 0
        total_bytes += outcome.report.total_bytes
        total_rounds += outcome.report.rounds
    votes = model._votes(signs)
    return PrivateMulticlassOutcome(
        label=model._decide(votes),
        votes=votes,
        total_bytes=total_bytes,
        total_rounds=total_rounds,
    )
