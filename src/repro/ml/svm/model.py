"""The trained SVM artifact consumed by the privacy protocols.

An :class:`SVMModel` stores exactly what LIBSVM would emit — support
vectors, their labels, dual coefficients ``α_s``, the bias ``b``, and
the kernel — and exposes the decision function

    d(t) = Σ_s α_s y_s K(x_s, t) + b              (paper Eq. 1)

plus the derived representations the protocols need:

* ``weight_vector()`` — the primal ``w`` (linear kernels only), used by
  both the linear classification protocol and the similarity metric;
* ``decision_polynomial()`` — the decision function as an exact
  :class:`~repro.math.multivariate.MultivariatePolynomial`, used by the
  OMPE sender (linear: degree 1; polynomial kernel: degree p via the
  multinomial expansion of Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.math import fastpath
from repro.math.multinomial import compositions, multinomial_coefficient
from repro.math.multivariate import MultivariatePolynomial
from repro.ml.kernels import Kernel, linear_kernel

#: Denominator used when snapping float model coefficients to exact
#: rationals for the protocol layer.  2^40 keeps doubles nearly exact.
_EXACT_DENOMINATOR = 1 << 40


def _to_fraction(value: float) -> Fraction:
    return Fraction(round(float(value) * _EXACT_DENOMINATOR), _EXACT_DENOMINATOR)


@dataclass
class SVMModel:
    """A trained binary SVM.

    Attributes
    ----------
    support_vectors:
        Array of shape ``(n_sv, dimension)``.
    dual_coefficients:
        ``α_s y_s`` products, shape ``(n_sv,)`` (signed, as LIBSVM stores).
    bias:
        The intercept ``b``.
    kernel:
        The kernel used in training.
    kernel_spec:
        ``(name, params)`` so the model can be serialized/rebuilt.
    """

    support_vectors: np.ndarray
    dual_coefficients: np.ndarray
    bias: float
    kernel: Kernel
    kernel_spec: Tuple[str, dict] = field(default_factory=lambda: ("linear", {}))

    def __post_init__(self) -> None:
        self.support_vectors = np.asarray(self.support_vectors, dtype=float)
        self.dual_coefficients = np.asarray(self.dual_coefficients, dtype=float)
        if self.support_vectors.ndim != 2:
            raise ValidationError("support_vectors must be a 2-D array")
        if self.dual_coefficients.shape != (self.support_vectors.shape[0],):
            raise ValidationError(
                "dual_coefficients must align with support_vectors rows"
            )
        if self.support_vectors.shape[0] == 0:
            raise ValidationError("a model needs at least one support vector")

    # -- basic interface -------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Input dimensionality ``n``."""
        return int(self.support_vectors.shape[1])

    @property
    def n_support(self) -> int:
        """Number of support vectors ``|S|``."""
        return int(self.support_vectors.shape[0])

    def decision_value(self, point: Sequence[float]) -> float:
        """Evaluate ``d(t)`` at one point."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise ValidationError(
                f"point must have shape ({self.dimension},), got {point.shape}"
            )
        row = self.kernel.gram(self.support_vectors, point[None, :])[:, 0]
        return float(np.dot(self.dual_coefficients, row) + self.bias)

    def decision_values(self, points: np.ndarray) -> np.ndarray:
        """Vectorized ``d(t)`` over rows of ``points``."""
        points = np.asarray(points, dtype=float)
        gram = self.kernel.gram(points, self.support_vectors)
        return gram @ self.dual_coefficients + self.bias

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Class labels in {-1, +1} (0 decision values resolve to +1)."""
        values = self.decision_values(points)
        return np.where(values >= 0.0, 1.0, -1.0)

    # -- protocol-facing representations ------------------------------------------

    def is_linear(self) -> bool:
        """True when the model was trained with the linear kernel."""
        return self.kernel_spec[0] == "linear"

    def weight_vector(self) -> np.ndarray:
        """Primal weights ``w = Σ α_s y_s x_s`` (linear kernel only)."""
        if not self.is_linear():
            raise ValidationError(
                "weight_vector is defined only for linear-kernel models"
            )
        return self.dual_coefficients @ self.support_vectors

    def linear_decision_polynomial(self) -> MultivariatePolynomial:
        """Exact degree-1 polynomial ``w · t + b`` (paper Section IV-A)."""
        weights = [_to_fraction(w) for w in self.weight_vector()]
        return MultivariatePolynomial.affine(weights, _to_fraction(self.bias))

    def polynomial_decision_polynomial(self) -> MultivariatePolynomial:
        """Exact degree-``p`` polynomial for a polynomial-kernel model.

        Implements the multinomial expansion of Section IV-B:

            d(t) = Σ_{k1+..+kn=p} [Σ_s α_s y_s C(p;k) a0^p Π x_si^ki] Π t_i^ki
                   + (terms from b0) + b

        Only feasible for small ``n``; raises when the monomial count
        would exceed a safety cap (use the direct-evaluation protocol
        variant instead — see DESIGN.md §5).
        """
        name, params = self.kernel_spec
        if name not in ("poly", "polynomial"):
            raise ValidationError(
                "polynomial_decision_polynomial requires a polynomial kernel"
            )
        degree = int(params.get("degree", 3))
        a0 = _to_fraction(params.get("a0", 1.0))
        b0 = _to_fraction(params.get("b0", 0.0))
        n = self.dimension
        from repro.math.multinomial import count_compositions

        cap = 200_000
        total_terms = sum(
            count_compositions(d, n) for d in range(0, degree + 1)
        )
        if total_terms > cap:
            raise ValidationError(
                f"expansion would create {total_terms} monomials (cap {cap}); "
                "use the direct-evaluation nonlinear protocol instead"
            )
        duals = [_to_fraction(c) for c in self.dual_coefficients]
        svs = [[_to_fraction(v) for v in row] for row in self.support_vectors]
        terms = {}
        # (a0 x·t + b0)^p = Σ_{j=0..p} C(p, j) a0^j b0^{p-j} (x·t)^j
        import math as _math

        for j in range(degree + 1):
            outer = _math.comb(degree, j) * a0**j * b0 ** (degree - j)
            if outer == 0:
                continue
            for exponents in compositions(j, n):
                multi = multinomial_coefficient(j, exponents)
                coefficient = Fraction(0)
                for dual, sv in zip(duals, svs):
                    product = Fraction(multi)
                    for value, exponent in zip(sv, exponents):
                        if exponent:
                            product *= value**exponent
                    coefficient += dual * product
                coefficient *= outer
                if coefficient:
                    key = tuple(exponents)
                    terms[key] = terms.get(key, Fraction(0)) + coefficient
        constant_key = tuple([0] * n)
        terms[constant_key] = terms.get(constant_key, Fraction(0)) + _to_fraction(
            self.bias
        )
        return MultivariatePolynomial(n, terms)

    def decision_polynomial(self) -> MultivariatePolynomial:
        """Exact polynomial form of ``d(t)`` for OMPE (dispatches on kernel)."""
        if self.is_linear():
            return self.linear_decision_polynomial()
        return self.polynomial_decision_polynomial()

    def _exact_scaled_form(self):
        """Scaled-integer form of the snapped model, built once per model.

        The model is treated as immutable after construction (as every
        protocol does); the cache holds the snapped duals / support
        vectors / kernel constants rescaled onto common integer
        denominators so :meth:`exact_decision_value` can run the per-SV
        kernel loop in plain integer arithmetic.
        """
        cached = self.__dict__.get("_scaled_form_cache")
        if cached is not None:
            return cached
        name, params = self.kernel_spec
        duals = [_to_fraction(c) for c in self.dual_coefficients]
        dual_numerators, dual_den, _ = fastpath.scale_to_integers(duals)
        flat = [_to_fraction(v) for row in self.support_vectors for v in row]
        sv_numerators_flat, sv_den, _ = fastpath.scale_to_integers(flat)
        dimension = self.dimension
        sv_numerators = [
            sv_numerators_flat[row * dimension : (row + 1) * dimension]
            for row in range(self.n_support)
        ]
        form = {
            "bias": _to_fraction(self.bias),
            "dual_numerators": dual_numerators,
            "dual_den": dual_den,
            "sv_numerators": sv_numerators,
            "sv_den": sv_den,
        }
        if name in ("poly", "polynomial"):
            form["degree"] = int(params.get("degree", 3))
            form["a0"] = _to_fraction(params.get("a0", 1.0))
            form["b0"] = _to_fraction(params.get("b0", 0.0))
        elif name == "linear":
            weights = [_to_fraction(w) for w in self.weight_vector()]
            numerators, den, _ = fastpath.scale_to_integers(weights)
            form["weight_numerators"] = numerators
            form["weight_den"] = den
        self.__dict__["_scaled_form_cache"] = form
        return form

    def _exact_decision_value_fast(self, exact_point: Sequence[Fraction]):
        """Scaled-integer evaluation of ``d(t)`` (bit-identical to naive).

        Every operand is a snapped :class:`Fraction`, so the naive loop
        always returns a canonical ``Fraction``; computing one big
        integer numerator and normalising once yields the same canonical
        value without a gcd per multiply-add.
        """
        scaled_point = fastpath.scale_to_integers(exact_point)
        if scaled_point is None:
            return fastpath.MISS
        point_numerators, point_den, _ = scaled_point
        form = self._exact_scaled_form()
        bias = form["bias"]
        name = self.kernel_spec[0]
        if name == "linear":
            numerator = sum(
                w * c for w, c in zip(form["weight_numerators"], point_numerators)
            )
            den = form["weight_den"] * point_den
            return Fraction(bias.numerator * den + bias.denominator * numerator,
                            bias.denominator * den)
        degree = form["degree"]
        a0, b0 = form["a0"], form["b0"]
        # inner = a0 · (sv·t) + b0 over the common denominator:
        # kernel = (inner_scale·dot + inner_shift)^p / kernel_den^p.
        base_den = a0.denominator * form["sv_den"] * point_den
        inner_scale = a0.numerator * b0.denominator
        inner_shift = b0.numerator * base_den
        kernel_den = base_den * b0.denominator
        total = 0
        for dual_num, sv_row in zip(form["dual_numerators"], form["sv_numerators"]):
            dot = sum(a * b for a, b in zip(sv_row, point_numerators))
            total += dual_num * (inner_scale * dot + inner_shift) ** degree
        den = form["dual_den"] * kernel_den**degree
        return Fraction(bias.numerator * den + bias.denominator * total,
                        bias.denominator * den)

    def exact_decision_value(self, point: Sequence) -> Fraction:
        """Exact (Fraction) evaluation of ``d`` via the kernel form.

        Matches :meth:`decision_polynomial` for linear and polynomial
        kernels, but with cost independent of the monomial count — this
        is what the direct-evaluation OMPE sender uses.
        """
        name, params = self.kernel_spec
        exact_point = [Fraction(v) if not isinstance(v, Fraction) else v for v in point]
        if len(exact_point) != self.dimension:
            raise ValidationError(
                f"point must have {self.dimension} coordinates, got {len(exact_point)}"
            )
        if fastpath.enabled() and name in ("linear", "poly", "polynomial"):
            value = self._exact_decision_value_fast(exact_point)
            if value is not fastpath.MISS:
                return value
        duals = [_to_fraction(c) for c in self.dual_coefficients]
        svs = [[_to_fraction(v) for v in row] for row in self.support_vectors]
        total = _to_fraction(self.bias)
        if name == "linear":
            # Snap the collapsed weight vector (matching
            # linear_decision_polynomial) so the two representations
            # agree bit-for-bit.
            weights = [_to_fraction(w) for w in self.weight_vector()]
            for weight, coordinate in zip(weights, exact_point):
                total += weight * coordinate
            return total
        if name in ("poly", "polynomial"):
            degree = int(params.get("degree", 3))
            a0 = _to_fraction(params.get("a0", 1.0))
            b0 = _to_fraction(params.get("b0", 0.0))
            for dual, sv in zip(duals, svs):
                dot = sum(a * b for a, b in zip(sv, exact_point))
                total += dual * (a0 * dot + b0) ** degree
            return total
        raise ValidationError(
            f"exact evaluation unsupported for kernel {name!r}; "
            "polynomialize it first (repro.math.taylor)"
        )


def make_linear_model(
    weights: Sequence[float], bias: float
) -> SVMModel:
    """Build a linear model directly from ``(w, b)`` (for tests/examples).

    Represents ``w`` as a single synthetic support vector with dual
    coefficient 1, which yields exactly ``d(t) = w·t + b``.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValidationError("weights must be a non-empty 1-D vector")
    return SVMModel(
        support_vectors=weights[None, :],
        dual_coefficients=np.array([1.0]),
        bias=float(bias),
        kernel=linear_kernel(),
        kernel_spec=("linear", {}),
    )
