"""K-fold cross-validation and soft-margin grid search.

The paper fixes kernel parameters (p = 3, a0 = 1/n, b0 = 0) but never
reports its soft-margin C; LIBSVM practice is to cross-validate it.
This module provides the standard machinery: stratified k-fold
splitting, CV accuracy for a parameter set, and a C grid search — the
tool used to pick the per-dataset C values recorded in
``repro.ml.datasets.registry``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrainingError, ValidationError
from repro.ml.svm.metrics import accuracy
from repro.ml.svm.smo import train_svm


def stratified_folds(
    y: np.ndarray, folds: int, seed: int = 0
) -> List[np.ndarray]:
    """Split indices into ``folds`` class-balanced folds.

    Each fold receives a proportional share of every class, so small
    datasets never produce a single-class training split.
    """
    y = np.asarray(y, dtype=float)
    if folds < 2:
        raise ValidationError(f"folds must be at least 2, got {folds}")
    if y.shape[0] < 2 * folds:
        raise ValidationError(
            f"{y.shape[0]} samples cannot fill {folds} folds meaningfully"
        )
    rng = np.random.default_rng(seed)
    assignments: List[List[int]] = [[] for _ in range(folds)]
    for label in np.unique(y):
        indices = np.where(y == label)[0]
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            assignments[position % folds].append(int(index))
    return [np.asarray(sorted(fold)) for fold in assignments]


def cross_validate(
    X: np.ndarray,
    y: np.ndarray,
    kernel: str = "linear",
    C: float = 1.0,
    folds: int = 5,
    seed: int = 0,
    **kernel_params,
) -> Tuple[float, List[float]]:
    """K-fold CV accuracy; returns (mean, per-fold scores).

    A fold whose training split fails to converge contributes a score
    of 0 rather than aborting the sweep — grid search should rank such
    a configuration last, not crash.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.shape[0] != y.shape[0]:
        raise ValidationError("X and y must have the same number of rows")
    fold_indices = stratified_folds(y, folds, seed)
    scores: List[float] = []
    for hold_out in fold_indices:
        mask = np.ones(X.shape[0], dtype=bool)
        mask[hold_out] = False
        try:
            model = train_svm(
                X[mask], y[mask], kernel=kernel, C=C, seed=seed, **kernel_params
            )
            scores.append(accuracy(model.predict(X[hold_out]), y[hold_out]))
        except TrainingError:
            scores.append(0.0)
    return float(np.mean(scores)), scores


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of a C grid search."""

    best_C: float
    best_score: float
    scores: Dict[float, float]

    def ranking(self) -> List[Tuple[float, float]]:
        """(C, score) pairs, best first (ties broken toward smaller C)."""
        return sorted(self.scores.items(), key=lambda item: (-item[1], item[0]))


def grid_search_C(
    X: np.ndarray,
    y: np.ndarray,
    kernel: str = "linear",
    C_grid: Optional[Sequence[float]] = None,
    folds: int = 5,
    seed: int = 0,
    **kernel_params,
) -> GridSearchResult:
    """Pick the soft-margin C by cross-validated accuracy.

    The default grid is the LIBSVM guide's exponential sweep.
    """
    grid = list(C_grid) if C_grid is not None else [2.0**k for k in range(-3, 11, 2)]
    if not grid:
        raise ValidationError("C grid must be non-empty")
    if any(c <= 0 for c in grid):
        raise ValidationError("every C must be positive")
    scores: Dict[float, float] = {}
    for C in grid:
        mean_score, _ = cross_validate(
            X, y, kernel=kernel, C=C, folds=folds, seed=seed, **kernel_params
        )
        scores[C] = mean_score
    best_C, best_score = max(
        scores.items(), key=lambda item: (item[1], -item[0])
    )
    return GridSearchResult(best_C=best_C, best_score=best_score, scores=scores)
