"""Feature scaling to ``[-1, 1]``.

The paper's experiments note "all the data have been scaled to
[-1, 1]"; the similarity metric also assumes the bounded data space
``[α, β] = [-1, 1]`` (Section V-B.1).  :class:`MinMaxScaler` learns the
per-feature affine map on training data and applies it to test data,
exactly like ``svm-scale`` in the LIBSVM toolchain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError


@dataclass
class MinMaxScaler:
    """Affine per-feature scaler onto ``[lower, upper]``.

    Constant features (max == min) map to the interval midpoint.
    """

    lower: float = -1.0
    upper: float = 1.0
    minimums: Optional[np.ndarray] = field(default=None, repr=False)
    maximums: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.lower >= self.upper:
            raise ValidationError(
                f"lower ({self.lower}) must be below upper ({self.upper})"
            )

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        """Learn per-feature ranges from ``X`` (rows are samples)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValidationError("X must be a non-empty 2-D array")
        self.minimums = X.min(axis=0)
        self.maximums = X.max(axis=0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned map; out-of-range values are clipped."""
        if self.minimums is None or self.maximums is None:
            raise ValidationError("transform called before fit")
        X = np.asarray(X, dtype=float)
        spans = self.maximums - self.minimums
        safe_spans = np.where(spans == 0.0, 1.0, spans)
        unit = (X - self.minimums) / safe_spans
        unit = np.where(spans == 0.0, 0.5, unit)
        scaled = self.lower + (self.upper - self.lower) * unit
        return np.clip(scaled, self.lower, self.upper)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)
