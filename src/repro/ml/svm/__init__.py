"""From-scratch SVM training and models (LIBSVM substitute)."""

from repro.ml.svm.grid import (
    GridSearchResult,
    cross_validate,
    grid_search_C,
    stratified_folds,
)
from repro.ml.svm.metrics import ConfusionMatrix, accuracy, train_test_split
from repro.ml.svm.model import SVMModel, make_linear_model
from repro.ml.svm.multiclass import (
    MulticlassModel,
    PrivateMulticlassOutcome,
    private_classify_multiclass,
    train_multiclass,
)
from repro.ml.svm.persistence import load_model, model_from_dict, model_to_dict, save_model
from repro.ml.svm.scaling import MinMaxScaler
from repro.ml.svm.smo import SMOConfig, SMOTrainer, train_svm

__all__ = [
    "GridSearchResult",
    "cross_validate",
    "grid_search_C",
    "stratified_folds",
    "ConfusionMatrix",
    "accuracy",
    "train_test_split",
    "SVMModel",
    "make_linear_model",
    "MulticlassModel",
    "PrivateMulticlassOutcome",
    "private_classify_multiclass",
    "train_multiclass",
    "load_model",
    "model_from_dict",
    "model_to_dict",
    "save_model",
    "MinMaxScaler",
    "SMOConfig",
    "SMOTrainer",
    "train_svm",
]
