"""Sequential Minimal Optimization for soft-margin binary SVMs.

A from-scratch LIBSVM substitute (the paper trains with LIBSVM; see
DESIGN.md §4).  Solves the dual problem

    max  Σ α_i − ½ Σ_ij α_i α_j y_i y_j K(x_i, x_j)
    s.t. 0 ≤ α_i ≤ C,  Σ α_i y_i = 0

with Platt's SMO: repeatedly pick a pair of multipliers violating the
KKT conditions, solve the two-variable subproblem analytically, and
update the error cache.  Second-choice heuristic maximizes ``|E1 − E2|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import TrainingError, ValidationError
from repro.ml.kernels import Kernel, linear_kernel, make_kernel
from repro.ml.svm.model import SVMModel
from repro.utils.rng import ReproRandom


@dataclass
class SMOConfig:
    """Hyperparameters for the SMO solver.

    Attributes
    ----------
    C:
        Soft-margin penalty.
    tolerance:
        KKT violation tolerance (LIBSVM's ``-e``).
    max_passes:
        Consecutive full passes without updates before declaring
        convergence.
    max_iterations:
        Hard cap on pair updates (guards pathological inputs).
    seed:
        Seed for the tie-breaking randomness in the second-choice
        heuristic.
    """

    C: float = 1.0
    tolerance: float = 1e-3
    max_passes: int = 3
    max_iterations: int = 200_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.C <= 0:
            raise ValidationError(f"C must be positive, got {self.C}")
        if self.tolerance <= 0:
            raise ValidationError(f"tolerance must be positive, got {self.tolerance}")


class SMOTrainer:
    """Trains :class:`~repro.ml.svm.model.SVMModel` objects via SMO."""

    def __init__(
        self,
        kernel_name: str = "linear",
        kernel_params: Optional[dict] = None,
        config: Optional[SMOConfig] = None,
    ) -> None:
        self.kernel_name = kernel_name
        self.kernel_params = dict(kernel_params or {})
        self.config = config or SMOConfig()
        self.kernel: Kernel = (
            linear_kernel()
            if kernel_name == "linear"
            else make_kernel(kernel_name, **self.kernel_params)
        )

    # -- public API --------------------------------------------------------

    def train(self, X: np.ndarray, y: np.ndarray) -> SVMModel:
        """Train on data ``X`` (rows) with labels ``y`` in {-1, +1}."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValidationError("X must be a 2-D array")
        if y.shape != (X.shape[0],):
            raise ValidationError("y must align with the rows of X")
        labels = set(np.unique(y).tolist())
        if not labels <= {-1.0, 1.0}:
            raise ValidationError(f"labels must be in {{-1, +1}}, got {sorted(labels)}")
        if len(labels) < 2:
            raise TrainingError("training data must contain both classes")

        alphas, bias = self._solve(X, y)
        support = alphas > 1e-8
        if not np.any(support):
            raise TrainingError("SMO produced no support vectors")
        return SVMModel(
            support_vectors=X[support],
            dual_coefficients=(alphas * y)[support],
            bias=bias,
            kernel=self.kernel,
            kernel_spec=(self.kernel_name, dict(self.kernel_params)),
        )

    # -- solver ----------------------------------------------------------------

    def _solve(self, X: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, float]:
        n = X.shape[0]
        C = self.config.C
        tol = self.config.tolerance
        rng = ReproRandom(self.config.seed)

        gram = self.kernel.gram(X, X)
        alphas = np.zeros(n)
        bias = 0.0
        # Error cache: E_i = f(x_i) − y_i, with f from current alphas.
        errors = -y.astype(float).copy()

        def update_pair(i: int, j: int) -> bool:
            nonlocal bias
            if i == j:
                return False
            alpha_i_old, alpha_j_old = alphas[i], alphas[j]
            y_i, y_j = y[i], y[j]
            e_i, e_j = errors[i], errors[j]
            if y_i != y_j:
                low = max(0.0, alpha_j_old - alpha_i_old)
                high = min(C, C + alpha_j_old - alpha_i_old)
            else:
                low = max(0.0, alpha_i_old + alpha_j_old - C)
                high = min(C, alpha_i_old + alpha_j_old)
            if high - low < 1e-12:
                return False
            eta = gram[i, i] + gram[j, j] - 2.0 * gram[i, j]
            if eta <= 1e-12:
                return False
            alpha_j_new = alpha_j_old + y_j * (e_i - e_j) / eta
            alpha_j_new = min(high, max(low, alpha_j_new))
            if abs(alpha_j_new - alpha_j_old) < 1e-7 * (alpha_j_new + alpha_j_old + 1e-7):
                return False
            alpha_i_new = alpha_i_old + y_i * y_j * (alpha_j_old - alpha_j_new)

            b1 = (
                bias
                - e_i
                - y_i * (alpha_i_new - alpha_i_old) * gram[i, i]
                - y_j * (alpha_j_new - alpha_j_old) * gram[i, j]
            )
            b2 = (
                bias
                - e_j
                - y_i * (alpha_i_new - alpha_i_old) * gram[i, j]
                - y_j * (alpha_j_new - alpha_j_old) * gram[j, j]
            )
            if 0.0 < alpha_i_new < C:
                bias_new = b1
            elif 0.0 < alpha_j_new < C:
                bias_new = b2
            else:
                bias_new = 0.5 * (b1 + b2)

            delta_i = y_i * (alpha_i_new - alpha_i_old)
            delta_j = y_j * (alpha_j_new - alpha_j_old)
            errors[:] += delta_i * gram[i, :] + delta_j * gram[j, :] + (bias_new - bias)
            alphas[i], alphas[j] = alpha_i_new, alpha_j_new
            bias = bias_new
            return True

        def examine(j: int) -> int:
            e_j = errors[j]
            r_j = e_j * y[j]
            if (r_j < -tol and alphas[j] < C) or (r_j > tol and alphas[j] > 0):
                non_bound = np.where((alphas > 1e-8) & (alphas < C - 1e-8))[0]
                # Heuristic 1: maximize |E_i − E_j| over non-bound points.
                if non_bound.size > 1:
                    i = int(non_bound[np.argmax(np.abs(errors[non_bound] - e_j))])
                    if update_pair(i, j):
                        return 1
                # Heuristic 2: loop over non-bound points from random start.
                if non_bound.size:
                    start = rng.randint(0, max(0, non_bound.size - 1))
                    for offset in range(non_bound.size):
                        i = int(non_bound[(start + offset) % non_bound.size])
                        if update_pair(i, j):
                            return 1
                # Heuristic 3: loop over everything from random start.
                start = rng.randint(0, n - 1)
                for offset in range(n):
                    i = (start + offset) % n
                    if update_pair(i, j):
                        return 1
            return 0

        iterations = 0
        passes_without_change = 0
        examine_all = True
        while passes_without_change < self.config.max_passes:
            changed = 0
            if examine_all:
                candidates = range(n)
            else:
                candidates = np.where((alphas > 1e-8) & (alphas < C - 1e-8))[0]
            for j in candidates:
                changed += examine(int(j))
                iterations += 1
                if iterations > self.config.max_iterations:
                    # Return the best-so-far solution; tests assert
                    # convergence on sane data well before this.
                    return alphas, bias
            if examine_all:
                examine_all = False
            elif changed == 0:
                examine_all = True
                passes_without_change += 1
            if changed == 0 and not examine_all:
                passes_without_change += 1
        return alphas, bias


def train_svm(
    X: np.ndarray,
    y: np.ndarray,
    kernel: str = "linear",
    C: float = 1.0,
    tolerance: float = 1e-3,
    seed: int = 0,
    **kernel_params,
) -> SVMModel:
    """One-call training convenience wrapper."""
    trainer = SMOTrainer(
        kernel_name=kernel,
        kernel_params=kernel_params,
        config=SMOConfig(C=C, tolerance=tolerance, seed=seed),
    )
    return trainer.train(X, y)
