"""Machine-learning substrate: kernels, SVM training, datasets."""

from repro.ml.kernels import (
    Kernel,
    linear_kernel,
    make_kernel,
    polynomial_kernel,
    rbf_kernel,
    sigmoid_kernel,
)
from repro.ml.svm import SVMModel, train_svm

__all__ = [
    "Kernel",
    "linear_kernel",
    "make_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "sigmoid_kernel",
    "SVMModel",
    "train_svm",
]
