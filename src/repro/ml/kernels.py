"""Kernel functions and their polynomialized forms.

The paper (Section III-A.2 and IV-B) uses three kernels:

* polynomial: ``K(x, y) = (a0 * x·y + b0)^p``
* radial basis function: ``K(x, y) = exp(-gamma * ||x - y||^2)``
* sigmoid: ``K(x, y) = tanh(a0 * x·y + c0)``

For the privacy-preserving protocols each kernel must be expressible as
a polynomial in the client's input; the polynomial kernel is natively
so, and the other two are truncated with
:mod:`repro.math.taylor` ("use a large number p to approximate the
infinity").  Note the paper's RBF formula drops the conventional
negative sign; we keep the standard ``exp(-gamma ||x-y||²)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np

from repro.exceptions import ValidationError

Vector = Union[Sequence[float], np.ndarray]


def _as_array(vector: Vector) -> np.ndarray:
    array = np.asarray(vector, dtype=float)
    if array.ndim != 1:
        raise ValidationError(f"expected a 1-D vector, got shape {array.shape}")
    return array


@dataclass(frozen=True)
class Kernel:
    """A named kernel with parameters and a vectorized gram computation."""

    name: str
    function: Callable[[np.ndarray, np.ndarray], float]
    gram_function: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, x: Vector, y: Vector) -> float:
        return float(self.function(_as_array(x), _as_array(y)))

    def gram(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Gram matrix ``K[i, j] = K(a_i, b_j)`` for row-major data."""
        return self.gram_function(np.asarray(a, float), np.asarray(b, float))


def linear_kernel() -> Kernel:
    """The plain dot product (no mapping)."""
    return Kernel(
        name="linear",
        function=lambda x, y: float(np.dot(x, y)),
        gram_function=lambda a, b: a @ b.T,
    )


def polynomial_kernel(degree: int = 3, a0: float = 1.0, b0: float = 0.0) -> Kernel:
    """``(a0 x·y + b0)^degree`` — paper default a0 = 1/n, b0 = 0, p = 3."""
    if degree < 1:
        raise ValidationError(f"degree must be at least 1, got {degree}")
    return Kernel(
        name=f"poly(p={degree},a0={a0},b0={b0})",
        function=lambda x, y: (a0 * float(np.dot(x, y)) + b0) ** degree,
        gram_function=lambda a, b: (a0 * (a @ b.T) + b0) ** degree,
    )


def rbf_kernel(gamma: float = 1.0) -> Kernel:
    """``exp(-gamma ||x - y||^2)``."""
    if gamma <= 0:
        raise ValidationError(f"gamma must be positive, got {gamma}")

    def gram(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq_a = np.sum(a * a, axis=1)[:, None]
        sq_b = np.sum(b * b, axis=1)[None, :]
        distances = np.maximum(sq_a + sq_b - 2.0 * (a @ b.T), 0.0)
        return np.exp(-gamma * distances)

    return Kernel(
        name=f"rbf(gamma={gamma})",
        function=lambda x, y: math.exp(-gamma * float(np.sum((x - y) ** 2))),
        gram_function=gram,
    )


def sigmoid_kernel(a0: float = 1.0, c0: float = 0.0) -> Kernel:
    """``tanh(a0 x·y + c0)``."""
    return Kernel(
        name=f"sigmoid(a0={a0},c0={c0})",
        function=lambda x, y: math.tanh(a0 * float(np.dot(x, y)) + c0),
        gram_function=lambda a, b: np.tanh(a0 * (a @ b.T) + c0),
    )


_FACTORIES = {
    "linear": linear_kernel,
    "poly": polynomial_kernel,
    "polynomial": polynomial_kernel,
    "rbf": rbf_kernel,
    "sigmoid": sigmoid_kernel,
}


def make_kernel(name: str, **parameters) -> Kernel:
    """Build a kernel by name (``linear``/``poly``/``rbf``/``sigmoid``)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValidationError(
            f"unknown kernel {name!r}; choose from {sorted(set(_FACTORIES))}"
        ) from None
    return factory(**parameters)
