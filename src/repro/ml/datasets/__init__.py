"""Datasets: synthetic generators, paper-analog registry, LIBSVM I/O."""

from repro.ml.datasets.loader import (
    format_libsvm,
    parse_libsvm,
    read_libsvm,
    write_libsvm,
)
from repro.ml.datasets.registry import (
    DatasetSpec,
    a_family_names,
    available_datasets,
    get_spec,
    load_dataset,
    table1_dataset_names,
)
from repro.ml.datasets.synthetic import (
    Dataset,
    concentric_circles,
    interaction_boundary,
    linear_boundary,
    offset_linear_boundary,
    polynomial_boundary,
    scaled_signal_boundary,
    two_gaussians,
    two_moons,
    xor_blocks,
)

__all__ = [
    "format_libsvm",
    "parse_libsvm",
    "read_libsvm",
    "write_libsvm",
    "DatasetSpec",
    "a_family_names",
    "available_datasets",
    "get_spec",
    "load_dataset",
    "table1_dataset_names",
    "Dataset",
    "concentric_circles",
    "interaction_boundary",
    "linear_boundary",
    "offset_linear_boundary",
    "polynomial_boundary",
    "scaled_signal_boundary",
    "two_gaussians",
    "two_moons",
    "xor_blocks",
]
