"""Synthetic binary-classification dataset generators.

The paper evaluates on 17 LIBSVM datasets; with no network access this
reproduction generates seeded synthetic analogs whose *geometry* is
chosen so the linear-vs-polynomial accuracy relationships of Table I
hold (see DESIGN.md §4).  Three boundary families cover the table:

* :func:`linear_boundary` — a true linear separator with label noise:
  both kernels do well (a1a, australian, ionosphere, breast-cancer).
* :func:`polynomial_boundary` — labels from a random degree-3 surface:
  the linear kernel underfits, the polynomial kernel recovers it
  (splice, madelon, german.numer).
* :func:`offset_linear_boundary` — a linear separator far from the
  origin: the paper's *homogeneous* polynomial kernel (b0 = 0) cannot
  represent the offset and collapses (cod-rna's 94.6% → 54.3% drop).

All generators return features in ``[-1, 1]`` (the paper scales all
data to that box) and labels in ``{-1, +1}``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DatasetError, ValidationError


@dataclass(frozen=True)
class Dataset:
    """A labelled dataset with train/test views.

    Attributes
    ----------
    name:
        Human-readable identifier.
    X_train, y_train, X_test, y_test:
        Feature rows in ``[-1, 1]`` and labels in ``{-1, +1}``.
    """

    name: str
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray

    def __post_init__(self) -> None:
        for split, X, y in (
            ("train", self.X_train, self.y_train),
            ("test", self.X_test, self.y_test),
        ):
            if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
                raise DatasetError(f"{self.name}: malformed {split} split")
            if X.shape[0] == 0:
                raise DatasetError(f"{self.name}: empty {split} split")
        if self.X_train.shape[1] != self.X_test.shape[1]:
            raise DatasetError(f"{self.name}: train/test dimensionality differs")

    @property
    def dimension(self) -> int:
        """Feature dimensionality."""
        return int(self.X_train.shape[1])

    @property
    def train_size(self) -> int:
        return int(self.X_train.shape[0])

    @property
    def test_size(self) -> int:
        return int(self.X_test.shape[0])


def _validate_counts(train_size: int, test_size: int, dimension: int) -> None:
    if train_size < 4:
        raise ValidationError(f"train_size must be at least 4, got {train_size}")
    if test_size < 1:
        raise ValidationError(f"test_size must be at least 1, got {test_size}")
    if dimension < 1:
        raise ValidationError(f"dimension must be at least 1, got {dimension}")


def _flip_labels(y: np.ndarray, noise: float, rng: np.random.Generator) -> np.ndarray:
    if not 0.0 <= noise < 0.5:
        raise ValidationError(f"noise must lie in [0, 0.5), got {noise}")
    flips = rng.random(y.shape[0]) < noise
    return np.where(flips, -y, y)


def _balanced_signs(values: np.ndarray) -> np.ndarray:
    """Labels from the sign of ``values``, splitting at the median.

    Subtracting the median guarantees roughly balanced classes no
    matter how skewed the generating surface is.
    """
    centered = values - np.median(values)
    labels = np.where(centered >= 0.0, 1.0, -1.0)
    return labels


def linear_boundary(
    name: str,
    dimension: int,
    train_size: int,
    test_size: int,
    noise: float = 0.05,
    margin: float = 0.0,
    seed: int = 0,
) -> Dataset:
    """Uniform points labelled by a random linear separator plus noise.

    ``margin`` removes points within that distance of the separator
    (larger margin → easier problem).
    """
    _validate_counts(train_size, test_size, dimension)
    rng = np.random.default_rng(seed)
    direction = rng.normal(size=dimension)
    direction /= np.linalg.norm(direction)
    total = train_size + test_size
    rows = []
    while sum(r.shape[0] for r in rows) < total:
        batch = rng.uniform(-1.0, 1.0, size=(max(total, 256), dimension))
        if margin > 0.0:
            distances = np.abs(batch @ direction)
            batch = batch[distances >= margin]
        rows.append(batch)
    X = np.vstack(rows)[:total]
    y = _balanced_signs(X @ direction)
    y = _flip_labels(y, noise, rng)
    return Dataset(
        name=name,
        X_train=X[:train_size],
        y_train=y[:train_size],
        X_test=X[train_size:],
        y_test=y[train_size:],
    )


def polynomial_boundary(
    name: str,
    dimension: int,
    train_size: int,
    test_size: int,
    degree: int = 3,
    noise: float = 0.02,
    active_dimensions: int = None,
    seed: int = 0,
) -> Dataset:
    """Labels from the sign of a random degree-``degree`` polynomial surface.

    Only ``active_dimensions`` features influence the label (madelon's
    informative-features structure); the rest are pure noise, which is
    what makes the linear kernel nearly useless on the analog.
    """
    _validate_counts(train_size, test_size, dimension)
    if degree < 2:
        raise ValidationError(f"degree must be at least 2, got {degree}")
    active = active_dimensions or min(dimension, 5)
    if not 1 <= active <= dimension:
        raise ValidationError(
            f"active_dimensions must lie in [1, {dimension}], got {active}"
        )
    rng = np.random.default_rng(seed)
    total = train_size + test_size
    X = rng.uniform(-1.0, 1.0, size=(total, dimension))
    used = X[:, :active]
    # Random cubic surface: pairwise/triple interactions of active dims.
    values = np.zeros(total)
    for _ in range(2 * active):
        picks = rng.integers(0, active, size=degree)
        coefficient = rng.normal()
        term = np.ones(total)
        for pick in picks:
            term = term * used[:, pick]
        values += coefficient * term
    y = _balanced_signs(values)
    y = _flip_labels(y, noise, rng)
    return Dataset(
        name=name,
        X_train=X[:train_size],
        y_train=y[:train_size],
        X_test=X[train_size:],
        y_test=y[train_size:],
    )


def offset_linear_boundary(
    name: str,
    dimension: int,
    train_size: int,
    test_size: int,
    offset: float = 0.6,
    noise: float = 0.04,
    seed: int = 0,
) -> Dataset:
    """A linear separator displaced from the origin.

    The paper's nonlinear experiments fix the *homogeneous* polynomial
    kernel (b0 = 0), which cannot express an affine offset: on this
    family the polynomial SVM drops toward chance while the linear SVM
    stays strong — the cod-rna row of Table I.
    """
    _validate_counts(train_size, test_size, dimension)
    if not 0.0 < offset < 1.0:
        raise ValidationError(f"offset must lie in (0, 1), got {offset}")
    rng = np.random.default_rng(seed)
    direction = np.abs(rng.normal(size=dimension))
    direction /= np.linalg.norm(direction)
    total = train_size + test_size
    X = rng.uniform(-1.0, 1.0, size=(total, dimension))
    raw = X @ direction - offset
    y = np.where(raw >= 0.0, 1.0, -1.0)
    # Rebalance: shift a random subset across the plane when too skewed.
    positive_fraction = float(np.mean(y == 1.0))
    if positive_fraction < 0.25:
        deficit = int((0.4 - positive_fraction) * total)
        candidates = np.where(y == -1.0)[0]
        chosen = rng.choice(candidates, size=min(deficit, candidates.size), replace=False)
        X[chosen] += np.outer(
            offset - (X[chosen] @ direction) + rng.uniform(0.02, 0.3, chosen.size),
            direction,
        )
        X = np.clip(X, -1.0, 1.0)
        y = np.where(X @ direction - offset >= 0.0, 1.0, -1.0)
    y = _flip_labels(y, noise, rng)
    return Dataset(
        name=name,
        X_train=X[:train_size],
        y_train=y[:train_size],
        X_test=X[train_size:],
        y_test=y[train_size:],
    )


def interaction_boundary(
    name: str,
    dimension: int,
    train_size: int,
    test_size: int,
    linear_mix: float = 0.0,
    noise: float = 0.0,
    margin: float = 0.0,
    seed: int = 0,
) -> Dataset:
    """Labels from ``x0·x1·x2 + linear_mix·x3`` — a pure cubic interaction.

    The triple product is orthogonal to every linear function on the
    uniform box, so the linear kernel scores near chance while a
    degree-3 polynomial kernel can represent the surface exactly;
    ``linear_mix`` blends in a linear term to raise the linear kernel's
    floor (the german.numer / diabetes rows of Table I).  ``margin``
    drops points with ``|surface|`` below it (cleaner boundary → higher
    polynomial ceiling, the madelon row's 100%).
    """
    _validate_counts(train_size, test_size, dimension)
    minimum_dims = 4 if linear_mix else 3
    if dimension < minimum_dims:
        raise ValidationError(
            f"interaction_boundary needs at least {minimum_dims} dimensions"
        )
    rng = np.random.default_rng(seed)
    total = train_size + test_size
    rows = []
    collected = 0
    while collected < total:
        batch = rng.uniform(-1.0, 1.0, size=(max(total, 512), dimension))
        surface = batch[:, 0] * batch[:, 1] * batch[:, 2]
        if linear_mix:
            surface = surface + linear_mix * batch[:, 3]
        if margin > 0.0:
            keep = np.abs(surface) >= margin
            batch = batch[keep]
        rows.append(batch)
        collected += batch.shape[0]
    X = np.vstack(rows)[:total]
    surface = X[:, 0] * X[:, 1] * X[:, 2]
    if linear_mix:
        surface = surface + linear_mix * X[:, 3]
    y = np.where(surface >= 0.0, 1.0, -1.0)
    y = _flip_labels(y, noise, rng)
    return Dataset(
        name=name,
        X_train=X[:train_size],
        y_train=y[:train_size],
        X_test=X[train_size:],
        y_test=y[train_size:],
    )


def scaled_signal_boundary(
    name: str,
    dimension: int,
    train_size: int,
    test_size: int,
    signal_dimensions: int = 2,
    signal_scale: float = 0.12,
    noise: float = 0.02,
    seed: int = 0,
) -> Dataset:
    """Low-amplitude signal features among full-range nuisance features.

    The label depends only on the first ``signal_dimensions`` features,
    which are squeezed to ``[-signal_scale, signal_scale]``.  A linear
    SVM simply upweights them; the paper's *homogeneous* polynomial
    kernel ``(x·y / n)^3`` is dominated by the high-variance nuisance
    coordinates and collapses toward majority voting — reproducing the
    cod-rna row of Table I (94.6% linear vs 54.3% polynomial).
    """
    _validate_counts(train_size, test_size, dimension)
    if not 1 <= signal_dimensions < dimension:
        raise ValidationError(
            f"signal_dimensions must lie in [1, {dimension}), got {signal_dimensions}"
        )
    if not 0.0 < signal_scale <= 1.0:
        raise ValidationError(f"signal_scale must lie in (0, 1], got {signal_scale}")
    rng = np.random.default_rng(seed)
    total = train_size + test_size
    X = rng.uniform(-1.0, 1.0, size=(total, dimension))
    X[:, :signal_dimensions] *= signal_scale
    weights = np.linspace(1.0, 0.75, signal_dimensions)
    surface = X[:, :signal_dimensions] @ weights
    y = _balanced_signs(surface)
    y = _flip_labels(y, noise, rng)
    return Dataset(
        name=name,
        X_train=X[:train_size],
        y_train=y[:train_size],
        X_test=X[train_size:],
        y_test=y[train_size:],
    )


def concentric_circles(
    name: str,
    train_size: int,
    test_size: int,
    inner_radius: float = 0.4,
    outer_radius: float = 0.8,
    noise: float = 0.02,
    seed: int = 0,
) -> Dataset:
    """The classic 2-D nonlinear toy of the paper's Fig. 1 (kernel method)."""
    _validate_counts(train_size, test_size, 2)
    if not 0.0 < inner_radius < outer_radius <= 1.0:
        raise ValidationError("radii must satisfy 0 < inner < outer <= 1")
    rng = np.random.default_rng(seed)
    total = train_size + test_size
    half = total // 2 + 1
    angles = rng.uniform(0.0, 2.0 * np.pi, size=2 * half)
    radii = np.concatenate(
        [
            rng.normal(inner_radius, 0.05, size=half),
            rng.normal(outer_radius, 0.05, size=half),
        ]
    )
    X = np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)
    X = np.clip(X, -1.0, 1.0)
    y = np.concatenate([np.ones(half), -np.ones(half)])
    order = rng.permutation(2 * half)[:total]
    X, y = X[order], y[order]
    y = _flip_labels(y, noise, rng)
    return Dataset(
        name=name,
        X_train=X[:train_size],
        y_train=y[:train_size],
        X_test=X[train_size:],
        y_test=y[train_size:],
    )


def two_moons(
    name: str,
    train_size: int,
    test_size: int,
    noise: float = 0.05,
    seed: int = 0,
) -> Dataset:
    """The classic two-interleaved-half-circles 2-D nonlinear toy."""
    _validate_counts(train_size, test_size, 2)
    rng = np.random.default_rng(seed)
    total = train_size + test_size
    half = total // 2 + 1
    angles = rng.uniform(0.0, np.pi, size=half)
    upper = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    lower = np.stack([1.0 - np.cos(angles), -np.sin(angles) + 0.35], axis=1)
    X = np.vstack([upper, lower]) * 0.7
    X[:, 0] -= 0.25
    X += rng.normal(0.0, max(noise, 1e-9), size=X.shape)
    X = np.clip(X, -1.0, 1.0)
    y = np.concatenate([np.ones(half), -np.ones(half)])
    order = rng.permutation(X.shape[0])[:total]
    X, y = X[order], y[order]
    return Dataset(
        name=name,
        X_train=X[:train_size],
        y_train=y[:train_size],
        X_test=X[train_size:],
        y_test=y[train_size:],
    )


def xor_blocks(
    name: str,
    train_size: int,
    test_size: int,
    noise: float = 0.0,
    seed: int = 0,
) -> Dataset:
    """2-D XOR: label = sign(x0 · x1) — the minimal non-linear problem.

    A single product term, so even a degree-2 polynomial kernel solves
    it while the linear kernel scores at chance.
    """
    _validate_counts(train_size, test_size, 2)
    rng = np.random.default_rng(seed)
    total = train_size + test_size
    X = rng.uniform(-1.0, 1.0, size=(total, 2))
    # Keep a margin away from the axes so the classes are separable.
    X = np.where(np.abs(X) < 0.08, np.sign(X) * 0.08 + X, X)
    X = np.clip(X, -1.0, 1.0)
    y = np.where(X[:, 0] * X[:, 1] >= 0.0, 1.0, -1.0)
    y = _flip_labels(y, noise, rng)
    return Dataset(
        name=name,
        X_train=X[:train_size],
        y_train=y[:train_size],
        X_test=X[train_size:],
        y_test=y[train_size:],
    )


def two_gaussians(
    name: str,
    dimension: int,
    train_size: int,
    test_size: int,
    separation: float = 1.0,
    spread: float = 0.35,
    seed: int = 0,
) -> Dataset:
    """Two Gaussian blobs — the workhorse for examples and Fig. 5."""
    _validate_counts(train_size, test_size, dimension)
    rng = np.random.default_rng(seed)
    total = train_size + test_size
    direction = rng.normal(size=dimension)
    direction /= np.linalg.norm(direction)
    center = direction * separation / 2.0
    half = total // 2 + 1
    positive = rng.normal(size=(half, dimension)) * spread + center
    negative = rng.normal(size=(half, dimension)) * spread - center
    X = np.vstack([positive, negative])
    y = np.concatenate([np.ones(half), -np.ones(half)])
    order = rng.permutation(X.shape[0])[:total]
    X, y = np.clip(X[order], -1.0, 1.0), y[order]
    return Dataset(
        name=name,
        X_train=X[:train_size],
        y_train=y[:train_size],
        X_test=X[train_size:],
        y_test=y[train_size:],
    )
