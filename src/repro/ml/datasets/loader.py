"""LIBSVM sparse text format I/O.

The paper's datasets ship in LIBSVM's ``label index:value`` format; we
implement the reader/writer so real files drop in whenever they are
available, and so generated analogs can be persisted for inspection.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.exceptions import DatasetError

PathLike = Union[str, Path]


def parse_libsvm(text: str, dimension: int = None) -> Tuple[np.ndarray, np.ndarray]:
    """Parse LIBSVM-format text into dense ``(X, y)`` arrays.

    Feature indices are 1-based per the format.  ``dimension`` pads (or
    validates) the feature count; otherwise the maximum index seen wins.
    """
    labels = []
    rows = []
    max_index = 0
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        pieces = line.split()
        try:
            label = float(pieces[0])
        except ValueError:
            raise DatasetError(
                f"line {line_number}: bad label {pieces[0]!r}"
            ) from None
        features = {}
        for piece in pieces[1:]:
            try:
                index_text, value_text = piece.split(":", 1)
                index = int(index_text)
                value = float(value_text)
            except ValueError:
                raise DatasetError(
                    f"line {line_number}: bad feature {piece!r}"
                ) from None
            if index < 1:
                raise DatasetError(
                    f"line {line_number}: indices are 1-based, got {index}"
                )
            features[index] = value
        labels.append(label)
        rows.append(features)
        if features:
            max_index = max(max_index, max(features))
    if not rows:
        raise DatasetError("no samples found in LIBSVM text")
    width = dimension if dimension is not None else max_index
    if width < max_index:
        raise DatasetError(
            f"dimension {width} is below the maximum feature index {max_index}"
        )
    if width == 0:
        raise DatasetError("no features found and no dimension given")
    X = np.zeros((len(rows), width))
    for row_index, features in enumerate(rows):
        for index, value in features.items():
            X[row_index, index - 1] = value
    return X, np.asarray(labels)


def read_libsvm(path: PathLike, dimension: int = None) -> Tuple[np.ndarray, np.ndarray]:
    """Read a LIBSVM file from disk."""
    return parse_libsvm(Path(path).read_text(encoding="utf-8"), dimension)


def format_libsvm(X: np.ndarray, y: np.ndarray, precision: int = 8) -> str:
    """Render ``(X, y)`` as LIBSVM text (zeros omitted, 1-based indices)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or y.shape != (X.shape[0],):
        raise DatasetError("X must be 2-D with y aligned to its rows")
    buffer = io.StringIO()
    for row, label in zip(X, y):
        pieces = [f"{label:g}"]
        for index, value in enumerate(row, start=1):
            if value != 0.0:
                pieces.append(f"{index}:{value:.{precision}g}")
        buffer.write(" ".join(pieces))
        buffer.write("\n")
    return buffer.getvalue()


def write_libsvm(path: PathLike, X: np.ndarray, y: np.ndarray, precision: int = 8) -> None:
    """Write ``(X, y)`` to disk in LIBSVM format."""
    Path(path).write_text(format_libsvm(X, y, precision), encoding="utf-8")
