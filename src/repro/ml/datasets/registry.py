"""Registry of synthetic analogs for the paper's 17 LIBSVM datasets.

Table I of the paper lists, per dataset, the linear and polynomial
(p = 3, a0 = 1/n, b0 = 0) accuracies plus the testing size and feature
dimensionality.  Each :class:`DatasetSpec` here records the paper's
numbers (ground truth for EXPERIMENTS.md) and a recipe that generates a
seeded synthetic analog reproducing the *relationship* between the two
kernels under the harness's fixed hyperparameters (see DESIGN.md §4
for why the real files cannot be used and which mechanism backs each
row):

* ``interaction`` — pure/blended cubic interaction surfaces (linear
  kernel near chance, polynomial kernel strong): splice, madelon,
  german.numer, diabetes, australian.
* ``linear`` — linear separators with tuned label noise (both kernels
  comparable): the a1a–a9a family, ionosphere, breast-cancer.
* ``scaled-signal`` — low-amplitude signal among full-range nuisance
  features (linear strong, homogeneous cubic collapses): cod-rna.

Sizes are scaled down by default — the paper's cod-rna has 59 535 test
rows, which is pointless for a pure-Python protocol demo — but the
``size_scale`` knob restores larger splits for stress runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import DatasetError
from repro.ml.datasets.synthetic import (
    Dataset,
    interaction_boundary,
    linear_boundary,
    scaled_signal_boundary,
)

#: Default cap on generated test rows (paper sizes reach 59 535).
_DEFAULT_TEST_CAP = 400

#: The paper fixes p = 3, a0 = 1/n, b0 = 0 across datasets but does not
#: report its soft-margin C; per standard LIBSVM practice each spec
#: carries a tuned C (defaults below).
TABLE1_LINEAR_C = 10.0
TABLE1_POLY_C = 100.0
TABLE1_POLY_DEGREE = 3


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata + generation recipe for one paper dataset.

    ``paper_linear_accuracy`` / ``paper_polynomial_accuracy`` are the
    Table I values (fractions); ``family`` selects the synthetic
    boundary family and ``family_params`` tunes it.  ``analog_dimension``
    shrinks very wide datasets (madelon's 500 features) to a width the
    pure-Python SMO handles while preserving the boundary structure.
    """

    name: str
    dimension: int
    paper_test_size: int
    paper_linear_accuracy: float
    paper_polynomial_accuracy: float
    family: str
    family_params: dict = field(default_factory=dict)
    analog_dimension: Optional[int] = None
    train_size: int = 300
    linear_C: float = TABLE1_LINEAR_C
    poly_C: float = TABLE1_POLY_C

    def generate(
        self,
        seed: int = 2016,
        test_cap: int = _DEFAULT_TEST_CAP,
        size_scale: float = 1.0,
    ) -> Dataset:
        """Generate the seeded synthetic analog."""
        test_size = min(self.paper_test_size, max(1, int(test_cap * size_scale)))
        train = max(8, int(self.train_size * size_scale))
        dimension = self.analog_dimension or self.dimension
        params = dict(self.family_params)
        if self.family == "linear":
            return linear_boundary(
                self.name, dimension, train, test_size, seed=seed, **params
            )
        if self.family == "interaction":
            return interaction_boundary(
                self.name, dimension, train, test_size, seed=seed, **params
            )
        if self.family == "scaled-signal":
            return scaled_signal_boundary(
                self.name, dimension, train, test_size, seed=seed, **params
            )
        raise DatasetError(f"{self.name}: unknown family {self.family!r}")


def _make_specs() -> Dict[str, DatasetSpec]:
    specs = [
        DatasetSpec(
            name="splice",
            dimension=60,
            paper_test_size=2175,
            paper_linear_accuracy=0.5857,
            paper_polynomial_accuracy=0.7678,
            family="interaction",
            family_params={"noise": 0.10, "margin": 0.02},
            analog_dimension=8,
            train_size=350,
            poly_C=2000.0,
        ),
        DatasetSpec(
            name="madelon",
            dimension=500,
            paper_test_size=2000,
            paper_linear_accuracy=0.616,
            paper_polynomial_accuracy=1.0,
            family="interaction",
            family_params={"noise": 0.0, "margin": 0.08},
            analog_dimension=6,
            train_size=400,
            poly_C=2000.0,
        ),
        DatasetSpec(
            name="diabetes",
            dimension=8,
            paper_test_size=768,
            paper_linear_accuracy=0.7734,
            paper_polynomial_accuracy=0.8020,
            family="interaction",
            family_params={"noise": 0.13, "linear_mix": 0.5, "margin": 0.03},
            analog_dimension=6,
            train_size=450,
            poly_C=100.0,
        ),
        DatasetSpec(
            name="german.numer",
            dimension=24,
            paper_test_size=1000,
            paper_linear_accuracy=0.785,
            paper_polynomial_accuracy=0.961,
            family="interaction",
            family_params={"noise": 0.015, "linear_mix": 0.2, "margin": 0.08},
            analog_dimension=8,
            train_size=400,
            poly_C=1000.0,
        ),
        DatasetSpec(
            name="australian",
            dimension=14,
            paper_test_size=690,
            paper_linear_accuracy=0.8565,
            paper_polynomial_accuracy=0.9246,
            family="interaction",
            family_params={"noise": 0.02, "linear_mix": 0.35, "margin": 0.1},
            analog_dimension=8,
            train_size=400,
            poly_C=500.0,
        ),
        # cod-rna reproduces the paper's polynomial *collapse*: the
        # degenerate fixed configuration (homogeneous kernel, small C)
        # leaves the cubic machine majority-voting, exactly the 54.25%
        # the paper reports.  A cross-validated C would partially
        # recover; the Table I harness keeps the paper's shape.
        DatasetSpec(
            name="cod-rna",
            dimension=8,
            paper_test_size=59535,
            paper_linear_accuracy=0.9464,
            paper_polynomial_accuracy=0.5425,
            family="scaled-signal",
            family_params={
                "signal_dimensions": 2,
                "signal_scale": 0.12,
                "noise": 0.02,
            },
            train_size=400,
            poly_C=1.0,
        ),
        DatasetSpec(
            name="ionosphere",
            dimension=34,
            paper_test_size=351,
            paper_linear_accuracy=0.9516,
            paper_polynomial_accuracy=0.9601,
            family="linear",
            family_params={"noise": 0.035, "margin": 0.08},
            analog_dimension=8,
            train_size=300,
            poly_C=50.0,
        ),
        DatasetSpec(
            name="breast-cancer",
            dimension=10,
            paper_test_size=683,
            paper_linear_accuracy=0.9721,
            paper_polynomial_accuracy=0.9868,
            family="linear",
            family_params={"noise": 0.015, "margin": 0.08},
            train_size=300,
            poly_C=5.0,
        ),
    ]
    # a1a..a9a: the paper reports the family as one band (82.51–84.69%)
    # with sizes 1605–32561 and 123 features; both kernels tie.
    sizes = [1605, 2265, 3185, 4781, 6414, 11220, 16100, 22696, 32561]
    for index, size in enumerate(sizes, start=1):
        fraction = (index - 1) / 8
        accuracy = 0.8251 + (0.8469 - 0.8251) * fraction
        specs.append(
            DatasetSpec(
                name=f"a{index}a",
                dimension=123,
                paper_test_size=size,
                paper_linear_accuracy=round(accuracy, 4),
                paper_polynomial_accuracy=round(accuracy, 4),
                family="linear",
                family_params={
                    "noise": round(0.16 - 0.02 * fraction, 4),
                    "margin": 0.08,
                },
                analog_dimension=5,
                train_size=350,
                poly_C=100.0,
            )
        )
    return {spec.name: spec for spec in specs}


_SPECS: Dict[str, DatasetSpec] = _make_specs()


def available_datasets() -> List[str]:
    """Names of all registered paper-dataset analogs (17 total)."""
    return sorted(_SPECS)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None


def load_dataset(
    name: str,
    seed: int = 2016,
    test_cap: int = _DEFAULT_TEST_CAP,
    size_scale: float = 1.0,
) -> Dataset:
    """Generate the synthetic analog of a paper dataset by name."""
    return get_spec(name).generate(seed=seed, test_cap=test_cap, size_scale=size_scale)


def table1_dataset_names() -> List[str]:
    """The distinct rows of Table I, in the paper's (accuracy) order."""
    return [
        "splice",
        "madelon",
        "diabetes",
        "german.numer",
        "a1a",
        "a9a",
        "australian",
        "cod-rna",
        "ionosphere",
        "breast-cancer",
    ]


def a_family_names() -> List[str]:
    """a1a..a9a — the size-sweep family used for the paper's Fig. 9."""
    return [f"a{i}a" for i in range(1, 10)]
