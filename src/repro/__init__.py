"""repro — Privacy-Preserving Data Classification and Similarity
Evaluation for Distributed Systems.

A from-scratch Python reproduction of Jia, Guo, Jin & Fang (IEEE ICDCS
2016).  The library provides:

* :mod:`repro.core` — the paper's protocols: OMPE, private
  classification (linear and polynomial-kernel), private similarity
  evaluation (the isosceles-triangle metric), privacy analysis, and
  the plaintext/Paillier baselines;
* :mod:`repro.ml` — an SMO-based SVM trainer (LIBSVM substitute),
  kernels, and seeded synthetic analogs of the paper's 17 datasets;
* :mod:`repro.crypto` — Naor–Pinkas oblivious transfer (1-of-2,
  1-of-n, k-of-n) and the Paillier cryptosystem;
* :mod:`repro.math` — exact polynomial algebra, Lagrange
  interpolation, multinomial expansion, Taylor polynomialization,
  number theory, and statistics (two-sample K-S test);
* :mod:`repro.net` — a measured in-process message-passing substrate
  (channels, transcripts, link models) for distributed execution;
* :mod:`repro.evaluation` — the harness regenerating every table and
  figure of the paper's evaluation section.

Quickstart::

    from repro.ml.datasets import two_gaussians
    from repro.ml.svm import train_svm
    from repro.core.classification import classify_linear

    data = two_gaussians("demo", dimension=4, train_size=100, test_size=10)
    model = train_svm(data.X_train, data.y_train, kernel="linear")
    outcome = classify_linear(model, data.X_test[0], seed=7)
    print(outcome.label, outcome.total_bytes)
"""

__version__ = "1.0.0"

from repro.exceptions import ReproError

__all__ = ["ReproError", "__version__"]
