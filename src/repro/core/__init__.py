"""The paper's contribution: OMPE-based private classification and
similarity evaluation, privacy analysis, and baselines."""

from repro.core.classification import (
    ClassificationOutcome,
    classify_linear,
    classify_nonlinear,
    private_classify,
)
from repro.core.ompe import OMPEConfig, OMPEFunction, execute_ompe
from repro.core.similarity import (
    MetricParams,
    evaluate_similarity_plain,
    evaluate_similarity_private,
    evaluate_similarity_private_nonlinear,
)

__all__ = [
    "ClassificationOutcome",
    "classify_linear",
    "classify_nonlinear",
    "private_classify",
    "OMPEConfig",
    "OMPEFunction",
    "execute_ompe",
    "MetricParams",
    "evaluate_similarity_plain",
    "evaluate_similarity_private",
    "evaluate_similarity_private_nonlinear",
]
