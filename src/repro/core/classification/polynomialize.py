"""Polynomialization of RBF and sigmoid kernel models (Section IV-B).

The paper's OMPE machinery needs the decision function to be a
polynomial in the client's input.  For the RBF and sigmoid kernels the
paper prescribes truncated Taylor expansions ("in real applications, we
can use a large number p to approximate the infinity").  This module
turns a trained RBF or sigmoid :class:`~repro.ml.svm.model.SVMModel`
into an OMPE-ready polynomial evaluator:

* **RBF** ``K(x, t) = exp(-γ ||x − t||²)``: factor per support vector
  ``exp(-γ|x|²) · exp(-γ|t|²) · exp(2γ x·t)`` and expand each of the
  two ``t``-dependent exponentials with :func:`repro.math.taylor.exp_taylor`.
  The result is a polynomial of degree ``3·truncation`` in ``t``.
* **sigmoid** ``K(x, t) = tanh(a0 x·t + c0)``: expand ``tanh`` around 0
  with :func:`repro.math.taylor.tanh_taylor` (requires
  ``|a0 x·t + c0| < π/2``, which the scaled data domain satisfies for
  a0 ≤ 1/n — validated at construction).

The returned :class:`PolynomializedModel` carries an empirical bound
(seeded box sampling, 5x safety factor) on the decision-value error
introduced by the truncation, so callers can pick the degree needed
for sign-correct private classification on a given margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.ompe.function import OMPEFunction
from repro.exceptions import ValidationError
from repro.math.polynomials import Number, Polynomial
from repro.math.taylor import exp_taylor, tanh_taylor
from repro.ml.svm.model import SVMModel

#: Denominator grid for snapping float model data to exact rationals.
_SNAP = 1 << 40


def _snap(value: float) -> Fraction:
    return Fraction(round(float(value) * _SNAP), _SNAP)


@dataclass(frozen=True)
class PolynomializedModel:
    """A kernel model rewritten as an OMPE-ready polynomial evaluator.

    Attributes
    ----------
    model:
        The original kernel model (kept for reference evaluation).
    function:
        The OMPE sender function (exact arithmetic).
    truncation_degree:
        Taylor truncation parameter used.
    error_bound:
        Empirical bound on ``|d_poly(t) − d(t)|`` over the data box
        ``[-1, 1]^n`` (seeded sampling, 5x safety factor).  Private
        classification is sign-correct for every sample whose true
        margin exceeds this bound.
    """

    model: SVMModel
    function: OMPEFunction
    truncation_degree: int
    error_bound: float

    def decision_value(self, point: Sequence[float]) -> float:
        """Float evaluation of the polynomialized decision function."""
        exact = self.function(tuple(_snap(float(v)) for v in point))
        return float(exact)

    def sign_safe(self, point: Sequence[float]) -> bool:
        """True when the truncation cannot flip this sample's sign."""
        return abs(self.model.decision_value(point)) > self.error_bound


def _rbf_parameters(model: SVMModel) -> float:
    name, params = model.kernel_spec
    if name != "rbf":
        raise ValidationError(f"expected an rbf model, got kernel {name!r}")
    return float(params.get("gamma", 1.0))


def _sigmoid_parameters(model: SVMModel) -> Tuple[float, float]:
    name, params = model.kernel_spec
    if name != "sigmoid":
        raise ValidationError(f"expected a sigmoid model, got kernel {name!r}")
    return float(params.get("a0", 1.0)), float(params.get("c0", 0.0))


def polynomialize_rbf(
    model: SVMModel, truncation_degree: int = 12
) -> PolynomializedModel:
    """Rewrite an RBF model as a degree-``3·truncation_degree`` polynomial.

    Per support vector ``x``:

        K(x, t) = e^{-γ|x|²} · e^{-γ|t|²} · e^{2γ x·t}
                ≈ e^{-γ|x|²} · T(-γ|t|²) · T(2γ x·t)

    with ``T`` the truncated exponential series.  Both series arguments
    are bounded on the data box (``|t|² ≤ n``, ``|x·t| ≤ n``), so the
    truncation error is controlled; the reported bound is measured
    empirically (see :data:`_ERROR_SAMPLES`).
    """
    if truncation_degree < 1:
        raise ValidationError(
            f"truncation_degree must be at least 1, got {truncation_degree}"
        )
    gamma = _rbf_parameters(model)
    gamma_exact = _snap(gamma)
    n = model.dimension
    series: Polynomial = exp_taylor(truncation_degree)
    duals = [_snap(c) for c in model.dual_coefficients]
    svs = [[_snap(v) for v in row] for row in model.support_vectors]
    bias = _snap(model.bias)
    prefactors = [
        # e^{-γ|x|²}, snapped once per support vector.
        _snap(math.exp(-gamma * float(np.dot(row, row))))
        for row in model.support_vectors
    ]

    def evaluate(point: Sequence[Number]) -> Number:
        norm_sq = sum((coordinate * coordinate for coordinate in point), Fraction(0))
        decay = series(-gamma_exact * norm_sq)
        total = bias
        for dual, sv, prefactor in zip(duals, svs, prefactors):
            dot = sum((a * b for a, b in zip(sv, point)), Fraction(0))
            cross = series(2 * gamma_exact * dot)
            total = total + dual * prefactor * decay * cross
        return total

    # Degree audit: T(-γ|t|²) has degree 2·trunc (|t|² is quadratic),
    # T(2γ x·t) has degree trunc; their product is degree 3·trunc.
    # Understating this corrupts the OMPE interpolation silently.
    function = OMPEFunction.from_callable(
        arity=n,
        total_degree=3 * truncation_degree,
        evaluate=evaluate,
    )
    bound = _empirical_error_bound(model, evaluate, n)
    return PolynomializedModel(
        model=model,
        function=function,
        truncation_degree=truncation_degree,
        error_bound=bound,
    )


#: Samples and safety factor for the empirical truncation-error bound.
#: Analytic Lagrange-remainder bounds at the box corners are orders of
#: magnitude looser than the error on any realistic sample (and make
#: ``sign_safe`` useless), so the bound is estimated by seeded sampling
#: of the data box and inflated by the safety factor.
_ERROR_SAMPLES = 256
_ERROR_SAFETY = 5.0


def _empirical_error_bound(model: SVMModel, evaluate, dimension: int) -> float:
    rng = np.random.default_rng(20160627)
    worst = 0.0
    points = rng.uniform(-1.0, 1.0, size=(_ERROR_SAMPLES, dimension))
    for point in points:
        exact_point = tuple(_snap(float(v)) for v in point)
        approx = float(evaluate(exact_point))
        truth = model.decision_value(point)
        worst = max(worst, abs(approx - truth))
    return _ERROR_SAFETY * worst + 1e-12


def polynomialize_sigmoid(
    model: SVMModel, truncation_degree: int = 9
) -> PolynomializedModel:
    """Rewrite a sigmoid model via the paper's tanh Bernoulli expansion.

    Requires the kernel argument ``a0 x·t + c0`` to stay inside the
    series' convergence radius ``π/2`` on the data box; raises when the
    configured ``a0``/``c0`` cannot guarantee that.
    """
    if truncation_degree < 1:
        raise ValidationError(
            f"truncation_degree must be at least 1, got {truncation_degree}"
        )
    a0, c0 = _sigmoid_parameters(model)
    n = model.dimension
    radius = abs(a0) * n + abs(c0)
    if radius >= math.pi / 2:
        raise ValidationError(
            f"kernel argument can reach {radius:.3f} >= pi/2 on the data box; "
            "rescale a0 (the paper uses a0 = 1/n) before polynomializing"
        )
    series = tanh_taylor(truncation_degree)
    a0_exact, c0_exact = _snap(a0), _snap(c0)
    duals = [_snap(c) for c in model.dual_coefficients]
    svs = [[_snap(v) for v in row] for row in model.support_vectors]
    bias = _snap(model.bias)

    def evaluate(point: Sequence[Number]) -> Number:
        total = bias
        for dual, sv in zip(duals, svs):
            dot = sum((a * b for a, b in zip(sv, point)), Fraction(0))
            total = total + dual * series(a0_exact * dot + c0_exact)
        return total

    function = OMPEFunction.from_callable(
        arity=n,
        total_degree=truncation_degree,
        evaluate=evaluate,
    )
    bound = _empirical_error_bound(model, evaluate, n)
    return PolynomializedModel(
        model=model,
        function=function,
        truncation_degree=truncation_degree,
        error_bound=bound,
    )


def classify_polynomialized(
    polynomialized: PolynomializedModel,
    sample: Sequence[float],
    config=None,
    seed: Optional[int] = None,
):
    """Run private classification against a polynomialized kernel model.

    Identical protocol to :func:`repro.core.classification.classify_nonlinear`
    (direct-evaluation variant); the sender function is the truncated
    Taylor form, so the label matches the true kernel model whenever
    the sample's margin exceeds ``polynomialized.error_bound``.
    """
    from repro.core.classification.linear import (
        ClassificationOutcome,
        _label_from_value,
    )
    from repro.core.ompe import execute_ompe

    outcome = execute_ompe(
        polynomialized.function,
        tuple(_snap(float(v)) for v in sample),
        config=config,
        seed=seed,
        amplify=True,
        offset=False,
    )
    return ClassificationOutcome(
        label=_label_from_value(outcome.value),
        randomized_value=outcome.value,
        report=outcome.report,
    )


def polynomialize(model: SVMModel, truncation_degree: Optional[int] = None) -> PolynomializedModel:
    """Dispatch on the model's kernel (rbf or sigmoid)."""
    name, _ = model.kernel_spec
    if name == "rbf":
        return polynomialize_rbf(model, truncation_degree or 12)
    if name == "sigmoid":
        return polynomialize_sigmoid(model, truncation_degree or 9)
    raise ValidationError(
        f"polynomialize handles rbf/sigmoid kernels; got {name!r} "
        "(linear and polynomial models are natively polynomial)"
    )
