"""Privacy-preserving nonlinear classification (paper Section IV-B).

Two equivalent instantiations are provided (DESIGN.md §5 ablation):

* ``method="monomial"`` — the paper-faithful path: both parties apply
  the ``t → τ`` monomial transform; the decision function becomes
  linear in ``τ`` and the linear machinery runs in the transformed
  space.  Cost grows with the monomial count ``C(n+p-1, n-1)``.
* ``method="direct"`` — algebraically identical: Bob hides the
  *original* coordinates with degree-``q`` polynomials; Alice evaluates
  the kernel-form decision function directly at each hidden vector.
  ``B(v) = h(v) + r_a d(G(v))`` then has degree ``p·q`` and
  interpolation needs ``m = pq + 1`` covers — the count the paper
  itself states — with no monomial blow-up.

Both reveal exactly ``r_a d(t̃)`` to Bob.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.classification.linear import (
    ClassificationOutcome,
    _label_from_value,
)
from repro.core.classification.transform import MonomialTransform
from repro.core.ompe import OMPEConfig, OMPEFunction, execute_ompe
from repro.exceptions import ValidationError
from repro.ml.svm.model import SVMModel
from repro.net.channel import LinkModel

_METHODS = ("direct", "monomial")


def _polynomial_kernel_degree(model: SVMModel) -> int:
    name, params = model.kernel_spec
    if name not in ("poly", "polynomial"):
        raise ValidationError(
            "nonlinear classification requires a polynomial-kernel model "
            "(polynomialize RBF/sigmoid kernels first — see repro.math.taylor)"
        )
    return int(params.get("degree", 3))


def _is_homogeneous(model: SVMModel) -> bool:
    _, params = model.kernel_spec
    return float(params.get("b0", 0.0)) == 0.0


def classify_nonlinear(
    model: SVMModel,
    sample: Sequence[float],
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
    method: str = "direct",
    amplify: bool = True,
    link: Optional[LinkModel] = None,
) -> ClassificationOutcome:
    """Run the private nonlinear classification protocol for one sample."""
    if method not in _METHODS:
        raise ValidationError(f"method must be one of {_METHODS}, got {method!r}")
    sample = tuple(sample)
    if len(sample) != model.dimension:
        raise ValidationError(
            f"sample has {len(sample)} coordinates, model expects "
            f"{model.dimension}"
        )
    degree = _polynomial_kernel_degree(model)

    if method == "monomial":
        transform = MonomialTransform(
            dimension=model.dimension,
            degree=degree,
            homogeneous=_is_homogeneous(model),
        )
        linearized = transform.linearize_polynomial(model.decision_polynomial())
        function = OMPEFunction.from_polynomial(linearized)
        protocol_input: Sequence = transform.transform_sample(tuple(sample))
    else:
        function = OMPEFunction.from_callable(
            arity=model.dimension,
            total_degree=degree,
            evaluate=model.exact_decision_value,
        )
        protocol_input = tuple(sample)

    outcome = execute_ompe(
        function,
        protocol_input,
        config=config,
        seed=seed,
        amplify=amplify,
        offset=False,
        link=link,
    )
    return ClassificationOutcome(
        label=_label_from_value(outcome.value),
        randomized_value=outcome.value,
        report=outcome.report,
    )


def classify_nonlinear_batch(
    model: SVMModel,
    samples: np.ndarray,
    config: Optional[OMPEConfig] = None,
    seed: int = 0,
    method: str = "direct",
    limit: Optional[int] = None,
) -> List[ClassificationOutcome]:
    """Classify many samples, one protocol run each."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise ValidationError("samples must be a 2-D array")
    count = samples.shape[0] if limit is None else min(limit, samples.shape[0])
    return [
        classify_nonlinear(
            model, samples[index], config=config, seed=seed + index, method=method
        )
        for index in range(count)
    ]
