"""Privacy-preserving classification protocols (paper Section IV)."""

from repro.core.classification.linear import (
    ClassificationOutcome,
    classify_linear,
    classify_linear_batch,
    predicted_labels,
)
from repro.core.classification.nonlinear import (
    classify_nonlinear,
    classify_nonlinear_batch,
)
from repro.core.classification.polynomialize import (
    PolynomializedModel,
    classify_polynomialized,
    polynomialize,
    polynomialize_rbf,
    polynomialize_sigmoid,
)
from repro.core.classification.session import PrivateClassificationSession
from repro.core.classification.transform import MonomialTransform
from repro.ml.svm.model import SVMModel


def private_classify(model: SVMModel, sample, **kwargs) -> ClassificationOutcome:
    """Classify one sample, dispatching on the model's kernel."""
    if model.is_linear():
        return classify_linear(model, sample, **kwargs)
    return classify_nonlinear(model, sample, **kwargs)


__all__ = [
    "ClassificationOutcome",
    "classify_linear",
    "classify_linear_batch",
    "classify_nonlinear",
    "classify_nonlinear_batch",
    "predicted_labels",
    "MonomialTransform",
    "PrivateClassificationSession",
    "PolynomializedModel",
    "classify_polynomialized",
    "polynomialize",
    "polynomialize_rbf",
    "polynomialize_sigmoid",
    "private_classify",
]
