"""The ``t → τ`` monomial transform of paper Section IV-B.

For a polynomial-kernel decision function of degree ``p`` in ``n``
variables, every monomial ``Π t_i^{k_i}`` becomes a fresh variable
``τ_j``; the decision function is then *linear* in ``τ`` and the linear
OMPE machinery applies unchanged.  The client applies the same
transform to its sample before hiding it.

The monomial count ``n' = C(n+p-1, n-1)`` (plus lower-degree terms when
``b0 ≠ 0``) grows combinatorially — the paper's madelon (n = 500,
p = 3) would need ~2×10⁷ variables.  The direct-evaluation variant in
:mod:`repro.core.classification.nonlinear` avoids the blow-up; this
module implements the paper-faithful path for moderate ``n`` and powers
the equivalence ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.math.multinomial import (
    count_compositions,
    degree_p_basis,
    mixed_degree_basis,
    monomial_value,
)
from repro.math.multivariate import MultivariatePolynomial
from repro.math.polynomials import Number

Exponents = Tuple[int, ...]

#: Safety cap on the transformed arity.
MAX_MONOMIALS = 100_000


@dataclass(frozen=True)
class MonomialTransform:
    """A fixed monomial basis shared by trainer and client.

    ``homogeneous=True`` uses only total-degree-``p`` monomials (the
    paper's ``b0 = 0`` kernel); otherwise all degrees ``1..p`` appear.
    """

    dimension: int
    degree: int
    homogeneous: bool = True

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise ValidationError(f"dimension must be at least 1, got {self.dimension}")
        if self.degree < 1:
            raise ValidationError(f"degree must be at least 1, got {self.degree}")
        if self.arity > MAX_MONOMIALS:
            raise ValidationError(
                f"transform would create {self.arity} monomials "
                f"(cap {MAX_MONOMIALS}); use the direct-evaluation protocol"
            )

    @property
    def basis(self) -> List[Exponents]:
        """The exponent vectors, in deterministic order."""
        if self.homogeneous:
            return degree_p_basis(self.dimension, self.degree)
        return mixed_degree_basis(self.dimension, self.degree)

    @property
    def arity(self) -> int:
        """Number of transformed variables ``n'``."""
        if self.homogeneous:
            return count_compositions(self.degree, self.dimension)
        return sum(
            count_compositions(d, self.dimension) for d in range(1, self.degree + 1)
        )

    def transform_sample(self, sample: Sequence[Number]) -> Tuple[Number, ...]:
        """Map a client sample ``t`` to ``τ = (monomial_j(t))_j``."""
        values = tuple(sample)
        if len(values) != self.dimension:
            raise ValidationError(
                f"sample has {len(values)} coordinates, expected {self.dimension}"
            )
        exact = tuple(
            v if isinstance(v, Fraction) else Fraction(v) for v in values
        )
        return tuple(monomial_value(exact, exponents) for exponents in self.basis)

    def linearize_polynomial(
        self, polynomial: MultivariatePolynomial
    ) -> MultivariatePolynomial:
        """Rewrite a degree-``p`` polynomial in ``t`` as degree-1 in ``τ``.

        The constant term stays constant; every other monomial must be
        present in the basis.
        """
        if polynomial.arity != self.dimension:
            raise ValidationError(
                f"polynomial arity {polynomial.arity} != transform dimension "
                f"{self.dimension}"
            )
        index_of = {exponents: j for j, exponents in enumerate(self.basis)}
        arity = self.arity
        terms = {}
        constant_key = tuple([0] * arity)
        for exponents, coefficient in polynomial.terms.items():
            if sum(exponents) == 0:
                terms[constant_key] = terms.get(constant_key, 0) + coefficient
                continue
            try:
                j = index_of[exponents]
            except KeyError:
                raise ValidationError(
                    f"monomial {exponents} of the decision polynomial is "
                    "outside the transform basis (homogeneous mismatch?)"
                ) from None
            key = tuple(1 if idx == j else 0 for idx in range(arity))
            terms[key] = terms.get(key, 0) + coefficient
        return MultivariatePolynomial(arity, terms)
