"""Privacy-preserving linear classification (paper Section IV-A).

Alice holds a trained linear SVM ``d(t) = w·t + b``; Bob holds a sample
``t̃``.  One OMPE run with the decision polynomial as the sender
function gives Bob the amplified value ``r_a · d(t̃)`` whose sign is his
class label.  Alice never sees ``t̃``; Bob never sees ``(w, b)`` and —
because ``r_a`` is fresh per query — cannot accumulate distances for
the tangent-circle reconstruction of Section VI-A (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.ompe import OMPEConfig, OMPEFunction, execute_ompe
from repro.exceptions import ValidationError
from repro.math.polynomials import Number
from repro.ml.svm.model import SVMModel
from repro.net.channel import LinkModel
from repro.net.runner import ProtocolReport


@dataclass(frozen=True)
class ClassificationOutcome:
    """The client's result for one sample.

    ``label`` is ``sign(d(t̃))`` in {-1.0, +1.0}; ``randomized_value``
    is everything the client actually learns (``r_a d(t̃)``); ``report``
    carries the transcript and cost accounting.
    """

    label: float
    randomized_value: Number
    report: ProtocolReport

    @property
    def total_bytes(self) -> int:
        return self.report.total_bytes


def _label_from_value(value: Number) -> float:
    # The paper assigns +1 on the hyperplane boundary (d >= 0).
    return 1.0 if value >= 0 else -1.0


def classify_linear(
    model: SVMModel,
    sample: Sequence[float],
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
    amplify: bool = True,
    link: Optional[LinkModel] = None,
) -> ClassificationOutcome:
    """Run the private linear classification protocol for one sample.

    ``amplify=False`` deliberately disables the paper's ``r_a``
    randomizer — used only by the Fig. 6 attack demonstration, never in
    production.
    """
    if not model.is_linear():
        raise ValidationError("classify_linear requires a linear-kernel model")
    sample = tuple(sample)
    if len(sample) != model.dimension:
        raise ValidationError(
            f"sample has {len(sample)} coordinates, model expects "
            f"{model.dimension}"
        )
    function = OMPEFunction.from_polynomial(model.linear_decision_polynomial())
    outcome = execute_ompe(
        function,
        tuple(sample),
        config=config,
        seed=seed,
        amplify=amplify,
        offset=False,
        link=link,
    )
    return ClassificationOutcome(
        label=_label_from_value(outcome.value),
        randomized_value=outcome.value,
        report=outcome.report,
    )


def classify_linear_batch(
    model: SVMModel,
    samples: np.ndarray,
    config: Optional[OMPEConfig] = None,
    seed: int = 0,
    limit: Optional[int] = None,
) -> List[ClassificationOutcome]:
    """Classify many samples, one protocol run (and fresh ``r_a``) each."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise ValidationError("samples must be a 2-D array")
    count = samples.shape[0] if limit is None else min(limit, samples.shape[0])
    return [
        classify_linear(model, samples[index], config=config, seed=seed + index)
        for index in range(count)
    ]


def predicted_labels(outcomes: Iterable[ClassificationOutcome]) -> np.ndarray:
    """Collect labels from a batch of outcomes."""
    return np.asarray([outcome.label for outcome in outcomes], dtype=float)
