"""Reusable classification sessions with precomputed randomness.

A trainer serving many private queries should not regenerate masking
polynomials per request (paper Section VI-B.1), and a client issuing
many queries can pre-hide before going online.
:class:`PrivateClassificationSession` bundles a model, a protocol
config, and matching sender/receiver randomness pools, exposing the
same ``classify`` surface as the one-shot functions while drawing from
the pools and refilling them when they run dry.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.classification.linear import ClassificationOutcome, _label_from_value
from repro.core.ompe import OMPEConfig, OMPEFunction, execute_ompe
from repro.core.ompe.precompute import ReceiverPool, SenderPool
from repro.exceptions import ValidationError
from repro.ml.svm.model import SVMModel
from repro.utils.rng import ReproRandom


def decision_function_for_model(model: SVMModel) -> OMPEFunction:
    """The sender-side OMPE function of a model's decision boundary.

    Linear models expose the decision polynomial directly; polynomial-
    kernel models use the exact kernel-form evaluator (the ``direct``
    method of :mod:`repro.core.classification.nonlinear`).  Shared by
    in-process sessions and the TCP trainer service so both construct
    the same function for the same model.
    """
    if model.is_linear():
        return OMPEFunction.from_polynomial(model.linear_decision_polynomial())
    name, params = model.kernel_spec
    if name not in ("poly", "polynomial"):
        raise ValidationError(
            "sessions support linear and polynomial-kernel models; "
            "polynomialize RBF/sigmoid models first"
        )
    return OMPEFunction.from_callable(
        arity=model.dimension,
        total_degree=int(params.get("degree", 3)),
        evaluate=model.exact_decision_value,
    )


class PrivateClassificationSession:
    """A long-lived trainer/client pairing over one model.

    Parameters
    ----------
    model:
        The trainer's model (linear or polynomial kernel).
    config:
        Shared protocol parameters.
    pool_size:
        Randomness bundles precomputed per refill.
    seed:
        Root seed; per-query seeds derive deterministically from it.
    """

    def __init__(
        self,
        model: SVMModel,
        config: Optional[OMPEConfig] = None,
        pool_size: int = 32,
        seed: Optional[int] = None,
    ) -> None:
        if pool_size < 1:
            raise ValidationError(f"pool_size must be at least 1, got {pool_size}")
        self.model = model
        self.config = config or OMPEConfig()
        self.pool_size = pool_size
        self._root = ReproRandom(seed)
        self._queries = 0
        self._refills = 0
        self._function = decision_function_for_model(model)
        self._sender_pool: Optional[SenderPool] = None
        self._receiver_pool: Optional[ReceiverPool] = None
        self._refill()

    # -- pool management ---------------------------------------------------

    def _refill(self) -> None:
        self._refills += 1
        with obs.get_tracer().span(
            "classification.refill",
            phase="precompute",
            pool_size=self.pool_size,
            refill=self._refills,
        ):
            pool_rng = self._root.fork("pools", self._refills)
            self._sender_pool = SenderPool(
                self.config,
                self._function.total_degree,
                self.pool_size,
                pool_rng.fork("sender"),
            )
            self._receiver_pool = ReceiverPool(
                self.config,
                self._function.arity,
                self._function.total_degree,
                self.pool_size,
                pool_rng.fork("receiver"),
            )
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_session_refills_total",
                "Precompute pool refills across sessions",
            ).inc()

    @property
    def remaining_bundles(self) -> int:
        """Unused precomputed bundles before the next refill."""
        return min(len(self._sender_pool), len(self._receiver_pool))

    @property
    def queries_served(self) -> int:
        """Total queries classified through this session."""
        return self._queries

    # -- classification ------------------------------------------------------

    def classify(self, sample: Sequence[float]) -> ClassificationOutcome:
        """Classify one sample, drawing randomness from the pools."""
        if self.remaining_bundles == 0:
            self._refill()
        self._queries += 1
        with obs.get_tracer().span(
            "classification.query", phase="classification", query=self._queries
        ):
            outcome = execute_ompe(
                self._function,
                tuple(sample),
                config=self.config,
                seed=self._root.fork("query", self._queries).seed,
                amplify=True,
                offset=False,
                sender_pool=self._sender_pool,
                receiver_pool=self._receiver_pool,
            )
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_classifications_total",
                "Private classification queries served",
            ).inc()
            metrics.gauge(
                "repro_session_pool_remaining",
                "Unused precompute bundles before the next refill",
            ).set(self.remaining_bundles)
        return ClassificationOutcome(
            label=_label_from_value(outcome.value),
            randomized_value=outcome.value,
            report=outcome.report,
        )

    def classify_batch(
        self, samples: np.ndarray, limit: Optional[int] = None
    ) -> List[ClassificationOutcome]:
        """Classify a batch of samples through the session."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2:
            raise ValidationError("samples must be a 2-D array")
        count = samples.shape[0] if limit is None else min(limit, samples.shape[0])
        return [self.classify(samples[index]) for index in range(count)]
