"""Privacy-preserving similarity evaluation (paper Section V)."""

from repro.core.similarity.boundary import (
    centroid,
    kernel_boundary_points,
    linear_boundary_points,
    model_boundary_points,
)
from repro.core.similarity.linear import (
    PrivateSimilarityOutcome,
    build_t_squared_polynomial,
    evaluate_similarity_private,
)
from repro.core.similarity.matching import MatchingResult, run_matching
from repro.core.similarity.metric import (
    MetricParams,
    SimilarityResult,
    cosine_similarity,
    evaluate_similarity_plain,
    normal_inner_product,
    triangle_t_squared,
)
from repro.core.similarity.nonlinear import (
    evaluate_similarity_private_nonlinear,
    exact_normal_inner,
)
from repro.core.similarity.policy import (
    MitigatedScores,
    MitigatedSimilarityOutcome,
    OutputPolicy,
    apply_output_policy,
    mitigate_similarity_outcome,
    parse_output_policy,
)

__all__ = [
    "centroid",
    "kernel_boundary_points",
    "linear_boundary_points",
    "model_boundary_points",
    "PrivateSimilarityOutcome",
    "build_t_squared_polynomial",
    "evaluate_similarity_private",
    "MatchingResult",
    "run_matching",
    "MetricParams",
    "SimilarityResult",
    "cosine_similarity",
    "evaluate_similarity_plain",
    "normal_inner_product",
    "triangle_t_squared",
    "evaluate_similarity_private_nonlinear",
    "exact_normal_inner",
    "MitigatedScores",
    "MitigatedSimilarityOutcome",
    "OutputPolicy",
    "apply_output_policy",
    "mitigate_similarity_outcome",
    "parse_output_policy",
]
