"""Privacy-preserving nonlinear similarity evaluation (paper Section V-C).

The metric lifts to kernel feature space: centroid distance becomes

    L² = K(m_A, m_A) + K(m_B, m_B) − 2 K(m_A, m_B)

and the normals' cosine uses the feature-space inner products of the
models' dual representations,

    ⟨n_A, n_B⟩ = Σ_s Σ_s' c_s c_s' K(x_s, x_s')

(the paper writes this ``K(w_A, w_B)``).  Steps mirror the linear
protocol; the two dot-product OMPEs become kernel OMPEs:

* OMPE #1 — sender function ``y ↦ K(m_A, y)`` (degree ``p``), Bob's
  input his centroid ``m_B``: Bob gets ``x₁ = r_am K(m_A, m_B)``.
* OMPE #2 — sender function over Bob's *packed model*
  ``(c_1..c_k, x_1..x_k) ↦ Σ_j c_j · f_A(x_j)`` where
  ``f_A(x) = Σ_s c_s^A K(x_s^A, x)`` (degree ``p + 1``): Bob gets
  ``x₂ = r_aw ⟨n_A, n_B⟩ + r_b`` without revealing his support vectors
  or dual coefficients.
* OMPE #3 — identical Eq. (7) polynomial with kernel-space constants.

Both models must share the same polynomial kernel.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.core.ompe import OMPEConfig, OMPEFunction, execute_ompe
from repro.core.similarity.boundary import centroid, kernel_boundary_points
from repro.core.similarity.exact import (
    exact_poly_kernel,
    snap,
    snap_vector,
)
from repro.core.similarity.linear import (
    PrivateSimilarityOutcome,
    build_t_squared_polynomial,
)
from repro.core.similarity.metric import MetricParams
from repro.exceptions import SimilarityError, ValidationError
from repro.math import fastpath
from repro.math.polynomials import Number
from repro.ml.svm.model import SVMModel
from repro.net.channel import Channel
from repro.net.runner import ProtocolReport
from repro.utils.rng import ReproRandom


def _polynomial_kernel_params(model: SVMModel) -> Tuple[Fraction, Fraction, int]:
    name, params = model.kernel_spec
    if name not in ("poly", "polynomial"):
        raise ValidationError(
            "nonlinear similarity requires polynomial-kernel models"
        )
    return (
        snap(params.get("a0", 1.0)),
        snap(params.get("b0", 0.0)),
        int(params.get("degree", 3)),
    )


def _pack_model(model: SVMModel) -> Tuple[Fraction, ...]:
    """Pack Bob's dual coefficients and support vectors into one vector."""
    packed: List[Fraction] = [snap(c) for c in model.dual_coefficients]
    for row in model.support_vectors:
        packed.extend(snap_vector(row))
    return tuple(packed)


def _normal_inner_function(
    model_a: SVMModel,
    a0: Fraction,
    b0: Fraction,
    degree: int,
    peer_sv_count: int,
    dimension: int,
) -> OMPEFunction:
    """Sender function computing ``⟨n_A, n_B⟩`` from Bob's packed model.

    The naive evaluator performs ``k_B · k_A`` exact kernel evaluations
    in ``Fraction`` arithmetic per point.  The hot path rescales Alice's
    duals and support vectors to integers once at construction, rescales
    the packed input once per call, and then the whole double loop is
    integer dots / powers with a single normalising ``Fraction`` at the
    end — the dominant win for nonlinear similarity (same value, same
    type, pinned by the differential suite).
    """
    alice_duals = [snap(c) for c in model_a.dual_coefficients]
    alice_svs = [snap_vector(row) for row in model_a.support_vectors]
    # Scaled-integer form of Alice's model (denominators divide 2^40).
    dual_numerators, dual_den, _ = fastpath.scale_to_integers(alice_duals)
    flat_svs = [value for row in alice_svs for value in row]
    sv_numerators_flat, sv_den, _ = fastpath.scale_to_integers(flat_svs)
    sv_numerators = [
        sv_numerators_flat[row * dimension : (row + 1) * dimension]
        for row in range(len(alice_svs))
    ]

    def evaluate_fast(packed: Sequence[Number]):
        scaled = fastpath.scale_to_integers(packed)
        if scaled is None or not isinstance(packed[0], Fraction):
            return fastpath.MISS
        point_numerators, point_den, _ = scaled
        # inner = a0 · (sv · x) + b0 over the common denominator
        # K = a0.den · sv_den · point_den · b0.den; kernel = inner^p / K^p.
        base_den = a0.denominator * sv_den * point_den
        inner_scale = a0.numerator * b0.denominator
        inner_shift = b0.numerator * base_den
        kernel_den = base_den * b0.denominator
        total = 0
        for j in range(peer_sv_count):
            start = peer_sv_count + j * dimension
            vector = point_numerators[start : start + dimension]
            partial = 0
            for dual_num, sv_row in zip(dual_numerators, sv_numerators):
                dot = sum(a * b for a, b in zip(sv_row, vector))
                partial += dual_num * (inner_scale * dot + inner_shift) ** degree
            total += point_numerators[j] * partial
        return Fraction(total, point_den * dual_den * kernel_den**degree)

    def evaluate(packed: Sequence[Number]) -> Number:
        if fastpath.enabled():
            value = evaluate_fast(packed)
            if value is not fastpath.MISS:
                return value
        duals = packed[:peer_sv_count]
        total = Fraction(0) if isinstance(packed[0], Fraction) else 0.0
        for j in range(peer_sv_count):
            start = peer_sv_count + j * dimension
            vector = packed[start : start + dimension]
            f_a = sum(
                (
                    dual * exact_poly_kernel(sv, vector, a0, b0, degree)
                    for dual, sv in zip(alice_duals, alice_svs)
                ),
                Fraction(0),
            )
            total = total + duals[j] * f_a
        return total

    return OMPEFunction.from_callable(
        arity=peer_sv_count * (dimension + 1),
        total_degree=degree + 1,
        evaluate=evaluate,
    )


def kernel_centroid(model: SVMModel, params: MetricParams):
    """Snapped centroid of a kernel model's boundary-point scan.

    Shared by the in-process protocol and the remote role drivers so
    both sides derive identical exact-rational geometry.
    """
    return snap_vector(
        centroid(
            kernel_boundary_points(
                model, params.lower, params.upper, params.resolution
            )
        )
    )


def exact_normal_inner(
    model_a: SVMModel, model_b: SVMModel
) -> Fraction:
    """Exact (snapped) feature-space inner product of the two normals."""
    a0, b0, degree = _polynomial_kernel_params(model_a)
    total = Fraction(0)
    duals_a = [snap(c) for c in model_a.dual_coefficients]
    svs_a = [snap_vector(row) for row in model_a.support_vectors]
    duals_b = [snap(c) for c in model_b.dual_coefficients]
    svs_b = [snap_vector(row) for row in model_b.support_vectors]
    for ca, xa in zip(duals_a, svs_a):
        for cb, xb in zip(duals_b, svs_b):
            total += ca * cb * exact_poly_kernel(xa, xb, a0, b0, degree)
    return total


def evaluate_similarity_private_nonlinear(
    model_a: SVMModel,
    model_b: SVMModel,
    params: Optional[MetricParams] = None,
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
    policy=None,
) -> PrivateSimilarityOutcome:
    """Run the full private nonlinear (polynomial-kernel) similarity protocol.

    ``policy`` behaves as in
    :func:`~repro.core.similarity.linear.evaluate_similarity_private`:
    a non-``None`` :class:`~repro.core.similarity.policy.OutputPolicy`
    yields a mitigated outcome instead of the raw one.
    """
    with obs.get_tracer().span(
        "similarity.nonlinear", phase="similarity", dimension=model_a.dimension
    ) as span:
        outcome = _evaluate_similarity_private_nonlinear(
            model_a, model_b, params, config, seed
        )
        span.set(total_bytes=outcome.total_bytes, t=float(outcome.t))
    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_similarity_runs_total",
            "Completed private similarity evaluations",
        ).inc(kind="nonlinear")
    if policy is not None:
        from repro.core.similarity.policy import (
            mitigate_similarity_outcome,
            policy_seed,
        )

        return mitigate_similarity_outcome(
            outcome, policy, seed=policy_seed(seed)
        )
    return outcome


def _evaluate_similarity_private_nonlinear(
    model_a: SVMModel,
    model_b: SVMModel,
    params: Optional[MetricParams],
    config: Optional[OMPEConfig],
    seed: Optional[int],
) -> PrivateSimilarityOutcome:
    params = params or MetricParams()
    config = config or OMPEConfig()
    if model_a.kernel_spec != model_b.kernel_spec:
        raise SimilarityError(
            "both models must share the same kernel configuration"
        )
    a0, b0, degree = _polynomial_kernel_params(model_a)
    if model_a.dimension != model_b.dimension:
        raise SimilarityError("models must share input dimensionality")
    root = ReproRandom(seed)

    # Step 1 — local geometry (kernel boundary scan), snapped.
    m_a = kernel_centroid(model_a, params)
    m_b = kernel_centroid(model_b, params)

    # Step 2 — Bob sends K(m_B, m_B) and ⟨n_B, n_B⟩ in the clear.
    k_mm_b = exact_poly_kernel(m_b, m_b, a0, b0, degree)
    k_ww_b = exact_normal_inner(model_b, model_b)
    with obs.get_tracer().span("similarity.clear", party="bob", phase="norms"):
        clear_channel = Channel("bob", "alice")
        clear_channel.send("bob", "similarity/kernel-norms", (k_mm_b, k_ww_b))
        k_mm_b, k_ww_b = clear_channel.receive("alice", "similarity/kernel-norms")
    clear_report = ProtocolReport(
        result=None,
        transcript=clear_channel.transcript,
        simulated_network_s=clear_channel.simulated_time,
    )
    k_ww_a = exact_normal_inner(model_a, model_a)
    if k_ww_a <= 0 or k_ww_b <= 0:
        raise SimilarityError("degenerate feature-space normal")

    # Step 3 — OMPE #1: x1 = r_am K(m_A, m_B).
    centroid_function = OMPEFunction.from_callable(
        arity=model_a.dimension,
        total_degree=degree,
        evaluate=lambda y: exact_poly_kernel(m_a, y, a0, b0, degree),
    )
    with obs.get_tracer().span("similarity.centroid_ompe", phase="centroid"):
        run1 = execute_ompe(
            centroid_function,
            m_b,
            config=config,
            seed=root.fork("run1").seed,
            amplify=True,
            offset=False,
            sender_name="alice",
            receiver_name="bob",
        )

    # Step 4 — OMPE #2: x2 = r_aw ⟨n_A, n_B⟩ + r_b over Bob's packed model.
    packed = _pack_model(model_b)
    normal_function = _normal_inner_function(
        model_a, a0, b0, degree, model_b.n_support, model_b.dimension
    )
    with obs.get_tracer().span("similarity.normal_ompe", phase="normal"):
        run2 = execute_ompe(
            normal_function,
            packed,
            config=config,
            seed=root.fork("run2").seed,
            amplify=True,
            offset=True,
            sender_name="alice",
            receiver_name="bob",
        )

    # Step 5 — OMPE #3: Eq. (7) with kernel-space constants.
    c1 = exact_poly_kernel(m_a, m_a, a0, b0, degree) + k_mm_b
    c2 = snap(params.l0) ** 4
    c3 = 1 / (k_ww_a * k_ww_b)
    c4 = 1 + snap(params.sin_theta0) ** 2
    d1 = 1 / run1.amplifier
    d2 = 1 / run2.amplifier**2
    d3 = -run2.offset
    t_squared_polynomial = build_t_squared_polynomial(c1, c2, c3, c4, d1, d2, d3)
    with obs.get_tracer().span("similarity.area_ompe", phase="area"):
        run3 = execute_ompe(
            OMPEFunction.from_polynomial(t_squared_polynomial),
            (run1.value, run2.value),
            config=config,
            seed=root.fork("run3").seed,
            amplify=False,
            offset=False,
            sender_name="alice",
            receiver_name="bob",
        )

    t_squared = run3.value
    if t_squared < 0:
        raise SimilarityError(f"negative T² ({t_squared}) — protocol corrupted")
    return PrivateSimilarityOutcome(
        t=math.sqrt(float(t_squared)),
        t_squared=t_squared,
        reports={
            "clear": clear_report,
            "centroid_ompe": run1.report,
            "normal_ompe": run2.report,
            "area_ompe": run3.report,
        },
    )
