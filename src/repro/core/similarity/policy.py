"""Mitigated output modes for similarity results (output privacy).

The similarity protocol hands Bob the raw triangle metric ``T``.  A
table of such raw, ordered scores is exactly the artifact the Culnane
et al. fingerprinting attack consumes (anonlink's security notes,
SNIPPETS.md §2): an adversary who can approximate the score table from
public information re-identifies pseudonymous rows by matching score
vectors.  PINFER (Joye & Petitcolas) names the standard remedy for
outsourced-inference score leakage: release a *function of* the score
(sign, threshold bit, top ranks) rather than the score itself.

This module is that output layer:

* :class:`OutputPolicy` — the negotiated release mode (``raw``,
  ``threshold``, ``top-k``, ``permuted``), a registered wire payload
  (``similarity/output-policy``) so clients and servers agree on the
  mode before any score exists;
* :func:`apply_output_policy` — pure, seed-deterministic mapping from
  a list of scores to the released view (:class:`MitigatedScores`);
* :func:`mitigate_similarity_outcome` — wraps one protocol run's
  outcome so non-``raw`` modes never expose ``t``/``t_squared``.

Threat model honesty (see DESIGN.md "Output privacy"): the raw score
still materializes inside the receiving party's process — enforcement
here is at the *output/API* layer, the deployment shape anonlink uses
for its output types (a trusted result-holder filters what untrusted
consumers see).  Upgrading ``threshold`` to a cryptographic comparison
(PINFER's sign-only protocol) is future protocol work; the policy
vocabulary and the leakage accounting here are deliberately identical
so that upgrade changes no caller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.exceptions import SimilarityError, ValidationError
from repro.net.runner import ProtocolReport
from repro.utils.rng import ReproRandom, derive_seed
from repro.utils.serialization import register_payload_type

#: Policy mode identifiers (part of the wire vocabulary — stable).
RAW = "raw"
THRESHOLD = "threshold"
TOP_K = "top-k"
PERMUTED = "permuted"
MODES: Tuple[str, ...] = (RAW, THRESHOLD, TOP_K, PERMUTED)

#: Hostile-input bound on ``top-k``: a decoded policy asking for more
#: revealed scores than any legitimate batch is rejected, not honored.
MAX_TOP_K = 4096

#: Per-entry multiplicative masks for ``permuted`` mode are drawn from
#: this positive range — wide enough that a masked score carries no
#: usable magnitude, bounded so the release stays finite.
_MASK_LOW, _MASK_HIGH = 0.25, 4.0


@register_payload_type("similarity/output-policy")
@dataclass(frozen=True)
class OutputPolicy:
    """How much of a similarity score table a run is allowed to release.

    * ``raw`` — full ordered scores (the paper's unmitigated output);
    * ``threshold`` — one comparison bit per pair: ``T <= threshold``
      (smaller ``T`` = more similar), no magnitudes;
    * ``top-k`` — the ``k`` best (smallest-``T``) pairs with their
      scores, nothing about the rest;
    * ``permuted`` — per-entry masked magnitudes with the pair linkage
      destroyed (sorted canonical order), revealing only cardinality.

    Decoded instances re-run this validation, so a hostile peer cannot
    smuggle an unknown mode or an out-of-range ``k`` through the wire.
    """

    mode: str = RAW
    threshold: Optional[float] = None
    k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValidationError(
                f"unknown output-policy mode {self.mode!r}; "
                f"supported: {', '.join(MODES)}"
            )
        if self.mode == THRESHOLD:
            value = self.threshold
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not math.isfinite(float(value))
                or float(value) <= 0.0
            ):
                raise ValidationError(
                    "threshold mode needs a finite positive threshold, "
                    f"got {value!r}"
                )
            object.__setattr__(self, "threshold", float(value))
        elif self.threshold is not None:
            raise ValidationError(
                f"{self.mode!r} mode takes no threshold, got {self.threshold!r}"
            )
        if self.mode == TOP_K:
            if (
                isinstance(self.k, bool)
                or not isinstance(self.k, int)
                or not 1 <= self.k <= MAX_TOP_K
            ):
                raise ValidationError(
                    f"top-k mode needs an integer k in [1, {MAX_TOP_K}], "
                    f"got {self.k!r}"
                )
        elif self.k is not None:
            raise ValidationError(
                f"{self.mode!r} mode takes no k, got {self.k!r}"
            )

    @property
    def label(self) -> str:
        """Canonical metrics/CLI label: ``raw``, ``threshold:0.5``, ...."""
        if self.mode == THRESHOLD:
            return f"{THRESHOLD}:{self.threshold:g}"
        if self.mode == TOP_K:
            return f"{TOP_K}:{self.k}"
        return self.mode


def parse_output_policy(text: str) -> OutputPolicy:
    """Parse a CLI/label spelling (``raw``, ``threshold:0.5``,
    ``top-k:5``, ``permuted``) into an :class:`OutputPolicy`."""
    mode, separator, argument = text.partition(":")
    mode = mode.strip()
    if mode in (RAW, PERMUTED):
        if separator:
            raise ValidationError(f"{mode!r} takes no argument, got {text!r}")
        return OutputPolicy(mode=mode)
    if mode == THRESHOLD:
        try:
            return OutputPolicy(mode=THRESHOLD, threshold=float(argument))
        except ValueError:
            raise ValidationError(
                f"threshold policy needs a number, got {text!r}"
            ) from None
    if mode == TOP_K:
        try:
            return OutputPolicy(mode=TOP_K, k=int(argument))
        except ValueError:
            raise ValidationError(
                f"top-k policy needs an integer, got {text!r}"
            ) from None
    raise ValidationError(
        f"unknown output policy {text!r}; expected one of: "
        f"raw, threshold:<t>, top-k:<k>, permuted"
    )


@dataclass(frozen=True)
class MitigatedScores:
    """The released view of one row of similarity scores.

    ``entries`` is mode-dependent:

    * ``raw`` — ``((id, score), ...)`` in input order;
    * ``threshold`` — ``((id, bit), ...)`` in input order, where the
      bit is ``score <= threshold`` (a pure function of the comparison);
    * ``top-k`` — the ``min(k, count)`` best ``(id, score)`` pairs in
      ascending ``(score, id)`` order;
    * ``permuted`` — ``(masked, ...)`` sorted ascending: per-id masked
      magnitudes with no id attached, so the view is independent of the
      input pair order.

    ``count`` (how many pairs went in) is always released — every mode
    leaks cardinality, and the leakage score accounts for the rest.
    """

    policy: OutputPolicy
    count: int
    entries: Tuple = ()

    @property
    def revealed_scores(self) -> Tuple[float, ...]:
        """The raw score magnitudes this view actually discloses.

        Empty for ``threshold`` (bits only) and ``permuted`` (masked
        values are not scores); at most ``k`` entries for ``top-k``.
        """
        if self.policy.mode in (RAW, TOP_K):
            return tuple(score for _, score in self.entries)
        return ()

    @property
    def match_bits(self) -> Dict[object, bool]:
        """``threshold`` mode's comparison bits, keyed by pair id."""
        if self.policy.mode != THRESHOLD:
            raise SimilarityError(
                f"match bits exist only under threshold mode, "
                f"not {self.policy.label!r}"
            )
        return {pair_id: bit for pair_id, bit in self.entries}


def _mask_for(seed: Optional[int], pair_id: object) -> float:
    """The secret positive mask for one pair, keyed by pair id (not by
    input position) so the released view is order-independent."""
    rng = (
        ReproRandom(None)
        if seed is None
        else ReproRandom(derive_seed(seed, "output-mask", pair_id))
    )
    return rng.uniform(_MASK_LOW, _MASK_HIGH)


def apply_output_policy(
    scores: Sequence[float],
    policy: OutputPolicy,
    seed: Optional[int] = None,
    ids: Optional[Sequence[object]] = None,
) -> MitigatedScores:
    """Apply ``policy`` to one row of scores; pure given ``seed``.

    ``ids`` names the pairs (defaults to positions); ``seed`` drives
    the ``permuted`` masks — the same ``(scores, ids, policy, seed)``
    always releases the identical view, which is what makes mitigated
    outcomes bit-identical across transports.
    """
    values = [float(score) for score in scores]
    for value in values:
        if not math.isfinite(value):
            raise ValidationError(f"scores must be finite, got {value!r}")
    pair_ids = tuple(range(len(values))) if ids is None else tuple(ids)
    if len(pair_ids) != len(values):
        raise ValidationError(
            f"got {len(values)} scores but {len(pair_ids)} ids"
        )
    if len(set(pair_ids)) != len(pair_ids):
        raise ValidationError("pair ids must be distinct")
    pairs = list(zip(pair_ids, values))
    if policy.mode == RAW:
        entries: Tuple = tuple(pairs)
    elif policy.mode == THRESHOLD:
        entries = tuple(
            (pair_id, value <= policy.threshold) for pair_id, value in pairs
        )
    elif policy.mode == TOP_K:
        ranked = sorted(pairs, key=lambda pair: (pair[1], repr(pair[0])))
        entries = tuple(ranked[: policy.k])
    else:  # PERMUTED
        entries = tuple(
            sorted(
                _mask_for(seed, pair_id) * value for pair_id, value in pairs
            )
        )
    return MitigatedScores(policy=policy, count=len(values), entries=entries)


@dataclass(frozen=True)
class MitigatedSimilarityOutcome:
    """A similarity run's outcome after output-policy enforcement.

    Unlike :class:`~repro.core.similarity.linear.PrivateSimilarityOutcome`,
    this type carries no ``t``/``t_squared`` fields: what the policy
    withholds is simply absent, so no caller — CLI, service, test — can
    read a raw score out of a non-``raw`` run by accident.
    """

    released: MitigatedScores
    reports: Dict[str, ProtocolReport] = field(default_factory=dict)

    @property
    def policy(self) -> OutputPolicy:
        return self.released.policy

    @property
    def t(self) -> float:
        """The raw metric — available under the ``raw`` policy only."""
        if self.policy.mode != RAW:
            raise SimilarityError(
                f"output policy {self.policy.label!r} withholds the raw "
                f"similarity score"
            )
        (_, score), = self.released.entries
        return score

    @property
    def total_bytes(self) -> int:
        return sum(report.total_bytes for report in self.reports.values())

    @property
    def total_rounds(self) -> int:
        return sum(report.rounds for report in self.reports.values())


def policy_seed(seed: Optional[int]) -> Optional[int]:
    """Derive the mitigation seed from a protocol seed.

    Both endpoints of a role-split run derive the same value, so the
    permuted-mode masks — the only seeded part of mitigation — agree
    across transports.  ``None`` stays ``None`` (fresh masks).
    """
    return None if seed is None else derive_seed(seed, "output-policy")


def mitigate_similarity_outcome(
    outcome,
    policy: OutputPolicy,
    seed: Optional[int] = None,
) -> MitigatedSimilarityOutcome:
    """Enforce ``policy`` on one protocol run's outcome.

    Also records the run's decomposable leakage score in the metrics
    registry (``repro_privacy_leakage_score{policy=...}``) so every
    release carries an auditable leakage budget.
    """
    released = apply_output_policy([outcome.t], policy, seed=seed)
    # Local import: the leakage scorer lives in core.privacy, which
    # imports this module for the policy vocabulary.
    from repro.core.privacy.leakage import record_leakage

    record_leakage(policy, released.count)
    return MitigatedSimilarityOutcome(
        released=released, reports=dict(outcome.reports)
    )
