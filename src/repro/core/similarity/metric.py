"""The isosceles-triangle similarity metric (paper Section V-A).

Two bounded hyperplanes are compared by an isosceles triangle whose
legs are the centroid distance ``L`` and whose vertex angle is the
normals' included angle ``θ``:

    T² = ¼ (L⁴ + L₀⁴)(sin²θ + sin²θ₀)          (Eq. 4)

The public constants ``L₀`` and ``θ₀`` keep the metric strictly
positive so a null area cannot be attributed to either factor alone.
This module computes the metric *in the clear* — the baseline and the
ground truth the private protocol must reproduce — for both linear
models (dot products) and kernel models (feature-space inner products
via the kernel trick, Section V-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.similarity.boundary import centroid, model_boundary_points
from repro.exceptions import SimilarityError, ValidationError
from repro.ml.svm.model import SVMModel
from repro.utils.serialization import register_payload_type


@register_payload_type("similarity/metric-params")
@dataclass(frozen=True)
class MetricParams:
    """Public parameters of the metric.

    ``l0`` and ``sin_theta0`` are the paper's small constants
    (``L₀`` and ``sin θ₀``); both public, both strictly positive.
    ``lower``/``upper`` bound the data space; ``resolution`` controls
    the kernel boundary-point scan.
    """

    l0: float = 0.01
    sin_theta0: float = 0.01
    lower: float = -1.0
    upper: float = 1.0
    resolution: int = 64

    def __post_init__(self) -> None:
        if self.l0 <= 0 or self.sin_theta0 <= 0:
            raise ValidationError("l0 and sin_theta0 must be strictly positive")
        if not 0 < self.sin_theta0 < 1:
            raise ValidationError("sin_theta0 must lie in (0, 1)")
        if self.lower >= self.upper:
            raise ValidationError("lower must be below upper")

    @property
    def minimum_t_squared(self) -> float:
        """The metric's floor ``¼ L₀⁴ sin²θ₀`` (identical models)."""
        return 0.25 * self.l0**4 * self.sin_theta0**2


@dataclass(frozen=True)
class SimilarityResult:
    """Plain (non-private) similarity computation output."""

    t_squared: float
    centroid_distance: float
    cosine: float

    @property
    def t(self) -> float:
        """The triangle-area similarity value ``T`` (smaller = closer)."""
        return math.sqrt(self.t_squared)

    @property
    def angle_degrees(self) -> float:
        """Included angle of the two normals, in degrees."""
        return math.degrees(math.acos(min(1.0, max(-1.0, self.cosine))))


def cosine_similarity(first: np.ndarray, second: np.ndarray) -> float:
    """Cosine of the angle between two normal vectors."""
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    norm_product = float(np.linalg.norm(first) * np.linalg.norm(second))
    if norm_product == 0.0:
        raise SimilarityError("cosine undefined for zero normals")
    return float(np.dot(first, second)) / norm_product


def triangle_t_squared(
    squared_distance: float,
    squared_cosine: float,
    params: MetricParams,
) -> float:
    """Eq. (4)/(6): ``¼ (L⁴ + L₀⁴)(sin²θ + sin²θ₀)``."""
    if squared_distance < 0:
        raise ValidationError("squared_distance must be non-negative")
    squared_cosine = min(1.0, max(0.0, squared_cosine))
    sin_squared = 1.0 - squared_cosine
    return 0.25 * (squared_distance**2 + params.l0**4) * (
        sin_squared + params.sin_theta0**2
    )


def evaluate_similarity_plain(
    model_a: SVMModel,
    model_b: SVMModel,
    params: Optional[MetricParams] = None,
) -> SimilarityResult:
    """Compute the metric in the clear (the paper's "ordinary" scheme).

    Linear models use Euclidean geometry; kernel models use the
    feature-space inner products of Section V-C (both models must share
    the same kernel).
    """
    params = params or MetricParams()
    if model_a.is_linear() != model_b.is_linear():
        raise SimilarityError("cannot compare linear and kernel models")

    points_a = model_boundary_points(
        model_a, params.lower, params.upper, params.resolution
    )
    points_b = model_boundary_points(
        model_b, params.lower, params.upper, params.resolution
    )
    m_a = np.asarray(centroid(points_a))
    m_b = np.asarray(centroid(points_b))

    if model_a.is_linear():
        squared_distance = float(np.sum((m_a - m_b) ** 2))
        cosine = cosine_similarity(model_a.weight_vector(), model_b.weight_vector())
        squared_cosine = cosine * cosine
    else:
        if model_a.kernel_spec != model_b.kernel_spec:
            raise SimilarityError(
                "kernel similarity requires both models to share a kernel: "
                f"{model_a.kernel_spec} vs {model_b.kernel_spec}"
            )
        kernel = model_a.kernel
        k_mm_a = kernel(m_a, m_a)
        k_mm_b = kernel(m_b, m_b)
        k_mm_ab = kernel(m_a, m_b)
        squared_distance = max(0.0, k_mm_a + k_mm_b - 2.0 * k_mm_ab)
        k_ww_a = normal_inner_product(model_a, model_a)
        k_ww_b = normal_inner_product(model_b, model_b)
        k_ww_ab = normal_inner_product(model_a, model_b)
        if k_ww_a <= 0 or k_ww_b <= 0:
            raise SimilarityError("degenerate feature-space normal")
        squared_cosine = (k_ww_ab * k_ww_ab) / (k_ww_a * k_ww_b)
        cosine = math.copysign(math.sqrt(min(1.0, squared_cosine)), k_ww_ab)

    t_squared = triangle_t_squared(squared_distance, squared_cosine, params)
    return SimilarityResult(
        t_squared=t_squared,
        centroid_distance=math.sqrt(squared_distance),
        cosine=cosine,
    )


def normal_inner_product(model_a: SVMModel, model_b: SVMModel) -> float:
    """Feature-space inner product of two models' normals.

    ``⟨n_A, n_B⟩ = Σ_s Σ_s' c_s c_s' K(x_s, x_s')`` with the shared
    kernel — the quantity the paper writes as ``K(w_A, w_B)``.
    """
    if model_a.kernel_spec != model_b.kernel_spec:
        raise SimilarityError("normal inner product needs a shared kernel")
    gram = model_a.kernel.gram(model_a.support_vectors, model_b.support_vectors)
    return float(
        model_a.dual_coefficients @ gram @ model_b.dual_coefficients
    )
