"""Boundary points of bounded decision surfaces (paper Eq. 5).

The similarity metric treats a trained model as a *bounded* hyperplane
inside the data box ``[α, β]^n``.  Its boundary points are the
intersections of the decision surface with the box edges: treat one
coordinate as a variable ``u`` and fix every other coordinate at ``α``
or ``β`` — ``n · 2^(n-1)`` one-dimensional problems.

* Linear models: each problem is one linear equation (Eq. 5).
* Kernel models: each problem is a univariate root search of
  ``d(t(u)) = 0`` along the edge, solved by sign-change scanning plus
  bisection (the paper's "equations with nonlinear form").
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import SimilarityError, ValidationError
from repro.ml.svm.model import SVMModel

Point = Tuple[float, ...]

#: Tolerance for deduplicating boundary points and accepting solutions.
_EPS = 1e-9


def _corner_assignments(count: int, lower: float, upper: float):
    return itertools.product((lower, upper), repeat=count)


def _dedupe(points: List[Point]) -> List[Point]:
    unique: List[Point] = []
    for point in points:
        if not any(
            max(abs(a - b) for a, b in zip(point, seen)) < _EPS for seen in unique
        ):
            unique.append(point)
    return unique


def linear_boundary_points(
    weights: Sequence[float],
    bias: float,
    lower: float = -1.0,
    upper: float = 1.0,
) -> List[Point]:
    """All box-edge intersections of the hyperplane ``w·t + b = 0``.

    Solves Eq. (5) for every axis/corner combination; infeasible
    equations (``w_j = 0`` or solution outside ``[lower, upper]``) are
    skipped.  Raises :class:`SimilarityError` when the plane misses the
    box entirely.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValidationError("weights must be a non-empty 1-D vector")
    if lower >= upper:
        raise ValidationError(f"lower ({lower}) must be below upper ({upper})")
    n = weights.size
    points: List[Point] = []
    for axis in range(n):
        w_axis = weights[axis]
        if abs(w_axis) < _EPS:
            continue
        others = [i for i in range(n) if i != axis]
        for corner in _corner_assignments(n - 1, lower, upper):
            residual = bias + float(
                np.dot(weights[others], np.asarray(corner, dtype=float))
            )
            u = -residual / w_axis
            if lower - _EPS <= u <= upper + _EPS:
                point = [0.0] * n
                point[axis] = min(max(u, lower), upper)
                for position, index in enumerate(others):
                    point[index] = corner[position]
                points.append(tuple(point))
    points = _dedupe(points)
    if not points:
        raise SimilarityError(
            "the hyperplane does not intersect the bounded data space"
        )
    return points


def _roots_on_segment(
    scalar_function: Callable[[float], float],
    lower: float,
    upper: float,
    resolution: int,
) -> List[float]:
    """All roots of a continuous function on [lower, upper] via scanning."""
    if resolution < 2:
        raise ValidationError(f"resolution must be at least 2, got {resolution}")
    xs = np.linspace(lower, upper, resolution)
    values = [scalar_function(float(x)) for x in xs]
    roots: List[float] = []
    for left, right, f_left, f_right in zip(xs, xs[1:], values, values[1:]):
        if abs(f_left) < _EPS:
            roots.append(float(left))
            continue
        if f_left * f_right < 0.0:
            roots.append(_bisect(scalar_function, float(left), float(right)))
    if abs(values[-1]) < _EPS:
        roots.append(float(xs[-1]))
    return roots


def _bisect(
    scalar_function: Callable[[float], float],
    left: float,
    right: float,
    iterations: int = 80,
) -> float:
    f_left = scalar_function(left)
    if f_left == 0.0:
        return left
    for _ in range(iterations):
        middle = 0.5 * (left + right)
        f_middle = scalar_function(middle)
        if abs(f_middle) < _EPS or (right - left) < 1e-14:
            return middle
        if f_left * f_middle < 0.0:
            right = middle
        else:
            left, f_left = middle, f_middle
    return 0.5 * (left + right)


def kernel_boundary_points(
    model: SVMModel,
    lower: float = -1.0,
    upper: float = 1.0,
    resolution: int = 64,
) -> List[Point]:
    """Box-edge intersections of a kernel decision surface ``d(t) = 0``.

    Scans every edge of the hypercube for sign changes of the decision
    function and refines each crossing by bisection — the nonlinear
    generalization of Eq. (5).
    """
    if lower >= upper:
        raise ValidationError(f"lower ({lower}) must be below upper ({upper})")
    n = model.dimension
    points: List[Point] = []
    for axis in range(n):
        others = [i for i in range(n) if i != axis]
        for corner in _corner_assignments(n - 1, lower, upper):
            template = np.zeros(n)
            for position, index in enumerate(others):
                template[index] = corner[position]

            def along_edge(u: float) -> float:
                template[axis] = u
                return model.decision_value(template)

            for root in _roots_on_segment(along_edge, lower, upper, resolution):
                point = template.copy()
                point[axis] = root
                points.append(tuple(float(v) for v in point))
    points = _dedupe(points)
    if not points:
        raise SimilarityError(
            "the decision surface does not intersect the bounded data space"
        )
    return points


def centroid(points: Sequence[Point]) -> Tuple[float, ...]:
    """Arithmetic mean of the boundary points (the paper's ``m``)."""
    if not points:
        raise SimilarityError("centroid of an empty point set")
    array = np.asarray(points, dtype=float)
    return tuple(float(v) for v in array.mean(axis=0))


def model_boundary_points(
    model: SVMModel,
    lower: float = -1.0,
    upper: float = 1.0,
    resolution: int = 64,
) -> List[Point]:
    """Boundary points for any model (exact for linear, scanned otherwise)."""
    if model.is_linear():
        return linear_boundary_points(model.weight_vector(), model.bias, lower, upper)
    return kernel_boundary_points(model, lower, upper, resolution)
