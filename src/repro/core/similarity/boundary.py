"""Boundary points of bounded decision surfaces (paper Eq. 5).

The similarity metric treats a trained model as a *bounded* hyperplane
inside the data box ``[α, β]^n``.  Its boundary points are the
intersections of the decision surface with the box edges: treat one
coordinate as a variable ``u`` and fix every other coordinate at ``α``
or ``β`` — ``n · 2^(n-1)`` one-dimensional problems.

* Linear models: each problem is one linear equation (Eq. 5).
* Kernel models: each problem is a univariate root search of
  ``d(t(u)) = 0`` along the edge, solved by sign-change scanning plus
  bisection (the paper's "equations with nonlinear form").
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import SimilarityError, ValidationError
from repro.ml.svm.model import SVMModel

Point = Tuple[float, ...]

#: Tolerance for deduplicating boundary points and accepting solutions.
_EPS = 1e-9


def _corner_assignments(count: int, lower: float, upper: float):
    return itertools.product((lower, upper), repeat=count)


def _dedupe(points: List[Point]) -> List[Point]:
    unique: List[Point] = []
    for point in points:
        if not any(
            max(abs(a - b) for a, b in zip(point, seen)) < _EPS for seen in unique
        ):
            unique.append(point)
    return unique


def linear_boundary_points(
    weights: Sequence[float],
    bias: float,
    lower: float = -1.0,
    upper: float = 1.0,
) -> List[Point]:
    """All box-edge intersections of the hyperplane ``w·t + b = 0``.

    Solves Eq. (5) for every axis/corner combination; infeasible
    equations (``w_j = 0`` or solution outside ``[lower, upper]``) are
    skipped.  Raises :class:`SimilarityError` when the plane misses the
    box entirely.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValidationError("weights must be a non-empty 1-D vector")
    if lower >= upper:
        raise ValidationError(f"lower ({lower}) must be below upper ({upper})")
    n = weights.size
    points: List[Point] = []
    for axis in range(n):
        w_axis = weights[axis]
        if abs(w_axis) < _EPS:
            continue
        others = [i for i in range(n) if i != axis]
        for corner in _corner_assignments(n - 1, lower, upper):
            residual = bias + float(
                np.dot(weights[others], np.asarray(corner, dtype=float))
            )
            u = -residual / w_axis
            if lower - _EPS <= u <= upper + _EPS:
                point = [0.0] * n
                point[axis] = min(max(u, lower), upper)
                for position, index in enumerate(others):
                    point[index] = corner[position]
                points.append(tuple(point))
    points = _dedupe(points)
    if not points:
        raise SimilarityError(
            "the hyperplane does not intersect the bounded data space"
        )
    return points


def _roots_on_segment(
    scalar_function: Callable[[float], float],
    lower: float,
    upper: float,
    resolution: int,
) -> List[float]:
    """All roots of a continuous function on [lower, upper] via scanning.

    Scalar reference for the batched scan in
    :func:`kernel_boundary_points`; the differential tests pin the two
    against each other.
    """
    if resolution < 2:
        raise ValidationError(f"resolution must be at least 2, got {resolution}")
    xs = np.linspace(lower, upper, resolution)
    values = [scalar_function(float(x)) for x in xs]
    roots: List[float] = []
    for left, right, f_left, f_right in zip(xs, xs[1:], values, values[1:]):
        if abs(f_left) < _EPS:
            roots.append(float(left))
            continue
        if f_left * f_right < 0.0:
            roots.append(_bisect(scalar_function, float(left), float(right)))
    if abs(values[-1]) < _EPS:
        roots.append(float(xs[-1]))
    return roots


def _bisect(
    scalar_function: Callable[[float], float],
    left: float,
    right: float,
    iterations: int = 80,
) -> float:
    f_left = scalar_function(left)
    if f_left == 0.0:
        return left
    for _ in range(iterations):
        middle = 0.5 * (left + right)
        f_middle = scalar_function(middle)
        if abs(f_middle) < _EPS or (right - left) < 1e-14:
            return middle
        if f_left * f_middle < 0.0:
            right = middle
        else:
            left, f_left = middle, f_middle
    return 0.5 * (left + right)


def kernel_boundary_points(
    model: SVMModel,
    lower: float = -1.0,
    upper: float = 1.0,
    resolution: int = 64,
) -> List[Point]:
    """Box-edge intersections of a kernel decision surface ``d(t) = 0``.

    Scans every edge of the hypercube for sign changes of the decision
    function and refines each crossing by bisection — the nonlinear
    generalization of Eq. (5).

    The whole scan grid (all ``n·2^(n-1)`` edges at once) is evaluated
    in one vectorized :meth:`~repro.ml.svm.model.SVMModel.decision_values`
    call, and all bracketed crossings are refined by lockstep bisection
    — one batched evaluation per bisection level instead of one scalar
    kernel evaluation per point (the scan used to dominate similarity
    wall time).
    """
    if lower >= upper:
        raise ValidationError(f"lower ({lower}) must be below upper ({upper})")
    if resolution < 2:
        raise ValidationError(f"resolution must be at least 2, got {resolution}")
    n = model.dimension
    xs = np.linspace(lower, upper, resolution)
    edges: List[Tuple[int, np.ndarray]] = []
    for axis in range(n):
        others = [i for i in range(n) if i != axis]
        for corner in _corner_assignments(n - 1, lower, upper):
            template = np.zeros(n)
            for position, index in enumerate(others):
                template[index] = corner[position]
            edges.append((axis, template))
    grid = np.empty((len(edges) * resolution, n))
    for row, (axis, template) in enumerate(edges):
        block = grid[row * resolution : (row + 1) * resolution]
        block[:] = template
        block[:, axis] = xs
    values = model.decision_values(grid).reshape(len(edges), resolution)

    # Per-edge ordered root slots: exact grid hits resolve immediately,
    # sign changes become brackets refined below.
    slots: List[List] = [[] for _ in edges]
    brackets: List[Tuple[int, int]] = []  # (edge index, slot index)
    bracket_left: List[float] = []
    bracket_right: List[float] = []
    bracket_f_left: List[float] = []
    for e, f in enumerate(values):
        index = 0
        while index < resolution - 1:
            if abs(f[index]) < _EPS:
                slots[e].append(float(xs[index]))
                index += 1
                continue
            if f[index] * f[index + 1] < 0.0:
                brackets.append((e, len(slots[e])))
                slots[e].append(None)
                bracket_left.append(float(xs[index]))
                bracket_right.append(float(xs[index + 1]))
                bracket_f_left.append(float(f[index]))
            index += 1
        if abs(f[-1]) < _EPS:
            slots[e].append(float(xs[-1]))

    if brackets:
        left = np.asarray(bracket_left)
        right = np.asarray(bracket_right)
        f_left = np.asarray(bracket_f_left)
        roots = np.full(len(brackets), np.nan)
        active = np.ones(len(brackets), dtype=bool)
        probe = np.empty((len(brackets), n))
        for b, (e, _) in enumerate(brackets):
            axis, template = edges[e]
            probe[b] = template
        axes = np.asarray([edges[e][0] for e, _ in brackets])
        for _ in range(80):
            if not active.any():
                break
            middle = 0.5 * (left + right)
            probe[np.arange(len(brackets)), axes] = middle
            f_middle = model.decision_values(probe[active])
            indices = np.flatnonzero(active)
            converged = (np.abs(f_middle) < _EPS) | (
                (right[indices] - left[indices]) < 1e-14
            )
            done = indices[converged]
            roots[done] = middle[done]
            active[done] = False
            live = indices[~converged]
            f_live = f_middle[~converged]
            descend = f_left[live] * f_live < 0.0
            right[live[descend]] = middle[live[descend]]
            left[live[~descend]] = middle[live[~descend]]
            f_left[live[~descend]] = f_live[~descend]
        still = np.flatnonzero(active)
        roots[still] = 0.5 * (left[still] + right[still])
        for b, (e, slot) in enumerate(brackets):
            slots[e][slot] = float(roots[b])

    points: List[Point] = []
    for e, (axis, template) in enumerate(edges):
        for root in slots[e]:
            point = template.copy()
            point[axis] = root
            points.append(tuple(float(v) for v in point))
    points = _dedupe(points)
    if not points:
        raise SimilarityError(
            "the decision surface does not intersect the bounded data space"
        )
    return points


def centroid(points: Sequence[Point]) -> Tuple[float, ...]:
    """Arithmetic mean of the boundary points (the paper's ``m``)."""
    if not points:
        raise SimilarityError("centroid of an empty point set")
    array = np.asarray(points, dtype=float)
    return tuple(float(v) for v in array.mean(axis=0))


def model_boundary_points(
    model: SVMModel,
    lower: float = -1.0,
    upper: float = 1.0,
    resolution: int = 64,
) -> List[Point]:
    """Boundary points for any model (exact for linear, scanned otherwise)."""
    if model.is_linear():
        return linear_boundary_points(model.weight_vector(), model.bias, lower, upper)
    return kernel_boundary_points(model, lower, upper, resolution)
