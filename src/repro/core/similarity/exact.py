"""Exact-rational helpers for the similarity protocols.

The OMPE layer is bit-exact over :class:`fractions.Fraction`; these
helpers snap float-valued geometry (centroids, weights, kernel
parameters) onto exact rationals once, at the protocol boundary, so
that every subsequent algebraic identity (Eq. 6 == Eq. 7) holds
exactly and tests can assert equality instead of tolerances.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence, Tuple

from repro.exceptions import ValidationError
from repro.math import fastpath

#: Snap denominator: 2^40 keeps IEEE doubles essentially intact.
_SNAP = 1 << 40


def snap(value: float) -> Fraction:
    """Snap a float to an exact fraction on the 2^-40 grid."""
    return Fraction(round(float(value) * _SNAP), _SNAP)


def snap_vector(values: Sequence[float]) -> Tuple[Fraction, ...]:
    """Snap a vector of floats."""
    return tuple(snap(v) for v in values)


def exact_dot(first: Sequence[Fraction], second: Sequence[Fraction]) -> Fraction:
    """Exact dot product.

    Hot path: rescale each vector onto a common denominator once, take
    the integer dot product, normalise once — instead of a ``Fraction``
    multiply-add (with gcd) per coordinate.  Same canonical value.
    """
    if len(first) != len(second):
        raise ValidationError(
            f"dot product of mismatched lengths {len(first)} and {len(second)}"
        )
    if fastpath.enabled():
        scaled_a = fastpath.scale_to_integers(first)
        if scaled_a is not None:
            scaled_b = fastpath.scale_to_integers(second)
            if scaled_b is not None:
                numerator = sum(
                    a * b for a, b in zip(scaled_a[0], scaled_b[0])
                )
                return Fraction(numerator, scaled_a[1] * scaled_b[1])
    return sum((a * b for a, b in zip(first, second)), Fraction(0))


def exact_norm_squared(vector: Sequence[Fraction]) -> Fraction:
    """Exact squared Euclidean norm."""
    return exact_dot(vector, vector)


def exact_poly_kernel(
    first: Sequence[Fraction],
    second: Sequence[Fraction],
    a0: Fraction,
    b0: Fraction,
    degree: int,
) -> Fraction:
    """Exact polynomial kernel ``(a0 x·y + b0)^p``."""
    if degree < 1:
        raise ValidationError(f"degree must be at least 1, got {degree}")
    return (a0 * exact_dot(first, second) + b0) ** degree


def exact_distance_squared(
    first: Sequence[Fraction], second: Sequence[Fraction]
) -> Fraction:
    """Exact squared Euclidean distance."""
    if len(first) != len(second):
        raise ValidationError("distance of mismatched vectors")
    if fastpath.enabled():
        combined = fastpath.scale_to_integers(tuple(first) + tuple(second))
        if combined is not None:
            half = len(first)
            numerators, common, _ = combined
            total = sum(
                (a - b) ** 2
                for a, b in zip(numerators[:half], numerators[half:])
            )
            return Fraction(total, common * common)
    return sum(((a - b) ** 2 for a, b in zip(first, second)), Fraction(0))
