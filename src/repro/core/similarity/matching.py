"""N-party private partner matching (paper Sections I and V, generalized).

The paper motivates similarity evaluation with partner search: "when a
company wants to find a business partner, it can firstly compare its
sale trending model with others'".  With N trainers that becomes a
pairwise tournament: every pair runs the two-party private similarity
protocol, each party sees only its own row of T values, and picks the
argmin.  This module orchestrates the tournament, aggregates the
communication cost across all pairwise runs, and reports the stable
best-match structure.  (For topology-level accounting across many
channels, see :class:`~repro.net.network.Network`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.ompe import OMPEConfig
from repro.core.similarity.linear import evaluate_similarity_private
from repro.core.similarity.metric import MetricParams
from repro.core.similarity.nonlinear import evaluate_similarity_private_nonlinear
from repro.exceptions import SimilarityError, ValidationError
from repro.ml.svm.model import SVMModel
from repro.utils.rng import ReproRandom

Pair = Tuple[str, str]


@dataclass(frozen=True)
class MatchingResult:
    """Outcome of an N-party matching tournament.

    Attributes
    ----------
    t_values:
        Similarity value per unordered pair (keys are sorted tuples).
    best_match:
        Each party's argmin-T partner.
    mutual_matches:
        Pairs that choose each other — the stable matches a deployment
        would act on.
    total_bytes:
        Aggregate protocol bytes across all pairwise runs.
    """

    t_values: Dict[Pair, float]
    best_match: Dict[str, str]
    mutual_matches: List[Pair]
    total_bytes: int

    def partner_ranking(self, party: str) -> List[Tuple[str, float]]:
        """All potential partners of ``party``, closest first."""
        rankings = []
        for (a, b), value in self.t_values.items():
            if party == a:
                rankings.append((b, value))
            elif party == b:
                rankings.append((a, value))
        if not rankings:
            raise ValidationError(f"{party!r} is not part of this matching")
        return sorted(rankings, key=lambda item: item[1])


def _normalized_pair(first: str, second: str) -> Pair:
    return (first, second) if first <= second else (second, first)


def run_matching(
    models: Mapping[str, SVMModel],
    params: Optional[MetricParams] = None,
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
) -> MatchingResult:
    """Run the full pairwise private-similarity tournament.

    All models must be of the same kind (all linear, or all sharing one
    polynomial kernel); mixed tournaments are rejected up front, before
    any protocol bytes flow.
    """
    names = list(models)
    if len(names) < 2:
        raise ValidationError("matching requires at least two parties")
    if len(set(names)) != len(names):
        raise ValidationError("party names must be distinct")
    linear_flags = {name: models[name].is_linear() for name in names}
    if len(set(linear_flags.values())) != 1:
        raise SimilarityError(
            "all parties must use the same model family (all linear or "
            "all kernel); got a mix"
        )
    all_linear = next(iter(linear_flags.values()))
    if not all_linear:
        specs = {
            (models[name].kernel_spec[0], tuple(sorted(models[name].kernel_spec[1].items())))
            for name in names
        }
        if len(specs) != 1:
            raise SimilarityError(
                f"kernel parties must share one kernel spec, got {len(specs)}"
            )

    params = params or MetricParams()
    config = config or OMPEConfig()
    root = ReproRandom(seed)

    t_values: Dict[Pair, float] = {}
    total_bytes = 0
    for first, second in combinations(names, 2):
        pair_seed = root.fork("pair", first, second).seed
        if all_linear:
            outcome = evaluate_similarity_private(
                models[first], models[second], params, config=config, seed=pair_seed
            )
        else:
            outcome = evaluate_similarity_private_nonlinear(
                models[first], models[second], params, config=config, seed=pair_seed
            )
        t_values[_normalized_pair(first, second)] = outcome.t
        total_bytes += outcome.total_bytes

    best_match: Dict[str, str] = {}
    for name in names:
        candidates = [
            (other, t_values[_normalized_pair(name, other)])
            for other in names
            if other != name
        ]
        best_match[name] = min(candidates, key=lambda item: item[1])[0]

    mutual_matches = sorted(
        {
            _normalized_pair(name, partner)
            for name, partner in best_match.items()
            if best_match.get(partner) == name
        }
    )
    return MatchingResult(
        t_values=t_values,
        best_match=best_match,
        mutual_matches=mutual_matches,
        total_bytes=total_bytes,
    )
