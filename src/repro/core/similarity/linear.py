"""Privacy-preserving linear similarity evaluation (paper Section V-B).

Alice and Bob are both trainers with linear models.  Bob learns the
triangle metric ``T`` and nothing else about Alice's model; Alice
learns only the two inseparable norms ``|m_B|²`` and ``|w_B|²``.

Protocol (three OMPE runs plus one clear exchange):

1. Both parties locally compute their bounded-hyperplane boundary
   points (Eq. 5), centroid ``m``, and normal ``w``.
2. Bob → Alice (clear): ``|m_B|²`` and ``|w_B|²`` — vector-module
   squares from which no coordinate can be recovered.
3. OMPE #1 — sender function ``m_A · y``, Bob's input ``m_B``, positive
   amplifier ``r_am``: Bob obtains ``x₁ = r_am (m_A · m_B)``.
4. OMPE #2 — sender function ``w_A · y`` with amplifier ``r_aw`` *and*
   offset ``r_b`` (so an orthogonal-normals zero is not recognizable):
   Bob obtains ``x₂ = r_aw (w_A · w_B) + r_b``.
5. OMPE #3 — Alice assembles the two-variate degree-4 polynomial of
   Eq. (7) with constants

       c₁ = |m_A|² + |m_B|²,  c₂ = L₀⁴,
       c₃ = (|w_A|² |w_B|²)⁻¹,  c₄ = 1 + sin²θ₀,
       d₁ = r_am⁻¹,  d₂ = r_aw⁻²,  d₃ = −r_b

   (note ``d₂ = r_aw⁻²``: the paper's Eq. 7 prints ``r_aw⁻¹``, which
   does not cancel the squared amplifier — see DESIGN.md errata) and
   Bob evaluates it at ``(x₁, x₂)`` *unamplified*, obtaining ``T²``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro import obs
from repro.core.ompe import OMPEConfig, OMPEFunction, execute_ompe
from repro.core.similarity.boundary import centroid, linear_boundary_points
from repro.core.similarity.exact import (
    exact_norm_squared,
    snap,
    snap_vector,
)
from repro.core.similarity.metric import MetricParams
from repro.exceptions import SimilarityError, ValidationError
from repro.math.multivariate import MultivariatePolynomial
from repro.math.polynomials import Number
from repro.ml.svm.model import SVMModel
from repro.net.channel import Channel
from repro.net.runner import ProtocolReport
from repro.utils.rng import ReproRandom


@dataclass(frozen=True)
class PrivateSimilarityOutcome:
    """What Bob ends up with, plus full cost accounting.

    ``t`` is the similarity value (smaller = more similar models);
    ``t_squared`` is the exact protocol output; ``reports`` maps each
    phase to its protocol report.
    """

    t: float
    t_squared: Number
    reports: Dict[str, ProtocolReport]

    @property
    def total_bytes(self) -> int:
        return sum(report.total_bytes for report in self.reports.values())

    @property
    def total_rounds(self) -> int:
        return sum(report.rounds for report in self.reports.values())


def build_t_squared_polynomial(
    c1: Fraction,
    c2: Fraction,
    c3: Fraction,
    c4: Fraction,
    d1: Fraction,
    d2: Fraction,
    d3: Fraction,
) -> MultivariatePolynomial:
    """Assemble Eq. (7) as an explicit two-variate degree-4 polynomial.

    ``T²(x₁, x₂) = ¼ [(c₁ − 2 d₁ x₁)² + c₂] [c₄ − c₃ d₂ (d₃ + x₂)²]``
    """
    x1 = MultivariatePolynomial(2, {(1, 0): Fraction(1)})
    x2 = MultivariatePolynomial(2, {(0, 1): Fraction(1)})
    const = lambda value: MultivariatePolynomial.constant(2, Fraction(value))
    left = const(c1) - x1 * (2 * d1)
    left = left * left + const(c2)
    shifted = const(d3) + x2
    right = const(c4) - shifted * shifted * (c3 * d2)
    return left * right * Fraction(1, 4)


def linear_geometry(model: SVMModel, params: MetricParams):
    """Snapped centroid and normal of a linear model's bounded hyperplane.

    Shared by the in-process protocol and the remote role drivers
    (:mod:`repro.core.similarity.remote`) so both sides derive identical
    exact-rational geometry from the same model.
    """
    m = snap_vector(
        centroid(
            linear_boundary_points(
                model.weight_vector(), model.bias, params.lower, params.upper
            )
        )
    )
    w = snap_vector(model.weight_vector())
    return m, w


def evaluate_similarity_private(
    model_a: SVMModel,
    model_b: SVMModel,
    params: Optional[MetricParams] = None,
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
    policy=None,
) -> PrivateSimilarityOutcome:
    """Run the full private linear similarity protocol.

    ``policy`` (an :class:`~repro.core.similarity.policy.OutputPolicy`)
    switches the return type to a
    :class:`~repro.core.similarity.policy.MitigatedSimilarityOutcome`
    that withholds whatever the policy forbids; ``None`` keeps the
    legacy raw outcome.
    """
    with obs.get_tracer().span(
        "similarity.linear", phase="similarity", dimension=model_a.dimension
    ) as span:
        outcome = _evaluate_similarity_private(
            model_a, model_b, params, config, seed
        )
        span.set(total_bytes=outcome.total_bytes, t=float(outcome.t))
    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_similarity_runs_total",
            "Completed private similarity evaluations",
        ).inc(kind="linear")
    if policy is not None:
        from repro.core.similarity.policy import (
            mitigate_similarity_outcome,
            policy_seed,
        )

        return mitigate_similarity_outcome(
            outcome, policy, seed=policy_seed(seed)
        )
    return outcome


def _evaluate_similarity_private(
    model_a: SVMModel,
    model_b: SVMModel,
    params: Optional[MetricParams],
    config: Optional[OMPEConfig],
    seed: Optional[int],
) -> PrivateSimilarityOutcome:
    params = params or MetricParams()
    config = config or OMPEConfig()
    if not (model_a.is_linear() and model_b.is_linear()):
        raise ValidationError(
            "evaluate_similarity_private requires two linear models "
            "(see repro.core.similarity.nonlinear for kernel models)"
        )
    root = ReproRandom(seed)

    # Step 1 — local geometry, snapped to exact rationals.
    m_a, w_a = linear_geometry(model_a, params)
    m_b, w_b = linear_geometry(model_b, params)

    # Step 2 — Bob sends the two inseparable norms in the clear.
    with obs.get_tracer().span("similarity.clear", party="bob", phase="norms"):
        clear_channel = Channel("bob", "alice")
        clear_channel.send("bob", "similarity/norms", (exact_norm_squared(m_b), exact_norm_squared(w_b)))
        norm_m_b, norm_w_b = clear_channel.receive("alice", "similarity/norms")
    clear_report = ProtocolReport(
        result=None,
        transcript=clear_channel.transcript,
        simulated_network_s=clear_channel.simulated_time,
    )
    if norm_w_b == 0:
        raise SimilarityError("Bob's normal vector is degenerate (zero)")
    norm_w_a = exact_norm_squared(w_a)
    if norm_w_a == 0:
        raise SimilarityError("Alice's normal vector is degenerate (zero)")

    # Step 3 — OMPE #1: x1 = r_am (m_A · m_B).
    centroid_function = OMPEFunction.from_polynomial(
        MultivariatePolynomial.affine(list(m_a), Fraction(0))
    )
    with obs.get_tracer().span("similarity.centroid_ompe", phase="centroid"):
        run1 = execute_ompe(
            centroid_function,
            m_b,
            config=config,
            seed=root.fork("run1").seed,
            amplify=True,
            offset=False,
            sender_name="alice",
            receiver_name="bob",
        )

    # Step 4 — OMPE #2: x2 = r_aw (w_A · w_B) + r_b.
    normal_function = OMPEFunction.from_polynomial(
        MultivariatePolynomial.affine(list(w_a), Fraction(0))
    )
    with obs.get_tracer().span("similarity.normal_ompe", phase="normal"):
        run2 = execute_ompe(
            normal_function,
            w_b,
            config=config,
            seed=root.fork("run2").seed,
            amplify=True,
            offset=True,
            sender_name="alice",
            receiver_name="bob",
        )

    # Step 5 — OMPE #3: Bob evaluates Eq. (7) at (x1, x2), unamplified.
    c1 = exact_norm_squared(m_a) + norm_m_b
    c2 = snap(params.l0) ** 4
    c3 = 1 / (norm_w_a * norm_w_b)
    c4 = 1 + snap(params.sin_theta0) ** 2
    d1 = 1 / run1.amplifier
    d2 = 1 / run2.amplifier**2
    d3 = -run2.offset
    t_squared_polynomial = build_t_squared_polynomial(c1, c2, c3, c4, d1, d2, d3)
    with obs.get_tracer().span("similarity.area_ompe", phase="area"):
        run3 = execute_ompe(
            OMPEFunction.from_polynomial(t_squared_polynomial),
            (run1.value, run2.value),
            config=config,
            seed=root.fork("run3").seed,
            amplify=False,
            offset=False,
            sender_name="alice",
            receiver_name="bob",
        )

    t_squared = run3.value
    if t_squared < 0:
        raise SimilarityError(f"negative T² ({t_squared}) — protocol corrupted")
    return PrivateSimilarityOutcome(
        t=math.sqrt(float(t_squared)),
        t_squared=t_squared,
        reports={
            "clear": clear_report,
            "centroid_ompe": run1.report,
            "normal_ompe": run2.report,
            "area_ompe": run3.report,
        },
    )
