"""Role-split similarity drivers for the TCP transport.

:func:`~repro.core.similarity.linear.evaluate_similarity_private` runs
both trainers lock-step in one process.  These drivers split that flow
into Alice's side (the OMPE sender of all three runs) and Bob's side
(the receiver, who learns ``T``), each running against its own endpoint
of a real connection.

Each protocol phase — the clear norm exchange and the three OMPE runs —
gets a *fresh channel* from ``channel_factory`` (for the TCP transport,
a fresh :class:`~repro.net.wire.WireChannel` over the same connection),
so per-phase reports carry per-phase transcripts exactly like the
in-process protocol.  Seeds derive identically on both sides
(``ReproRandom(seed).fork("run1"/"run2"/"run3").seed``), making the
split runs bit-identical to the in-process reference: same masked
values, same ``T²``, same per-phase byte counts.

What crosses the wire before these drivers start — model metadata like
the peer's support-vector count for the nonlinear normal function —
travels in the service layer's session-open control exchange
(:mod:`repro.net.service`), not on the protocol channels, so protocol
transcripts stay comparable across transports.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, Dict, Optional

from repro import obs
from repro.core.ompe import OMPEConfig, OMPEFunction
from repro.core.ompe.protocol import run_ompe_receiver, run_ompe_sender
from repro.core.similarity.exact import (
    exact_norm_squared,
    exact_poly_kernel,
    snap,
)
from repro.core.similarity.linear import (
    PrivateSimilarityOutcome,
    build_t_squared_polynomial,
    linear_geometry,
)
from repro.core.similarity.metric import MetricParams
from repro.core.similarity.nonlinear import (
    _normal_inner_function,
    _pack_model,
    _polynomial_kernel_params,
    exact_normal_inner,
    kernel_centroid,
)
from repro.exceptions import SimilarityError, ValidationError
from repro.math.multivariate import MultivariatePolynomial
from repro.ml.svm.model import SVMModel
from repro.net.runner import ProtocolReport
from repro.utils.rng import ReproRandom

#: Factory yielding one fresh channel endpoint per protocol phase.
ChannelFactory = Callable[[], object]


def _clear_report(channel) -> ProtocolReport:
    return ProtocolReport(
        result=None,
        transcript=channel.transcript,
        simulated_network_s=channel.simulated_time,
    )


def run_similarity_alice_linear(
    model_a: SVMModel,
    channel_factory: ChannelFactory,
    params: Optional[MetricParams] = None,
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
) -> Dict[str, ProtocolReport]:
    """Alice's (sender) side of the private linear similarity protocol.

    Returns Alice's per-phase reports; the similarity value belongs to
    Bob and never enters Alice's view.
    """
    params = params or MetricParams()
    config = config or OMPEConfig()
    if not model_a.is_linear():
        raise ValidationError("linear similarity requires a linear model")
    root = ReproRandom(seed)
    m_a, w_a = linear_geometry(model_a, params)

    clear = channel_factory()
    norm_m_b, norm_w_b = clear.receive("alice", "similarity/norms")
    clear_report = _clear_report(clear)
    if norm_w_b == 0:
        raise SimilarityError("Bob's normal vector is degenerate (zero)")
    norm_w_a = exact_norm_squared(w_a)
    if norm_w_a == 0:
        raise SimilarityError("Alice's normal vector is degenerate (zero)")

    run1 = run_ompe_sender(
        OMPEFunction.from_polynomial(
            _affine_polynomial(list(m_a))
        ),
        channel_factory(),
        config=config,
        seed=root.fork("run1").seed,
        amplify=True,
        offset=False,
        name="alice",
    )
    run2 = run_ompe_sender(
        OMPEFunction.from_polynomial(
            _affine_polynomial(list(w_a))
        ),
        channel_factory(),
        config=config,
        seed=root.fork("run2").seed,
        amplify=True,
        offset=True,
        name="alice",
    )

    c1 = exact_norm_squared(m_a) + norm_m_b
    c2 = snap(params.l0) ** 4
    c3 = 1 / (norm_w_a * norm_w_b)
    c4 = 1 + snap(params.sin_theta0) ** 2
    polynomial = build_t_squared_polynomial(
        c1, c2, c3, c4,
        1 / run1.amplifier, 1 / run2.amplifier**2, -run2.offset,
    )
    run3 = run_ompe_sender(
        OMPEFunction.from_polynomial(polynomial),
        channel_factory(),
        config=config,
        seed=root.fork("run3").seed,
        amplify=False,
        offset=False,
        name="alice",
    )
    return {
        "clear": clear_report,
        "centroid_ompe": run1.report,
        "normal_ompe": run2.report,
        "area_ompe": run3.report,
    }


def run_similarity_bob_linear(
    model_b: SVMModel,
    channel_factory: ChannelFactory,
    params: Optional[MetricParams] = None,
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
    policy=None,
) -> PrivateSimilarityOutcome:
    """Bob's (receiver) side — he learns the triangle metric ``T``.

    A non-``None`` ``policy`` applies output mitigation before the
    outcome leaves this function, with the mitigation seed derived from
    the protocol seed — the same derivation the in-process evaluator
    uses, so mitigated outcomes are bit-identical across transports.
    """
    params = params or MetricParams()
    config = config or OMPEConfig()
    if not model_b.is_linear():
        raise ValidationError("linear similarity requires a linear model")
    root = ReproRandom(seed)
    m_b, w_b = linear_geometry(model_b, params)

    clear = channel_factory()
    clear.send(
        "bob",
        "similarity/norms",
        (exact_norm_squared(m_b), exact_norm_squared(w_b)),
    )
    clear_report = _clear_report(clear)
    if exact_norm_squared(w_b) == 0:
        raise SimilarityError("Bob's normal vector is degenerate (zero)")

    run1 = run_ompe_receiver(
        m_b, channel_factory(), config=config,
        seed=root.fork("run1").seed, name="bob",
    )
    run2 = run_ompe_receiver(
        w_b, channel_factory(), config=config,
        seed=root.fork("run2").seed, name="bob",
    )
    run3 = run_ompe_receiver(
        (run1.value, run2.value), channel_factory(), config=config,
        seed=root.fork("run3").seed, name="bob",
    )
    return _bob_outcome(
        run3.value, clear_report, run1, run2, run3,
        policy=policy, seed=seed,
    )


def run_similarity_alice_nonlinear(
    model_a: SVMModel,
    peer_sv_count: int,
    channel_factory: ChannelFactory,
    params: Optional[MetricParams] = None,
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
) -> Dict[str, ProtocolReport]:
    """Alice's side of the kernel similarity protocol.

    ``peer_sv_count`` is Bob's support-vector count, needed to shape
    the packed-model normal function; it arrives via the service
    layer's session-open exchange.
    """
    params = params or MetricParams()
    config = config or OMPEConfig()
    if peer_sv_count < 1:
        raise ValidationError(
            f"peer_sv_count must be at least 1, got {peer_sv_count}"
        )
    a0, b0, degree = _polynomial_kernel_params(model_a)
    root = ReproRandom(seed)
    m_a = kernel_centroid(model_a, params)

    clear = channel_factory()
    k_mm_b, k_ww_b = clear.receive("alice", "similarity/kernel-norms")
    clear_report = _clear_report(clear)
    k_ww_a = exact_normal_inner(model_a, model_a)
    if k_ww_a <= 0 or k_ww_b <= 0:
        raise SimilarityError("degenerate feature-space normal")

    run1 = run_ompe_sender(
        OMPEFunction.from_callable(
            arity=model_a.dimension,
            total_degree=degree,
            evaluate=lambda y: exact_poly_kernel(m_a, y, a0, b0, degree),
        ),
        channel_factory(),
        config=config,
        seed=root.fork("run1").seed,
        amplify=True,
        offset=False,
        name="alice",
    )
    run2 = run_ompe_sender(
        _normal_inner_function(
            model_a, a0, b0, degree, peer_sv_count, model_a.dimension
        ),
        channel_factory(),
        config=config,
        seed=root.fork("run2").seed,
        amplify=True,
        offset=True,
        name="alice",
    )

    c1 = exact_poly_kernel(m_a, m_a, a0, b0, degree) + k_mm_b
    c2 = snap(params.l0) ** 4
    c3 = 1 / (k_ww_a * k_ww_b)
    c4 = 1 + snap(params.sin_theta0) ** 2
    polynomial = build_t_squared_polynomial(
        c1, c2, c3, c4,
        1 / run1.amplifier, 1 / run2.amplifier**2, -run2.offset,
    )
    run3 = run_ompe_sender(
        OMPEFunction.from_polynomial(polynomial),
        channel_factory(),
        config=config,
        seed=root.fork("run3").seed,
        amplify=False,
        offset=False,
        name="alice",
    )
    return {
        "clear": clear_report,
        "centroid_ompe": run1.report,
        "normal_ompe": run2.report,
        "area_ompe": run3.report,
    }


def run_similarity_bob_nonlinear(
    model_b: SVMModel,
    channel_factory: ChannelFactory,
    params: Optional[MetricParams] = None,
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
    policy=None,
) -> PrivateSimilarityOutcome:
    """Bob's side of the kernel similarity protocol.

    ``policy`` behaves as in :func:`run_similarity_bob_linear`.
    """
    params = params or MetricParams()
    config = config or OMPEConfig()
    a0, b0, degree = _polynomial_kernel_params(model_b)
    root = ReproRandom(seed)
    m_b = kernel_centroid(model_b, params)

    clear = channel_factory()
    clear.send(
        "bob",
        "similarity/kernel-norms",
        (
            exact_poly_kernel(m_b, m_b, a0, b0, degree),
            exact_normal_inner(model_b, model_b),
        ),
    )
    clear_report = _clear_report(clear)

    run1 = run_ompe_receiver(
        m_b, channel_factory(), config=config,
        seed=root.fork("run1").seed, name="bob",
    )
    run2 = run_ompe_receiver(
        _pack_model(model_b), channel_factory(), config=config,
        seed=root.fork("run2").seed, name="bob",
    )
    run3 = run_ompe_receiver(
        (run1.value, run2.value), channel_factory(), config=config,
        seed=root.fork("run3").seed, name="bob",
    )
    return _bob_outcome(
        run3.value, clear_report, run1, run2, run3,
        policy=policy, seed=seed,
    )


def _affine_polynomial(weights):
    return MultivariatePolynomial.affine(weights, Fraction(0))


def _bob_outcome(
    t_squared, clear_report, run1, run2, run3, policy=None, seed=None
) -> PrivateSimilarityOutcome:
    if t_squared < 0:
        raise SimilarityError(
            f"negative T² ({t_squared}) — protocol corrupted"
        )
    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_similarity_runs_total",
            "Completed private similarity evaluations",
        ).inc(kind="remote")
    outcome = PrivateSimilarityOutcome(
        t=math.sqrt(float(t_squared)),
        t_squared=t_squared,
        reports={
            "clear": clear_report,
            "centroid_ompe": run1.report,
            "normal_ompe": run2.report,
            "area_ompe": run3.report,
        },
    )
    if policy is not None:
        from repro.core.similarity.policy import (
            mitigate_similarity_outcome,
            policy_seed,
        )

        return mitigate_similarity_outcome(
            outcome, policy, seed=policy_seed(seed)
        )
    return outcome
