"""Privacy analysis: Level-1/2 checks and collusion attacks."""

from repro.core.privacy.analysis import (
    client_view_is_randomized,
    cover_disguise_samples,
    extract_view,
    indistinguishability_test,
    scan_view_for_values,
)
from repro.core.privacy.attacks import (
    DistanceRetrievalAttack,
    EstimatedModel,
    ModelEstimationAttack,
)
from repro.core.privacy.leakage import (
    FingerprintResult,
    LeakageScore,
    ReleasedTable,
    ScoreTable,
    SimilarityFingerprintAttack,
    collect_score_table,
    leakage_score,
    perturb_table,
    record_leakage,
    release_table,
    score_table_from_models,
    synthetic_population,
)
from repro.core.privacy.security import (
    SecurityEstimate,
    estimate_security,
    minimum_security_degree,
)
from repro.core.privacy.simulator import (
    sender_view_indistinguishable,
    simulate_sender_view,
)

__all__ = [
    "client_view_is_randomized",
    "cover_disguise_samples",
    "extract_view",
    "indistinguishability_test",
    "scan_view_for_values",
    "DistanceRetrievalAttack",
    "EstimatedModel",
    "ModelEstimationAttack",
    "FingerprintResult",
    "LeakageScore",
    "ReleasedTable",
    "ScoreTable",
    "SimilarityFingerprintAttack",
    "collect_score_table",
    "leakage_score",
    "perturb_table",
    "record_leakage",
    "release_table",
    "score_table_from_models",
    "synthetic_population",
    "SecurityEstimate",
    "estimate_security",
    "minimum_security_degree",
    "sender_view_indistinguishable",
    "simulate_sender_view",
]
