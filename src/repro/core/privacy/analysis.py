"""Executable privacy objectives (paper Section VI-A).

The paper states two privacy levels; this module turns both into
checkable properties over protocol transcripts:

* **Level 1** — during the computation, neither party's private values
  appear in the other's view.  :func:`extract_view` pulls a party's
  received messages from a transcript; :func:`scan_view_for_values`
  searches every scalar in that view for forbidden values (the client's
  raw coordinates, the trainer's raw coefficients).  The OMPE design
  makes these searches come up empty: covers are polynomial evaluations
  at nonzero nodes, never the constant terms themselves.
* **Level 2** — after the computation, even colluding participants
  learn nothing beyond the output.  :func:`cover_disguise_samples`
  extracts the cover and disguise vectors from a transcript so a K-S
  test can confirm they are statistically indistinguishable (our
  disguises are *identically distributed* with covers by construction),
  and the attack classes in :mod:`repro.core.privacy.attacks` cover the
  collusion side.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence, Set, Tuple

from repro.exceptions import ValidationError
from repro.math.statistics import KSResult, ks_2samp
from repro.net.message import Message
from repro.net.transcript import Transcript


def extract_view(transcript: Transcript, party: str) -> List[Message]:
    """A party's protocol view: every message it received."""
    return transcript.received_by(party)


def _iter_scalars(payload) -> Iterable:
    if isinstance(payload, (int, float, Fraction)) and not isinstance(payload, bool):
        yield payload
    elif isinstance(payload, (tuple, list)):
        for item in payload:
            yield from _iter_scalars(item)
    elif isinstance(payload, dict):
        for value in payload.values():
            yield from _iter_scalars(value)
    elif hasattr(payload, "__dataclass_fields__"):
        for name in payload.__dataclass_fields__:
            yield from _iter_scalars(getattr(payload, name))
    # bytes payloads (OT ciphertexts) carry no readable scalars.


def scan_view_for_values(
    view: Sequence[Message], forbidden: Sequence
) -> List[Tuple[str, object]]:
    """Find forbidden scalar values anywhere in a party's view.

    Returns ``(msg_type, value)`` hits; an empty list certifies the
    Level-1 objective for those values.  Comparison is exact, which is
    the right notion here: the protocol manipulates exact rationals, so
    a leak would reproduce the value bit-for-bit.
    """
    forbidden_set: Set = set(forbidden)
    if not forbidden_set:
        raise ValidationError("no forbidden values given")
    hits: List[Tuple[str, object]] = []
    for message in view:
        for scalar in _iter_scalars(message.payload):
            if scalar in forbidden_set:
                hits.append((message.msg_type, scalar))
    return hits


def cover_disguise_samples(
    transcript: Transcript,
    cover_positions: Sequence[int],
) -> Tuple[List[float], List[float]]:
    """Split the OMPE point-phase vectors into cover and disguise pools.

    ``cover_positions`` is receiver-side ground truth (never available
    to the sender); the returned flattened scalar pools feed a K-S
    indistinguishability test.
    """
    point_messages = transcript.of_type("ompe/points")
    if not point_messages:
        raise ValidationError("transcript contains no ompe/points message")
    pairs = point_messages[0].payload
    cover_set = set(cover_positions)
    covers: List[float] = []
    disguises: List[float] = []
    for index, (node, vector) in enumerate(pairs):
        target = covers if index in cover_set else disguises
        target.extend(float(v) for v in vector)
    if not covers or not disguises:
        raise ValidationError("transcript has no covers or no disguises")
    return covers, disguises


def indistinguishability_test(
    transcript: Transcript, cover_positions: Sequence[int]
) -> KSResult:
    """K-S test of cover vs disguise marginals (large p = indistinguishable)."""
    covers, disguises = cover_disguise_samples(transcript, cover_positions)
    return ks_2samp(covers, disguises)


def client_view_is_randomized(
    randomized_values: Sequence, true_values: Sequence
) -> bool:
    """Check the Level-2 client-side property: values differ from truth.

    With fresh positive amplifiers, the client's received value should
    equal the true decision value essentially never (probability zero
    over the amplifier draw); signs must agree.
    """
    if len(randomized_values) != len(true_values):
        raise ValidationError("value sequences must be paired")
    for randomized, truth in zip(randomized_values, true_values):
        sign_match = (randomized >= 0) == (truth >= 0)
        if not sign_match:
            return False
        if truth != 0 and randomized == truth:
            return False
    return True
