"""Collusion attacks on the classification protocol (paper Section VI-A).

Two attacks justify the amplifier ``r_a``:

* :class:`DistanceRetrievalAttack` (Fig. 6) — if the protocol returned
  the *true* decision value ``d(t̃)``, colluding clients holding
  ``n + 1`` pairs ``(t̃_i, d(t̃_i))`` recover ``(w, b)`` exactly by
  solving the linear system ``w·t̃_i + b = d_i`` (geometrically: common
  tangents of the paper's distance circles).
* :class:`ModelEstimationAttack` (Fig. 5) — with a fresh positive
  ``r_a`` per query, each client only holds ``r_a^{(i)} d(t̃_i)``.
  Fitting the same linear system to these inconsistently-scaled values
  produces estimates that "keep rambling": the direction error does not
  decrease as colluders pool more samples.  The attack class reproduces
  the paper's experiment (2/4/10/20/50 pooled samples against a 2-D
  classifier trained on 1000 points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classification.linear import classify_linear
from repro.core.ompe import OMPEConfig
from repro.core.ompe.config import draw_amplifier
from repro.exceptions import ValidationError
from repro.ml.svm.model import SVMModel
from repro.utils.rng import ReproRandom


@dataclass(frozen=True)
class EstimatedModel:
    """An adversary's estimate of Alice's linear classifier."""

    weights: Tuple[float, ...]
    bias: float
    sample_count: int

    def direction_error_degrees(self, true_weights: Sequence[float]) -> float:
        """Angle between the estimated and true directions, in degrees.

        Sign-invariant (a hyperplane has two normals): returns the
        angle to whichever orientation is closer, in [0, 90].
        """
        estimate = np.asarray(self.weights, dtype=float)
        truth = np.asarray(true_weights, dtype=float)
        denominator = np.linalg.norm(estimate) * np.linalg.norm(truth)
        if denominator == 0.0:
            return 90.0
        cosine = abs(float(np.dot(estimate, truth)) / denominator)
        return float(np.degrees(np.arccos(min(1.0, cosine))))


def _solve_linear_system(
    samples: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, float]:
    """Least-squares fit of ``w·t + b = value``."""
    design = np.hstack([samples, np.ones((samples.shape[0], 1))])
    solution, *_ = np.linalg.lstsq(design, values, rcond=None)
    return solution[:-1], float(solution[-1])


def _dense_rows(
    queries: np.ndarray, values: Sequence[Optional[float]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop sparse entries (``None``/NaN values) from a score table.

    Threshold-filtered output (``OutputPolicy`` ``threshold``/``top-k``
    modes) hands colluders a table with holes; fitting must run on the
    surviving dense rows rather than feeding NaN into ``lstsq`` (which
    either raises or silently poisons the whole solution).
    """
    if len(values) != queries.shape[0]:
        raise ValidationError(
            f"{queries.shape[0]} queries but {len(values)} values"
        )
    kept_queries = []
    kept_values = []
    for query, value in zip(queries, values):
        if value is None:
            continue
        value = float(value)
        if not np.isfinite(value):
            continue
        kept_queries.append(query)
        kept_values.append(value)
    if not kept_queries:
        return np.empty((0, queries.shape[1])), np.empty(0)
    return np.asarray(kept_queries, dtype=float), np.asarray(kept_values)


class DistanceRetrievalAttack:
    """Fig. 6: exact model recovery when ``r_a`` is disabled.

    Uses the protocol itself with ``amplify=False`` (a deliberately
    weakened configuration) and shows that ``n + 1`` queries suffice.
    """

    def __init__(self, model: SVMModel, config: Optional[OMPEConfig] = None) -> None:
        if not model.is_linear():
            raise ValidationError("the retrieval attack targets linear models")
        self.model = model
        self.config = config or OMPEConfig()

    def run(
        self,
        queries: np.ndarray,
        seed: int = 0,
        through_protocol: bool = True,
        exact: bool = False,
    ) -> EstimatedModel:
        """Recover ``(w, b)`` from ``len(queries)`` unamplified results.

        ``through_protocol=False`` skips the OMPE machinery and queries
        the decision function directly (fast path for large sweeps);
        both paths return identical values because the protocol is
        exact.  ``exact=True`` keeps the protocol's rational values and
        solves the linear system over Fractions — *bit-exact* recovery
        from exactly ``n + 1`` queries (requires ``through_protocol``).
        """
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValidationError("queries must be a 2-D array")
        if queries.shape[0] < self.model.dimension + 1:
            raise ValidationError(
                f"need at least n+1 = {self.model.dimension + 1} queries"
            )
        if exact:
            if not through_protocol:
                raise ValidationError(
                    "exact recovery reads the protocol's rational values; "
                    "set through_protocol=True"
                )
            from fractions import Fraction

            from repro.math.linalg import fit_affine_exact

            count = self.model.dimension + 1
            exact_values = []
            exact_points = []
            for index, query in enumerate(queries[:count]):
                outcome = classify_linear(
                    self.model, query, config=self.config,
                    seed=seed + index, amplify=False,
                )
                exact_values.append(outcome.randomized_value)
                exact_points.append([Fraction(v) for v in query])
            weights, bias = fit_affine_exact(exact_points, exact_values)
            return EstimatedModel(
                weights=tuple(float(w) for w in weights),
                bias=float(bias),
                sample_count=count,
            )
        values = []
        for index, query in enumerate(queries):
            if through_protocol:
                outcome = classify_linear(
                    self.model,
                    query,
                    config=self.config,
                    seed=seed + index,
                    amplify=False,
                )
                values.append(float(outcome.randomized_value))
            else:
                values.append(self.model.decision_value(query))
        weights, bias = _solve_linear_system(queries, np.asarray(values))
        return EstimatedModel(
            weights=tuple(float(w) for w in weights),
            bias=bias,
            sample_count=queries.shape[0],
        )

    def estimate_from_table(
        self,
        queries: np.ndarray,
        values: Sequence[Optional[float]],
    ) -> EstimatedModel:
        """Fit on a possibly sparse colluder table.

        ``values`` may carry ``None``/NaN holes (threshold-filtered or
        top-k-filtered output); the fit uses only the dense rows and
        reports how many survived via ``sample_count``.  With the holes
        the system can drop below ``n + 1`` usable equations, in which
        case recovery is impossible and this raises instead of
        returning a silently meaningless solution.
        """
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValidationError("queries must be a 2-D array")
        dense_queries, dense_values = _dense_rows(queries, values)
        needed = self.model.dimension + 1
        if dense_queries.shape[0] < needed:
            raise ValidationError(
                f"only {dense_queries.shape[0]} dense rows survive the "
                f"filtered table; recovery needs at least n+1 = {needed}"
            )
        weights, bias = _solve_linear_system(dense_queries, dense_values)
        return EstimatedModel(
            weights=tuple(float(w) for w in weights),
            bias=bias,
            sample_count=int(dense_queries.shape[0]),
        )


class ModelEstimationAttack:
    """Fig. 5: estimation from amplified results keeps rambling.

    Each query runs the *real* protocol (fresh ``r_a``); the colluders
    then fit a single linear model to the inconsistently scaled values.
    """

    def __init__(self, model: SVMModel, config: Optional[OMPEConfig] = None) -> None:
        if not model.is_linear():
            raise ValidationError("the estimation attack targets linear models")
        self.model = model
        self.config = config or OMPEConfig()

    def collect(
        self, count: int, rng: ReproRandom, seed: int = 0, through_protocol: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pool ``count`` amplified classification results.

        ``through_protocol=False`` simulates the amplified view without
        the OT machinery (identical distribution, much faster), used by
        the figure sweep.
        """
        if count < 2:
            raise ValidationError("pooling fewer than 2 samples is meaningless")
        dimension = self.model.dimension
        queries = np.asarray(
            [
                [rng.uniform(-1.0, 1.0) for _ in range(dimension)]
                for _ in range(count)
            ]
        )
        values = []
        for index, query in enumerate(queries):
            if through_protocol:
                outcome = classify_linear(
                    self.model, query, config=self.config, seed=seed + index
                )
                values.append(float(outcome.randomized_value))
            else:
                amplifier = draw_amplifier(rng.fork("ra", index), exact=False)
                values.append(amplifier * self.model.decision_value(query))
        return queries, np.asarray(values)

    def estimate(
        self, count: int, seed: int = 0, through_protocol: bool = False
    ) -> EstimatedModel:
        """Run the attack once with ``count`` pooled samples."""
        rng = ReproRandom(seed).fork("estimation", count)
        queries, values = self.collect(
            count, rng, seed=seed, through_protocol=through_protocol
        )
        return self.estimate_from_table(queries, values)

    def estimate_from_table(
        self,
        queries: np.ndarray,
        values: Sequence[Optional[float]],
    ) -> EstimatedModel:
        """Fit the colluders' linear system on a possibly sparse table.

        Mirrors :meth:`DistanceRetrievalAttack.estimate_from_table`:
        ``None``/NaN holes (mitigated output) are dropped before the
        fit.  Unlike exact recovery, pooled estimation is deliberately
        allowed to run underdetermined (the paper's Fig. 5 sweep starts
        at 2 pooled samples), so the floor is 2 dense rows, not
        ``n + 1``.
        """
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValidationError("queries must be a 2-D array")
        dense_queries, dense_values = _dense_rows(queries, values)
        if dense_queries.shape[0] < 2:
            raise ValidationError(
                f"only {dense_queries.shape[0]} dense rows survive the "
                "filtered table; pooling fewer than 2 samples is meaningless"
            )
        weights, bias = _solve_linear_system(dense_queries, dense_values)
        return EstimatedModel(
            weights=tuple(float(w) for w in weights),
            bias=bias,
            sample_count=int(dense_queries.shape[0]),
        )

    def sweep(
        self,
        counts: Sequence[int] = (2, 4, 10, 20, 50),
        seed: int = 0,
        through_protocol: bool = False,
    ) -> List[EstimatedModel]:
        """The paper's Fig. 5 sweep over pooled-sample counts."""
        return [
            self.estimate(count, seed=seed + index, through_protocol=through_protocol)
            for index, count in enumerate(counts)
        ]
