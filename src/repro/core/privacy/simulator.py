"""Simulation-based privacy argument for the OMPE sender's view.

The standard way to argue a party "learns nothing" is to exhibit a
*simulator*: an algorithm that, given only that party's legitimate
inputs and outputs, produces a view computationally indistinguishable
from the real protocol view.  For the OMPE sender (the trainer), the
view consists of the points message ``{(v_i, z_i)}`` plus OT group
elements; crucially it does *not* depend on the receiver's secret
input, because:

* the nodes ``v_i`` are drawn independently of the input;
* cover vectors are evaluations of random degree-q polynomials at
  nonzero nodes, whose distribution is input-independent (the secret
  only fixes the *constant term*, which is never evaluated);
* disguise vectors are, by construction in this implementation,
  identically distributed with covers;
* the OT choice messages are uniform group elements.

:func:`simulate_sender_view` runs exactly the receiver's randomization
code with a *dummy* input; :func:`sender_view_indistinguishable`
compares a real view to a simulated one with two-sample K-S tests over
the scalar marginals.  This turns the paper's Level-1 prose into an
executable statistical check.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.core.ompe.config import OMPEConfig
from repro.exceptions import ValidationError
from repro.math.polynomials import Number, Polynomial
from repro.math.statistics import KSResult, ks_2samp
from repro.utils.rng import ReproRandom

PointsMessage = Tuple[Tuple[Number, Tuple[Number, ...]], ...]


def simulate_sender_view(
    config: OMPEConfig,
    arity: int,
    function_degree: int,
    rng: Optional[ReproRandom] = None,
) -> PointsMessage:
    """Produce a points message distributed like a real one.

    Uses a dummy all-zero input; if the real distribution depended on
    the input, the statistical test below would expose it.
    """
    if arity < 1:
        raise ValidationError(f"arity must be at least 1, got {arity}")
    rng = rng or ReproRandom()
    dummy_input = tuple(Fraction(0) for _ in range(arity))
    pair_count = config.pair_count(function_degree)
    cover_count = config.cover_count(function_degree)
    draw = rng.fork("hide")
    hiders = [
        Polynomial.random(
            config.security_degree,
            draw.fork("covers").fork("g", index),
            constant_term=constant,
            coefficient_bound=config.coefficient_bound,
            exact=config.exact,
        )
        for index, constant in enumerate(dummy_input)
    ]
    nodes = draw.fork("nodes").distinct_fractions(
        pair_count, -config.node_bound, config.node_bound
    )
    positions = set(draw.fork("positions").sample_indices(pair_count, cover_count))
    disguise_draw = draw.fork("disguises")
    pairs = []
    for index, node in enumerate(nodes):
        if index in positions:
            vector = tuple(g(node) for g in hiders)
        else:
            constants = [disguise_draw.fraction(-1, 1) for _ in range(arity)]
            fakes = [
                Polynomial.random(
                    config.security_degree,
                    disguise_draw.fork("poly", index),
                    constant_term=constant,
                    coefficient_bound=config.coefficient_bound,
                    exact=config.exact,
                )
                for constant in constants
            ]
            vector = tuple(g(node) for g in fakes)
        pairs.append((node, vector))
    return tuple(pairs)


def _scalar_pool(messages: Sequence[PointsMessage]) -> Tuple[List[float], List[float]]:
    """Split point messages into node and coordinate scalar pools."""
    nodes: List[float] = []
    coordinates: List[float] = []
    for message in messages:
        for node, vector in message:
            nodes.append(float(node))
            coordinates.extend(float(v) for v in vector)
    return nodes, coordinates


def sender_view_indistinguishable(
    real_messages: Sequence[PointsMessage],
    simulated_messages: Sequence[PointsMessage],
    significance: float = 0.01,
) -> Tuple[bool, KSResult, KSResult]:
    """K-S test real vs simulated sender views.

    Returns ``(indistinguishable, node_test, coordinate_test)``; the
    views pass when *neither* marginal rejects at ``significance``.
    """
    if not real_messages or not simulated_messages:
        raise ValidationError("need at least one message on each side")
    if not 0.0 < significance < 1.0:
        raise ValidationError(f"significance must be in (0, 1), got {significance}")
    real_nodes, real_coordinates = _scalar_pool(real_messages)
    simulated_nodes, simulated_coordinates = _scalar_pool(simulated_messages)
    node_test = ks_2samp(real_nodes, simulated_nodes)
    coordinate_test = ks_2samp(real_coordinates, simulated_coordinates)
    passed = node_test.pvalue > significance and coordinate_test.pvalue > significance
    return passed, node_test, coordinate_test
