"""Quantitative security estimates for OMPE configurations.

The paper's Level-1 argument for the client is combinatorial: the
trainer sees ``M`` point/vector pairs and would need to identify the
``m`` true covers to reconstruct the hiding polynomials; oblivious
transfer hides the positions, leaving ``C(M, m)`` equally likely
possibilities (and even a correct guess still leaves the degree-``q``
polynomials underdetermined from single evaluations).  This module
turns those counting arguments into numbers an operator can budget
against, plus the OT group's generic discrete-log margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.ompe.config import OMPEConfig
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class SecurityEstimate:
    """Security figures for one OMPE configuration + function degree.

    Attributes
    ----------
    cover_count / pair_count:
        The protocol's ``m`` and ``M``.
    cover_entropy_bits:
        ``log2 C(M, m)`` — work factor to locate the covers by search.
    single_guess_probability:
        ``1 / C(M, m)`` — probability one guess of the cover set is right.
    masking_degrees_of_freedom:
        Free coefficients of the sender's mask ``h(u)`` (degree ``pq``
        with fixed zero constant) — the dimensions hiding the decision
        values from the client after interpolation.
    hiding_degrees_of_freedom:
        Per-coordinate free coefficients of the client's ``g_i``.
    ot_group_bits:
        Size of the OT group modulus; generic discrete-log attacks cost
        about ``2^(bits/2)`` group operations (``dlog_security_bits``).
    """

    cover_count: int
    pair_count: int
    cover_entropy_bits: float
    single_guess_probability: float
    masking_degrees_of_freedom: int
    hiding_degrees_of_freedom: int
    ot_group_bits: int

    @property
    def dlog_security_bits(self) -> float:
        """Generic-attack cost exponent for the OT group (rho method)."""
        return self.ot_group_bits / 2.0


def estimate_security(
    config: OMPEConfig, function_degree: int
) -> SecurityEstimate:
    """Compute the security figures for a configuration."""
    if function_degree < 1:
        raise ValidationError(
            f"function_degree must be at least 1, got {function_degree}"
        )
    cover_count = config.cover_count(function_degree)
    pair_count = config.pair_count(function_degree)
    combinations = math.comb(pair_count, cover_count)
    return SecurityEstimate(
        cover_count=cover_count,
        pair_count=pair_count,
        cover_entropy_bits=math.log2(combinations),
        single_guess_probability=1.0 / combinations,
        masking_degrees_of_freedom=function_degree * config.security_degree,
        hiding_degrees_of_freedom=config.security_degree,
        ot_group_bits=config.resolved_group().p.bit_length(),
    )


def minimum_security_degree(
    config: OMPEConfig,
    function_degree: int,
    target_entropy_bits: float,
    cap: int = 64,
) -> int:
    """Smallest ``q`` whose cover entropy reaches the target.

    Raises when no ``q <= cap`` reaches the target (raise the cover
    expansion instead).
    """
    if target_entropy_bits <= 0:
        raise ValidationError("target_entropy_bits must be positive")
    for security_degree in range(1, cap + 1):
        candidate = OMPEConfig(
            security_degree=security_degree,
            cover_expansion=config.cover_expansion,
            exact=config.exact,
            coefficient_bound=config.coefficient_bound,
            node_bound=config.node_bound,
            group=config.group,
        )
        estimate = estimate_security(candidate, function_degree)
        if estimate.cover_entropy_bits >= target_entropy_bits:
            return security_degree
    raise ValidationError(
        f"no security_degree <= {cap} reaches {target_entropy_bits} bits with "
        f"cover_expansion={config.cover_expansion}; increase the expansion"
    )
