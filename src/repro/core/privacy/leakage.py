"""Similarity-table fingerprinting attack and auditable leakage scoring.

The anonlink security documentation (SNIPPETS.md §2) describes the
Culnane et al. attack on released similarity-score tables: an adversary
holding an *approximate* reference table — built from public or partial
auxiliary data about the pseudonymous population — matches each
released score vector against its reference rows and re-identifies
records.  The attack needs only the output of the protocol, so it
applies equally to local runs, :class:`~repro.engine.ProtocolEngine`
batches, and TCP similarity sessions: anything that yields an ordered
T² score table.

This module turns that attack into a measurement instrument:

* :class:`ScoreTable` / builders — assemble score tables from any
  evaluation path (plain metric, private protocol, engine, TCP client)
  through one ``evaluate(row_model, column_model)`` callable;
* :func:`release_table` — apply an
  :class:`~repro.core.similarity.policy.OutputPolicy` to each row, the
  same enforcement the service applies per run;
* :class:`SimilarityFingerprintAttack` — re-identify released rows
  against a noisy reference table, reporting precision/recall against
  ground truth.  The attack-as-test suite pins a success floor on
  ``raw`` and degradation ceilings on every mitigated mode;
* :func:`leakage_score` — an LPS-style decomposable leakage score
  (SNIPPETS.md §1): a weighted sum of normalized sub-scores, each
  auditable on its own, exported per policy through the metrics
  registry as ``repro_privacy_leakage_score``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.similarity.metric import MetricParams, evaluate_similarity_plain
from repro.core.similarity.policy import (
    RAW,
    THRESHOLD,
    TOP_K,
    OutputPolicy,
    apply_output_policy,
)
from repro.exceptions import ValidationError
from repro.obs import get_metrics
from repro.utils.rng import ReproRandom, derive_seed

#: Resolution sub-score for a comparison bit: one bit out of the 53
#: mantissa bits a raw double-precision score carries.
_BIT_RESOLUTION = 1.0 / 53.0

#: LPS-style weights over the four leakage dimensions.  Magnitude
#: dominates (raw values enable every downstream inference), then order
#: (ranking alone fingerprints), linkage (which pair a value belongs
#: to), and resolution (bits per revealed value).
LEAKAGE_WEIGHTS: Dict[str, float] = {
    "magnitude": 0.40,
    "order": 0.25,
    "linkage": 0.20,
    "resolution": 0.15,
}


# ---------------------------------------------------------------------------
# Score tables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScoreTable:
    """A dense T² (or T) score table: ``scores[i][j]`` compares
    ``row_ids[i]`` against ``column_ids[j]``."""

    row_ids: Tuple[str, ...]
    column_ids: Tuple[str, ...]
    scores: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if not self.row_ids or not self.column_ids:
            raise ValidationError("score table needs rows and columns")
        if len(set(self.row_ids)) != len(self.row_ids):
            raise ValidationError("row ids must be distinct")
        if len(set(self.column_ids)) != len(self.column_ids):
            raise ValidationError("column ids must be distinct")
        if len(self.scores) != len(self.row_ids):
            raise ValidationError(
                f"{len(self.row_ids)} rows but {len(self.scores)} score rows"
            )
        for row in self.scores:
            if len(row) != len(self.column_ids):
                raise ValidationError("ragged score table")
            for value in row:
                if not math.isfinite(value):
                    raise ValidationError(
                        f"scores must be finite, got {value!r}"
                    )

    def row(self, row_id: str) -> Tuple[float, ...]:
        return self.scores[self.row_ids.index(row_id)]


def collect_score_table(
    row_ids: Sequence[str],
    column_ids: Sequence[str],
    evaluate: Callable[[str, str], float],
) -> ScoreTable:
    """Build a table by calling ``evaluate(row_id, column_id)`` per cell.

    The callable abstracts the evaluation path: a plain metric, the
    private protocol, an engine ``submit_similarity`` round-trip, or a
    :class:`~repro.net.service.TrainerClient` session all fit — the
    attack downstream is oblivious to how the scores were produced.
    """
    return ScoreTable(
        row_ids=tuple(row_ids),
        column_ids=tuple(column_ids),
        scores=tuple(
            tuple(float(evaluate(row_id, column_id)) for column_id in column_ids)
            for row_id in row_ids
        ),
    )


def score_table_from_models(
    subjects: Dict[str, object],
    probes: Dict[str, object],
    params: Optional[MetricParams] = None,
) -> ScoreTable:
    """Table of plain T values: each subject row against each probe."""
    metric_params = params or MetricParams()
    return collect_score_table(
        tuple(subjects),
        tuple(probes),
        lambda row_id, column_id: evaluate_similarity_plain(
            subjects[row_id], probes[column_id], metric_params
        ).t,
    )


def perturb_table(table: ScoreTable, sigma: float, seed: int) -> ScoreTable:
    """The attacker's noisy reference: auxiliary knowledge is only
    approximate, so each cell gets independent Gaussian noise (clamped
    to stay non-negative — T is a distance)."""
    if sigma < 0:
        raise ValidationError(f"sigma must be non-negative, got {sigma!r}")
    rows = []
    for row_id, row in zip(table.row_ids, table.scores):
        rng = ReproRandom(derive_seed(seed, "perturb", row_id))
        rows.append(
            tuple(max(0.0, value + rng.gauss(0.0, sigma)) for value in row)
        )
    return ScoreTable(
        row_ids=table.row_ids,
        column_ids=table.column_ids,
        scores=tuple(rows),
    )


def synthetic_population(
    count: int, dimension: int, seed: int
) -> Dict[str, object]:
    """``count`` random linear models, keyed ``record-0`` ... — the
    pseudonymous population used by tests and the security bench."""
    from repro.ml.svm.model import make_linear_model

    if count < 1 or dimension < 1:
        raise ValidationError("population needs count >= 1 and dimension >= 1")
    population = {}
    for index in range(count):
        rng = ReproRandom(derive_seed(seed, "record", index))
        weights = [rng.uniform(-1.0, 1.0) for _ in range(dimension)]
        if all(abs(w) < 1e-6 for w in weights):
            weights[0] = 0.5
        population[f"record-{index}"] = make_linear_model(
            weights, rng.uniform(-0.5, 0.5)
        )
    return population


# ---------------------------------------------------------------------------
# Policy-released tables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReleasedTable:
    """A score table after per-row output-policy enforcement.

    ``rows[i]`` is the :class:`MitigatedScores` released for
    ``row_ids[i]`` — exactly what a consumer of the similarity service
    would hold after a batch of runs under ``policy``.
    """

    policy: OutputPolicy
    row_ids: Tuple[str, ...]
    column_ids: Tuple[str, ...]
    rows: Tuple


def release_table(
    table: ScoreTable,
    policy: OutputPolicy,
    seed: Optional[int] = None,
) -> ReleasedTable:
    """Apply ``policy`` to every row of ``table``.

    Row seeds fork from ``seed`` by row id, mirroring how independent
    protocol runs derive independent mitigation seeds.
    """
    rows = tuple(
        apply_output_policy(
            row,
            policy,
            seed=None if seed is None else derive_seed(seed, "row", row_id),
            ids=table.column_ids,
        )
        for row_id, row in zip(table.row_ids, table.scores)
    )
    return ReleasedTable(
        policy=policy,
        row_ids=table.row_ids,
        column_ids=table.column_ids,
        rows=rows,
    )


# ---------------------------------------------------------------------------
# The fingerprinting attack
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FingerprintResult:
    """One attack run's outcome against ground truth.

    ``assignments`` maps released row id → claimed reference row id
    (rows the attacker abstained on are absent).  Precision is
    correct/claimed; recall is correct/total.  ``claimed == 0`` scores
    precision 0.0 — an attacker with nothing to say has not succeeded.
    """

    assignments: Dict[str, str]
    precision: float
    recall: float
    claimed: int
    correct: int


class SimilarityFingerprintAttack:
    """Culnane-style re-identification from released similarity tables.

    ``reference`` is the attacker's (noisy) score table over the same
    probe columns, with *known* row identities.  ``run`` matches each
    released row against the reference rows using whatever view the
    output policy left behind:

    * ``raw`` — nearest reference row by L2 over the full score vector;
    * ``top-k`` — L2 restricted to the revealed (probe, score) pairs;
    * ``threshold`` — Hamming distance between bit vectors, the
      attacker thresholding its own reference at the public threshold;
    * ``permuted`` — best effort: compare sorted released magnitudes
      against sorted reference scores.  Masking destroys magnitudes and
      linkage, so this lands at chance level — which is the point.

    Exact distance ties make the attacker abstain on that row.
    """

    def __init__(self, reference: ScoreTable) -> None:
        self.reference = reference

    # -- per-mode row distances --------------------------------------------

    def _raw_distance(
        self, released: Tuple[float, ...], candidate: Tuple[float, ...]
    ) -> float:
        return math.sqrt(
            sum((a - b) ** 2 for a, b in zip(released, candidate))
        )

    def _top_k_distance(
        self,
        entries: Tuple[Tuple[str, float], ...],
        candidate_by_probe: Dict[str, float],
    ) -> float:
        return math.sqrt(
            sum(
                (score - candidate_by_probe[probe]) ** 2
                for probe, score in entries
            )
        )

    def _threshold_distance(
        self,
        bits: Dict[str, bool],
        candidate_by_probe: Dict[str, float],
        threshold: float,
    ) -> float:
        return float(
            sum(
                bits[probe] != (candidate_by_probe[probe] <= threshold)
                for probe in bits
            )
        )

    def _permuted_distance(
        self, masked: Tuple[float, ...], candidate: Tuple[float, ...]
    ) -> float:
        reference = sorted(candidate)
        return math.sqrt(
            sum((a - b) ** 2 for a, b in zip(sorted(masked), reference))
        )

    def _match_row(self, released_row) -> Optional[str]:
        """The attacker's claim for one released row (None = abstain)."""
        policy = released_row.policy
        best_id: Optional[str] = None
        best_distance = math.inf
        tied = False
        for candidate_id, candidate in zip(
            self.reference.row_ids, self.reference.scores
        ):
            by_probe = dict(zip(self.reference.column_ids, candidate))
            if policy.mode == RAW:
                distance = self._raw_distance(
                    tuple(score for _, score in released_row.entries), candidate
                )
            elif policy.mode == TOP_K:
                distance = self._top_k_distance(released_row.entries, by_probe)
            elif policy.mode == THRESHOLD:
                distance = self._threshold_distance(
                    released_row.match_bits, by_probe, policy.threshold
                )
            else:  # PERMUTED
                distance = self._permuted_distance(
                    released_row.entries, candidate
                )
            if distance < best_distance:
                best_distance = distance
                best_id = candidate_id
                tied = False
            elif distance == best_distance:
                tied = True
        return None if tied else best_id

    def run(
        self, released: ReleasedTable, truth: Dict[str, str]
    ) -> FingerprintResult:
        """Re-identify every released row; score against ``truth``
        (released row id → true reference row id)."""
        if set(released.column_ids) != set(self.reference.column_ids):
            raise ValidationError(
                "released and reference tables must share probe columns"
            )
        missing = [row_id for row_id in released.row_ids if row_id not in truth]
        if missing:
            raise ValidationError(
                f"ground truth missing released rows: {missing!r}"
            )
        assignments: Dict[str, str] = {}
        for row_id, released_row in zip(released.row_ids, released.rows):
            claim = self._match_row(released_row)
            if claim is not None:
                assignments[row_id] = claim
        correct = sum(
            1 for row_id, claim in assignments.items() if truth[row_id] == claim
        )
        claimed = len(assignments)
        total = len(released.row_ids)
        return FingerprintResult(
            assignments=assignments,
            precision=correct / claimed if claimed else 0.0,
            recall=correct / total if total else 0.0,
            claimed=claimed,
            correct=correct,
        )


# ---------------------------------------------------------------------------
# LPS-style decomposable leakage score
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LeakageScore:
    """Decomposable leakage score of one released similarity run.

    Four sub-scores in [0, 1], each auditable on its own:

    * ``magnitude`` — fraction of pairs whose raw score value leaves
      the run;
    * ``order`` — fraction of the pairwise ranking relation revealed;
    * ``linkage`` — can a revealed value be tied back to its pair?
    * ``resolution`` — bits revealed per disclosed value, relative to a
      full double.

    ``total`` is the weighted sum under :data:`LEAKAGE_WEIGHTS` — the
    LPS composition rule (SNIPPETS.md §1): normalized components, fixed
    public weights, so two policies' scores are comparable and each
    component can be challenged independently.
    """

    magnitude: float
    order: float
    linkage: float
    resolution: float

    def __post_init__(self) -> None:
        for name, value in self.subscores().items():
            if not 0.0 <= value <= 1.0:
                raise ValidationError(
                    f"leakage sub-score {name} must be in [0, 1], got {value!r}"
                )

    def subscores(self) -> Dict[str, float]:
        return {
            "magnitude": self.magnitude,
            "order": self.order,
            "linkage": self.linkage,
            "resolution": self.resolution,
        }

    @property
    def total(self) -> float:
        return sum(
            LEAKAGE_WEIGHTS[name] * value
            for name, value in self.subscores().items()
        )


def leakage_score(policy: OutputPolicy, count: int) -> LeakageScore:
    """Score what ``policy`` discloses about ``count`` compared pairs.

    A pure function of (policy, count) — deliberately: both endpoints
    of a wire session and both transports compute the identical score,
    so the exported gauge is itself conformance-testable.
    """
    if count < 1:
        raise ValidationError(f"count must be positive, got {count!r}")
    if policy.mode == RAW:
        return LeakageScore(
            magnitude=1.0, order=1.0, linkage=1.0, resolution=1.0
        )
    if policy.mode == TOP_K:
        revealed = min(policy.k, count)
        # Revealed pairs are fully ordered among themselves and known
        # to rank above every withheld pair: of the count-1 ranking
        # relations a row's full order contains, the released view
        # decides those involving at least one revealed pair.
        order = 1.0 if count == 1 else min(1.0, revealed / (count - 1))
        return LeakageScore(
            magnitude=revealed / count,
            order=order,
            linkage=1.0,
            resolution=1.0,
        )
    if policy.mode == THRESHOLD:
        # One comparison bit per pair: no magnitudes, no ordering among
        # pairs on the same side of the threshold, full linkage (the
        # bit is attributed to its pair), 1-of-53 bits of resolution.
        return LeakageScore(
            magnitude=0.0,
            order=0.0 if count == 1 else 1.0 / (count - 1),
            linkage=1.0,
            resolution=_BIT_RESOLUTION,
        )
    # PERMUTED: masked magnitudes, canonical order, no linkage — only
    # the cardinality (carried by `count`, outside the score) leaks.
    return LeakageScore(magnitude=0.0, order=0.0, linkage=0.0, resolution=0.0)


def record_leakage(policy: OutputPolicy, count: int) -> LeakageScore:
    """Compute and export the leakage score for one released run.

    Writes ``repro_privacy_leakage_score{policy=..., component=...}``
    (total plus each sub-score) so `repro observe`/`repro top` surface
    the leakage budget next to the traffic it describes.
    """
    score = leakage_score(policy, count)
    gauge = get_metrics().gauge(
        "repro_privacy_leakage_score",
        "Decomposable output-leakage score of released similarity runs",
    )
    gauge.set(score.total, policy=policy.label, component="total")
    for component, value in score.subscores().items():
        gauge.set(value, policy=policy.label, component=component)
    return score
