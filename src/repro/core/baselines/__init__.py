"""Baseline comparators: plaintext schemes and Paillier classification."""

from repro.core.baselines.paillier_classifier import (
    PaillierClassificationOutcome,
    classify_paillier,
)
from repro.core.baselines.plain import (
    PlainClassificationOutcome,
    PlainSimilarityOutcome,
    classify_plain,
    similarity_plain,
)

__all__ = [
    "PaillierClassificationOutcome",
    "classify_paillier",
    "PlainClassificationOutcome",
    "PlainSimilarityOutcome",
    "classify_plain",
    "similarity_plain",
]
