"""Paillier encrypted-domain classification baseline (related work [15]).

Rahulamathavan et al. evaluate SVM decision functions homomorphically:
the client encrypts each coordinate of its sample under its own
Paillier key; the trainer computes

    Enc(d(t)) = Π_i Enc(t_i)^{w_i} · Enc(b)

using only public-key operations (the trainer never decrypts); the
client decrypts and takes the sign.  The paper argues this approach
"introduces too much complexity for the computations" — this baseline
exists so ``benchmarks/bench_baseline_paillier.py`` can measure that
claim against the OMPE protocol.

Privacy profile differs from OMPE: the client learns the *exact*
decision value ``d(t)`` (enabling the Fig. 6 reconstruction after
``n + 1`` queries), whereas the OMPE protocol releases only an
amplified value.  The trainer learns nothing either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from repro.crypto.paillier import (
    PaillierCipher,
    generate_keypair,
)
from repro.exceptions import ValidationError
from repro.ml.svm.model import SVMModel
from repro.net.channel import Channel
from repro.net.runner import ProtocolReport
from repro.utils.rng import ReproRandom
from repro.utils.timer import TimingRecorder


@dataclass(frozen=True)
class PaillierClassificationOutcome:
    """Client-side result of one encrypted-domain classification."""

    label: float
    decision_value: Fraction
    report: ProtocolReport


def classify_paillier(
    model: SVMModel,
    sample: Sequence[float],
    key_bits: int = 512,
    seed: Optional[int] = None,
    precision: int = 10**6,
) -> PaillierClassificationOutcome:
    """Run the Paillier baseline protocol for one sample.

    The client (Bob) generates the keypair, encrypts its sample, and
    sends ciphertexts + public key; the trainer (Alice) computes the
    encrypted decision value homomorphically and returns it.
    """
    if not model.is_linear():
        raise ValidationError(
            "the Paillier baseline supports linear models only "
            "(homomorphic multiplication of two ciphertexts is unavailable)"
        )
    sample = tuple(float(v) for v in sample)
    if len(sample) != model.dimension:
        raise ValidationError(
            f"sample has {len(sample)} coordinates, expected {model.dimension}"
        )
    rng = ReproRandom(seed)
    timings = TimingRecorder()
    channel = Channel("bob", "alice")

    # Client: key generation + encryption.
    with timings.measure("client/keygen"):
        public, private = generate_keypair(key_bits, rng.fork("keys"))
        cipher = PaillierCipher(public, private, precision=precision, rng=rng.fork("enc"))
    with timings.measure("client/encrypt"):
        encrypted_sample = tuple(cipher.encrypt(value) for value in sample)
    channel.send("bob", "paillier/query", (public.n, encrypted_sample))

    # Trainer: homomorphic evaluation (public-key side only).
    modulus, ciphertexts = channel.receive("alice", "paillier/query")
    trainer_cipher = PaillierCipher(public, None, precision=precision, rng=rng.fork("alice"))
    weights = model.weight_vector()
    with timings.measure("trainer/evaluate"):
        accumulator = trainer_cipher.encrypt(float(model.bias))
        # Enc(b)·Π Enc(t_i)^{w_i} = Enc(b + Σ w_i t_i); the plain-weight
        # product adds one fixed-point scale factor, so the bias must be
        # pre-scaled to match.
        accumulator = trainer_cipher.multiply_plain(accumulator, 1)
        for weight, ciphertext in zip(weights, ciphertexts):
            term = trainer_cipher.multiply_plain(ciphertext, float(weight))
            accumulator = trainer_cipher.add(accumulator, term)
    channel.send("alice", "paillier/result", accumulator)

    # Client: decrypt and classify.
    encrypted_result = channel.receive("bob", "paillier/result")
    with timings.measure("client/decrypt"):
        decision_value = cipher.decrypt(encrypted_result, scale_power=2)
    channel.assert_drained()
    report = ProtocolReport(
        result=decision_value,
        transcript=channel.transcript,
        timings=timings,
        simulated_network_s=channel.simulated_time,
    )
    return PaillierClassificationOutcome(
        label=1.0 if decision_value >= 0 else -1.0,
        decision_value=decision_value,
        report=report,
    )
