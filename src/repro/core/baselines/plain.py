"""Non-private baselines ("original scheme" / "ordinary evaluation").

The paper's Figs. 7–10 compare the privacy-preserving protocols against
their plaintext counterparts.  These baselines run the *same*
mathematical computation with no masking, no OT, and no interpolation —
the denominators of every overhead ratio in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.similarity.metric import (
    MetricParams,
    SimilarityResult,
    evaluate_similarity_plain,
)
from repro.exceptions import ValidationError
from repro.ml.svm.model import SVMModel
from repro.utils.timer import Stopwatch


@dataclass(frozen=True)
class PlainClassificationOutcome:
    """Baseline classification result with wall-clock cost."""

    labels: np.ndarray
    elapsed_s: float


def classify_plain(model: SVMModel, samples: np.ndarray) -> PlainClassificationOutcome:
    """Classify samples directly with the decision function (no privacy)."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise ValidationError("samples must be a 2-D array")
    with Stopwatch() as watch:
        labels = model.predict(samples)
    return PlainClassificationOutcome(labels=labels, elapsed_s=watch.elapsed)


@dataclass(frozen=True)
class PlainSimilarityOutcome:
    """Baseline similarity result with wall-clock cost."""

    result: SimilarityResult
    elapsed_s: float


def similarity_plain(
    model_a: SVMModel,
    model_b: SVMModel,
    params: Optional[MetricParams] = None,
) -> PlainSimilarityOutcome:
    """Evaluate the triangle metric in the clear, timed."""
    with Stopwatch() as watch:
        result = evaluate_similarity_plain(model_a, model_b, params)
    return PlainSimilarityOutcome(result=result, elapsed_s=watch.elapsed)
