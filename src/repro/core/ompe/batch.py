"""Batched OMPE: many inputs, one protocol conversation.

The one-shot protocol costs 6 communication rounds per query; a client
holding ``k`` samples (the Fig. 9 workload) can evaluate all of them in
a *single* 6-round conversation by concatenating the per-query
messages: one points message carrying ``k`` independent pair lists, one
OT setup/choice/transfer exchange carrying ``k·m`` parallel sessions.
Per-query randomness stays independent (fresh masks, amplifiers, hiding
polynomials per query), so the privacy argument is unchanged — only the
round count is amortized, which matters when the link model has
non-trivial latency (see ``benchmarks/bench_ablation_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.core.ompe.config import OMPEConfig, draw_amplifier
from repro.core.ompe.function import OMPEFunction, as_exact_vector
from repro.crypto.ot.k_of_n import KOfNReceiver, KOfNSender
from repro.exceptions import OMPEError, ProtocolAbort, ValidationError
from repro.math.interpolation import lagrange_at_zero
from repro.math.polynomials import Number, Polynomial
from repro.net.channel import LinkModel
from repro.net.party import Party, connect_parties
from repro.net.runner import ProtocolReport, finish_report
from repro.utils.rng import ReproRandom
from repro.utils.serialization import decode_value, encode_value
from repro.utils.timer import TimingRecorder


@dataclass(frozen=True)
class BatchOutcome:
    """Result of a batched OMPE conversation."""

    values: Tuple[Number, ...]
    amplifiers: Tuple[Number, ...]
    report: ProtocolReport


class _BatchSender(Party):
    def __init__(self, name, function, config, rng, timings):
        super().__init__(name, rng)
        self.function = function
        self.config = config
        self.timings = timings
        self.amplifiers: List[Number] = []
        self._masks: List[Polynomial] = []
        self._ot_sender: Optional[KOfNSender] = None

    def handle_request(self) -> None:
        arity, batch_size = self.receive("ompe-batch/request")
        if arity != self.function.arity:
            raise ProtocolAbort(
                f"receiver announced arity {arity}, function has "
                f"{self.function.arity}"
            )
        if batch_size < 1:
            raise ProtocolAbort(f"empty batch ({batch_size})")
        self._batch_size = batch_size
        with obs.get_tracer().span(
            "ompe.params", party=self.name, phase="params", batch=batch_size
        ), self.timings.measure("sender/randomize"):
            mask_degree = self.function.total_degree * self.config.security_degree
            for index in range(batch_size):
                draw = self.rng.fork("query", index)
                self._masks.append(
                    Polynomial.random(
                        mask_degree,
                        draw.fork("mask"),
                        constant_term=0,
                        coefficient_bound=self.config.coefficient_bound,
                        exact=self.config.exact,
                    )
                )
                self.amplifiers.append(
                    draw_amplifier(draw.fork("amplifier"), exact=self.config.exact)
                )
        cover_count = self.config.cover_count(self.function.total_degree)
        pair_count = self.config.pair_count(self.function.total_degree)
        self.send(
            "ompe-batch/params",
            (self.function.total_degree, cover_count, pair_count),
        )

    def handle_points(self) -> None:
        batches = self.receive("ompe-batch/points")
        if len(batches) != self._batch_size:
            raise ProtocolAbort(
                f"expected {self._batch_size} pair lists, got {len(batches)}"
            )
        expected_pairs = self.config.pair_count(self.function.total_degree)
        with obs.get_tracer().span(
            "ompe.evaluate",
            party=self.name,
            phase="evaluate",
            batch=self._batch_size,
        ), self.timings.measure("sender/evaluate"):
            evaluations: List[bytes] = []
            for query_index, pairs in enumerate(batches):
                if len(pairs) != expected_pairs:
                    raise ProtocolAbort(
                        f"query {query_index}: expected {expected_pairs} pairs, "
                        f"got {len(pairs)}"
                    )
                mask = self._masks[query_index]
                amplifier = self.amplifiers[query_index]
                for node, vector in pairs:
                    if len(vector) != self.function.arity:
                        raise ProtocolAbort(
                            f"query {query_index}: vector arity {len(vector)}"
                        )
                    value = mask(node) + amplifier * self.function(vector)
                    evaluations.append(encode_value(value))
        with obs.get_tracer().span(
            "ompe.ot_setup", party=self.name, phase="ot-setups"
        ):
            with self.timings.measure("sender/ot"):
                cover_count = self.config.cover_count(self.function.total_degree)
                self._ot_sender = KOfNSender(
                    self.config.resolved_group(), self.rng.fork("ot")
                )
                setups = self._ot_sender.setup(cover_count * self._batch_size)
                self._evaluations = evaluations
            self.send("ompe-batch/ot-setups", setups)

    def handle_choices(self) -> None:
        with obs.get_tracer().span(
            "ompe.ot_transfer", party=self.name, phase="ot-transfers"
        ):
            choices = self.receive("ompe-batch/ot-choices")
            if self._ot_sender is None:
                raise OMPEError("handle_choices before handle_points")
            with self.timings.measure("sender/ot"):
                transfers = self._ot_sender.transfer(self._evaluations, choices)
            self.send("ompe-batch/ot-transfers", transfers)


class _BatchReceiver(Party):
    def __init__(self, name, inputs, config, rng, timings):
        super().__init__(name, rng)
        self.inputs = inputs
        self.config = config
        self.timings = timings
        self._ot_receiver: Optional[KOfNReceiver] = None

    def send_request(self) -> None:
        self.send(
            "ompe-batch/request", (len(self.inputs[0]), len(self.inputs))
        )

    def handle_params(self) -> None:
        degree, cover_count, pair_count = self.receive("ompe-batch/params")
        if cover_count != self.config.cover_count(degree):
            raise ProtocolAbort("cover count disagrees with config")
        if pair_count != self.config.pair_count(degree):
            raise ProtocolAbort("pair count disagrees with config")
        self._cover_count = cover_count
        self._pair_count = pair_count
        with obs.get_tracer().span(
            "ompe.points",
            party=self.name,
            phase="points",
            m=cover_count,
            M=pair_count,
            batch=len(self.inputs),
        ), self.timings.measure("receiver/randomize"):
            batches = []
            self._nodes: List[List[Number]] = []
            self._positions: List[List[int]] = []
            for query_index, input_vector in enumerate(self.inputs):
                draw = self.rng.fork("query", query_index)
                hiders = [
                    Polynomial.random(
                        self.config.security_degree,
                        draw.fork("g", position),
                        constant_term=coordinate,
                        coefficient_bound=self.config.coefficient_bound,
                        exact=self.config.exact,
                    )
                    for position, coordinate in enumerate(input_vector)
                ]
                nodes = draw.fork("nodes").distinct_fractions(
                    pair_count, -self.config.node_bound, self.config.node_bound
                )
                positions = draw.fork("positions").sample_indices(
                    pair_count, cover_count
                )
                position_set = set(positions)
                disguise_draw = draw.fork("disguises")
                pairs = []
                for index, node in enumerate(nodes):
                    if index in position_set:
                        vector = tuple(g(node) for g in hiders)
                    else:
                        fakes = [
                            Polynomial.random(
                                self.config.security_degree,
                                disguise_draw.fork("poly", index, position),
                                constant_term=disguise_draw.fraction(-1, 1),
                                coefficient_bound=self.config.coefficient_bound,
                                exact=self.config.exact,
                            )
                            for position in range(len(input_vector))
                        ]
                        vector = tuple(g(node) for g in fakes)
                    pairs.append((node, vector))
                batches.append(tuple(pairs))
                self._nodes.append(nodes)
                self._positions.append(positions)
        self.send("ompe-batch/points", tuple(batches))

    def handle_ot_setups(self) -> None:
        setups = self.receive("ompe-batch/ot-setups")
        with obs.get_tracer().span(
            "ompe.ot_choice", party=self.name, phase="ot-choices"
        ), self.timings.measure("receiver/ot"):
            # Global indices: query q's cover j sits at q*pair_count + pos.
            global_indices = [
                query_index * self._pair_count + position
                for query_index, positions in enumerate(self._positions)
                for position in positions
            ]
            self._ot_receiver = KOfNReceiver(
                self.config.resolved_group(), self.rng.fork("ot")
            )
            choices = self._ot_receiver.choose(
                setups, global_indices, self._pair_count * len(self.inputs)
            )
        self.send("ompe-batch/ot-choices", choices)

    def finish(self) -> List[Number]:
        if self._ot_receiver is None:
            raise OMPEError("finish before handle_ot_setups")
        transfers = self.receive("ompe-batch/ot-transfers")
        with self.timings.measure("receiver/ot"):
            payloads = self._ot_receiver.retrieve(transfers)
        with obs.get_tracer().span(
            "ompe.interpolate",
            party=self.name,
            phase="interpolate",
            batch=len(self.inputs),
        ), self.timings.measure("receiver/interpolate"):
            values: List[Number] = []
            cursor = 0
            for query_index, positions in enumerate(self._positions):
                blobs = payloads[cursor : cursor + len(positions)]
                cursor += len(positions)
                nodes = [self._nodes[query_index][p] for p in positions]
                decoded = [decode_value(blob) for blob in blobs]
                values.append(lagrange_at_zero(nodes, decoded))
        return values


def execute_ompe_batch(
    function: OMPEFunction,
    inputs: Sequence[Sequence[Number]],
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
    link: Optional[LinkModel] = None,
    sender_name: str = "alice",
    receiver_name: str = "bob",
) -> BatchOutcome:
    """Evaluate the sender function on every input in one conversation.

    Only exact mode is supported (the batch layer exists for the
    protocol benchmarks, which run exact).
    """
    config = config or OMPEConfig()
    if not config.exact:
        raise ValidationError("execute_ompe_batch supports exact mode only")
    input_list = [as_exact_vector(vector) for vector in inputs]
    if not input_list:
        raise ValidationError("batch must contain at least one input")
    arity = len(input_list[0])
    if any(len(vector) != arity for vector in input_list):
        raise ValidationError("all batch inputs must share one arity")
    if arity != function.arity:
        raise ValidationError(
            f"inputs have arity {arity}, function expects {function.arity}"
        )

    root = ReproRandom(seed)
    timings = TimingRecorder()
    sender = _BatchSender(
        sender_name, function, config, root.fork("sender"), timings
    )
    receiver = _BatchReceiver(
        receiver_name, input_list, config, root.fork("receiver"), timings
    )
    channel = (
        connect_parties(sender, receiver, link=link)
        if link
        else connect_parties(sender, receiver)
    )
    with obs.get_tracer().span(
        "ompe.batch",
        phase="protocol",
        batch=len(input_list),
        arity=arity,
        degree=function.total_degree,
    ) as root_span:
        receiver.send_request()
        sender.handle_request()
        receiver.handle_params()
        sender.handle_points()
        receiver.handle_ot_setups()
        sender.handle_choices()
        values = receiver.finish()
        root_span.set(total_bytes=channel.transcript.total_bytes())
    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_ompe_batch_runs_total",
            "Completed batched OMPE conversations",
        ).inc()
        metrics.counter(
            "repro_ompe_batch_queries_total",
            "Queries evaluated through batched OMPE",
        ).inc(len(input_list))
    report = finish_report(tuple(values), channel, timings)
    return BatchOutcome(
        values=tuple(values),
        amplifiers=tuple(sender.amplifiers),
        report=report,
    )
