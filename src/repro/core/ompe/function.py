"""The sender-side function abstraction for OMPE.

The OMPE sender needs only two things about its secret function ``P``:
the total degree (to size the masking polynomial) and point evaluation.
:class:`OMPEFunction` wraps either an explicit
:class:`~repro.math.multivariate.MultivariatePolynomial` (the
paper-faithful representation, including the Section IV-B monomial
expansion) or a black-box evaluator (the direct kernel-evaluation
variant that avoids the exponential expansion — see DESIGN.md §5).
Both yield identical transcripts and results; the ablation bench
measures the cost gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from repro.exceptions import ValidationError
from repro.math.multivariate import MultivariatePolynomial
from repro.math.polynomials import Number

Evaluator = Callable[[Sequence[Number]], Number]


@dataclass(frozen=True)
class OMPEFunction:
    """A secret multivariate function the sender evaluates obliviously.

    Attributes
    ----------
    arity:
        Number of input variables ``n``.
    total_degree:
        Total degree of ``P`` (drives masking degree and cover count).
    evaluate:
        Point evaluator.
    """

    arity: int
    total_degree: int
    evaluate: Evaluator

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ValidationError(f"arity must be at least 1, got {self.arity}")
        if self.total_degree < 1:
            raise ValidationError(
                f"total_degree must be at least 1, got {self.total_degree}"
            )

    @classmethod
    def from_polynomial(cls, polynomial: MultivariatePolynomial) -> "OMPEFunction":
        """Wrap an explicit multivariate polynomial.

        Wrappers are memoized per polynomial (see
        :mod:`repro.core.ompe.compose`): repeated runs over the same
        polynomial — the three chained OMPE runs of the similarity
        protocol, or a matching sweep reusing one reference model —
        share a single function object and therefore its compiled
        scaled-integer evaluation form.
        """
        from repro.core.ompe.compose import cached_composition

        def build() -> "OMPEFunction":
            degree = max(1, polynomial.total_degree)
            return cls(
                arity=polynomial.arity,
                total_degree=degree,
                evaluate=polynomial,
            )

        return cached_composition(polynomial, build)

    @classmethod
    def from_callable(
        cls, arity: int, total_degree: int, evaluate: Evaluator
    ) -> "OMPEFunction":
        """Wrap a black-box evaluator with a declared degree.

        The declared degree is a *correctness* contract: if the true
        function has higher degree in any input, interpolation silently
        returns garbage.  Tests cover this failure mode.
        """
        return cls(arity=arity, total_degree=total_degree, evaluate=evaluate)

    def __call__(self, point: Sequence[Number]) -> Number:
        value = self.evaluate(point)
        return value


def as_exact_vector(values: Sequence) -> tuple:
    """Convert an input vector to exact Fractions (protocol default)."""
    return tuple(
        value if isinstance(value, Fraction) else Fraction(value) for value in values
    )


def audit_degree(function: OMPEFunction, rng, trials: int = 3) -> bool:
    """Probabilistically verify the declared ``total_degree``.

    An understated degree silently corrupts the OMPE interpolation (the
    receiver reconstructs the wrong polynomial); this audit catches it
    before any protocol bytes flow.  Method: restrict the function to a
    random line ``t(s) = a + s·b``; the restriction is a univariate
    polynomial of degree ≤ ``total_degree``, so it must be *determined*
    by ``total_degree + 1`` samples — evaluate at one extra point and
    check it lies on the interpolant.  Exact arithmetic, so a mismatch
    is conclusive; agreement over ``trials`` random lines is
    overwhelming evidence (a higher-degree function would need to agree
    on every test point by coincidence).

    Returns ``True`` when the declaration is consistent.  Only
    meaningful for exact (Fraction) evaluators.
    """
    from repro.exceptions import ValidationError
    from repro.math.interpolation import lagrange_interpolate

    if trials < 1:
        raise ValidationError(f"trials must be at least 1, got {trials}")
    degree = function.total_degree
    for trial in range(trials):
        draw = rng.fork("audit", trial)
        anchor = [draw.fraction(-1, 1) for _ in range(function.arity)]
        direction = [draw.nonzero_fraction(-1, 1) for _ in range(function.arity)]

        def along_line(s: Fraction):
            point = tuple(a + s * b for a, b in zip(anchor, direction))
            return function(point)

        nodes = draw.distinct_fractions(degree + 2, -3, 3, exclude_zero=False)
        values = [along_line(s) for s in nodes[:-1]]
        interpolant = lagrange_interpolate(nodes[:-1], values)
        if interpolant(nodes[-1]) != along_line(nodes[-1]):
            return False
    return True
