"""Configuration shared by the OMPE sender and receiver.

The paper's parameters (Sections III-C and IV):

* ``q`` — the security degree: the receiver hides each coordinate in a
  random degree-``q`` polynomial and the sender masks with ``h(u)`` of
  degree ``deg(P) * q``, so the interpolation needs
  ``m = deg(P) * q + 1`` covers.
* ``cover_expansion`` (the paper's ``k``) — the receiver sends
  ``M = m * cover_expansion`` point/vector pairs, of which only ``m``
  are real covers; the rest are disguises.
* ``exact`` — Fraction arithmetic (bit-exact protocol, default) versus
  float (fast mode; see the arithmetic ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ValidationError
from repro.math.groups import SchnorrGroup, fast_group
from repro.utils.serialization import register_payload_type


@register_payload_type("ompe/config")
@dataclass(frozen=True)
class OMPEConfig:
    """Parameters of one OMPE execution (shared by both parties)."""

    security_degree: int = 2
    cover_expansion: int = 3
    exact: bool = True
    coefficient_bound: int = 8
    node_bound: int = 4
    group: Optional[SchnorrGroup] = None

    def __post_init__(self) -> None:
        if self.security_degree < 1:
            raise ValidationError(
                f"security_degree must be at least 1, got {self.security_degree}"
            )
        if self.cover_expansion < 2:
            raise ValidationError(
                f"cover_expansion must be at least 2 (covers must hide among "
                f"disguises), got {self.cover_expansion}"
            )
        if self.coefficient_bound < 1 or self.node_bound < 1:
            raise ValidationError("bounds must be at least 1")

    def resolved_group(self) -> SchnorrGroup:
        """The OT group (a shared 256-bit group unless overridden)."""
        return self.group if self.group is not None else fast_group()

    def cover_count(self, function_degree: int) -> int:
        """``m = deg(P) * q + 1`` interpolation covers."""
        if function_degree < 1:
            raise ValidationError(
                f"function degree must be at least 1, got {function_degree}"
            )
        return function_degree * self.security_degree + 1

    def pair_count(self, function_degree: int) -> int:
        """``M = m * k`` total transmitted pairs."""
        return self.cover_count(function_degree) * self.cover_expansion


def draw_amplifier(rng, exact: bool = True, decades: int = 2):
    """Draw the positive amplifier ``r_a`` (paper Section IV-A.1).

    The paper only requires ``r_a > 0``; we draw it *log-uniformly*
    across ``[10^-decades, 10^decades]`` (mantissa in [1, 10), uniform
    exponent).  A heavy-tailed scale is what makes the Fig. 5
    collusion attack "keep rambling": a narrow uniform amplifier would
    let least-squares average the noise away, while a four-decade
    spread keeps pooled regressions dominated by a handful of samples.
    """
    from fractions import Fraction

    exponent = rng.randint(-decades, decades)
    if exact:
        mantissa = rng.positive_fraction(1, 10)
        base = Fraction(10)
    else:
        mantissa = rng.uniform(1.0, 10.0)
        base = 10.0
    return mantissa * base**exponent
