"""Composition cache for OMPE sender functions.

An OMPE run evaluates the sender's secret polynomial at all ``M``
point/vector pairs; the similarity protocol chains *three* OMPE runs
per model pair, and matching workloads replay the same reference-model
polynomials across many pairs.  Rebuilding the function wrapper — and,
with it, the scaled-integer compiled form that
:class:`~repro.math.multivariate.MultivariatePolynomial` attaches to an
instance — for every run throws that work away.

This module memoizes the polynomial → function composition in a small
LRU keyed by the polynomial itself (multivariate polynomials are
immutable, hashable by term map).  A cache hit returns the *same*
function object, so its compiled scaled-integer form, per-variable
power-table layout, and monomial ordering are shared across the M
evaluation points of a run and across chained runs.  The cache is pure
memoization: building a fresh function yields identical evaluations,
and the naive-arithmetic mode bypasses it entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict

from repro.math import fastpath

_CACHE: "OrderedDict" = OrderedDict()
_CACHE_CAP = 128
_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def cached_composition(key, build: Callable):
    """Return ``build()`` memoized under ``key`` (LRU, output-identical).

    ``key`` must be hashable and uniquely determine the composition —
    the callers key by the immutable polynomial.  With the hot path
    disabled this always rebuilds, keeping the naive reference free of
    cross-run state.
    """
    if not fastpath.enabled():
        return build()
    hit = _CACHE.get(key)
    if hit is not None:
        _STATS["hits"] += 1
        try:
            _CACHE.move_to_end(key)
        except KeyError:
            pass  # concurrently evicted; the value in hand is still valid
        return hit
    _STATS["misses"] += 1
    value = build()
    _CACHE[key] = value
    while len(_CACHE) > _CACHE_CAP:
        try:
            _CACHE.popitem(last=False)
        except KeyError:
            break  # another thread emptied the cache under us
    return value


def clear_composition_cache() -> None:
    """Drop every cached composition and reset the hit/miss counters."""
    _CACHE.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


def composition_cache_stats() -> Dict[str, int]:
    """Current ``{"hits", "misses", "size"}`` of the composition cache."""
    stats = dict(_STATS)
    stats["size"] = len(_CACHE)
    return stats
