"""OMPE receiver (the paper's Bob / client side).

Implements the receiver steps of Sections III-C and IV-A:

1. Announce the arity; learn the interpolation parameters ``(p, m, M)``.
2. Hide the input ``α`` in random degree-``q`` polynomials
   ``g_i(v)`` with ``g_i(0) = α_i``, pick ``M`` distinct nonzero nodes,
   select ``m`` cover positions where ``z_i = G(v_i)``, fill the rest
   with disguises, and send all ``M`` pairs.

   Disguises here are drawn as evaluations of *fresh* random hiding
   polynomials (with random constant terms), so covers and disguises
   are identically distributed — strictly stronger camouflage than the
   paper's "randomly selected" values, and testable
   (:mod:`repro.core.privacy.analysis`).
3. Run ``m``-out-of-``M`` OT to learn the cover evaluations only.
4. Lagrange-interpolate ``B(v)`` and output the secret
   ``B(0) = r_a P(α) + r_b``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.core.ompe.config import OMPEConfig
from repro.core.ompe.function import as_exact_vector
from repro.crypto.ot.k_of_n import KOfNReceiver
from repro.exceptions import OMPEError, ProtocolAbort
from repro.math.interpolation import lagrange_at_zero
from repro.math.polynomials import Number, Polynomial, evaluate_all
from repro.net.party import Party
from repro.utils.rng import ReproRandom
from repro.utils.serialization import decode_value
from repro.utils.timer import TimingRecorder


class OMPEReceiver(Party):
    """Holds the input ``α``; learns only ``r_a P(α) + r_b``."""

    def __init__(
        self,
        name: str,
        input_vector: Sequence[Number],
        config: OMPEConfig,
        rng: Optional[ReproRandom] = None,
        timings: Optional[TimingRecorder] = None,
        pool=None,
    ) -> None:
        super().__init__(name, rng)
        if pool is not None and pool.arity != len(tuple(input_vector)):
            raise OMPEError(
                f"precomputation pool was built for arity {pool.arity}, "
                f"input has {len(tuple(input_vector))}"
            )
        self.pool = pool
        vector = tuple(input_vector)
        if not vector:
            raise OMPEError("input vector must be non-empty")
        self.input_vector = as_exact_vector(vector) if config.exact else tuple(
            float(v) for v in vector
        )
        self.config = config
        self.timings = timings or TimingRecorder()
        self._cover_count: int = 0
        self._pair_count: int = 0
        self._nodes: List[Number] = []
        self._cover_positions: List[int] = []
        self._ot_receiver: Optional[KOfNReceiver] = None

    # -- step 1 --------------------------------------------------------------

    def send_request(self) -> None:
        """Announce the arity."""
        with obs.get_tracer().span(
            "ompe.request",
            party=self.name,
            phase="request",
            arity=len(self.input_vector),
        ):
            self.send("ompe/request", len(self.input_vector))

    # -- step 2 ---------------------------------------------------------------

    def _random_node(self, draw: ReproRandom) -> Number:
        if self.config.exact:
            return draw.nonzero_fraction(-self.config.node_bound, self.config.node_bound)
        while True:
            value = draw.uniform(-self.config.node_bound, self.config.node_bound)
            if abs(value) > 1e-9:
                return value

    def _hiding_polynomials(
        self, draw: ReproRandom, constants: Sequence[Number]
    ) -> List[Polynomial]:
        return [
            Polynomial.random(
                self.config.security_degree,
                draw.fork("g", index),
                constant_term=constant,
                coefficient_bound=self.config.coefficient_bound,
                exact=self.config.exact,
            )
            for index, constant in enumerate(constants)
        ]

    def handle_params(self) -> None:
        """Receive ``(p, m, M)``; send the ``M`` disguised pairs."""
        with obs.get_tracer().span(
            "ompe.points", party=self.name, phase="points"
        ) as span:
            self._handle_params(span)

    def _handle_params(self, span) -> None:
        degree, cover_count, pair_count = self.receive("ompe/params")
        span.set(m=cover_count, M=pair_count, degree=degree)
        if cover_count != self.config.cover_count(degree):
            raise ProtocolAbort(
                f"sender announced m={cover_count}, config implies "
                f"{self.config.cover_count(degree)}"
            )
        if pair_count != self.config.pair_count(degree):
            raise ProtocolAbort(
                f"sender announced M={pair_count}, config implies "
                f"{self.config.pair_count(degree)}"
            )
        self._cover_count = cover_count
        self._pair_count = pair_count
        if self.pool is not None:
            if self.pool.function_degree != degree:
                raise ProtocolAbort(
                    f"precomputation pool was built for degree "
                    f"{self.pool.function_degree}, sender announced {degree}"
                )
            with self.timings.measure("receiver/randomize"):
                bundle = self.pool.pop()
                hiders = [
                    hider.shift(constant)
                    for hider, constant in zip(bundle.zero_hiders, self.input_vector)
                ]
                pairs = []
                for index, node in enumerate(bundle.nodes):
                    disguise = bundle.disguises[index]
                    if disguise is None:
                        # Shared node power tables across the n hiders.
                        vector = tuple(evaluate_all(hiders, node))
                    else:
                        vector = disguise
                    pairs.append((node, vector))
                self._nodes = list(bundle.nodes)
                self._cover_positions = list(bundle.cover_positions)
            self.send("ompe/points", tuple(pairs))
            return
        with self.timings.measure("receiver/randomize"):
            draw = self.rng.fork("hide")
            hiders = self._hiding_polynomials(draw.fork("covers"), self.input_vector)
            if self.config.exact:
                nodes = draw.fork("nodes").distinct_fractions(
                    pair_count,
                    -self.config.node_bound,
                    self.config.node_bound,
                    exclude_zero=True,
                )
            else:
                node_draw = draw.fork("nodes")
                seen = set()
                nodes = []
                while len(nodes) < pair_count:
                    value = self._random_node(node_draw)
                    if value not in seen:
                        seen.add(value)
                        nodes.append(value)
            positions = draw.fork("positions").sample_indices(pair_count, cover_count)
            position_set = set(positions)
            pairs: List[Tuple[Number, tuple]] = []
            disguise_draw = draw.fork("disguises")
            for index, node in enumerate(nodes):
                if index in position_set:
                    # Shared node power tables across the n hiders.
                    vector = tuple(evaluate_all(hiders, node))
                else:
                    # Fresh hiding polynomials with random constant terms:
                    # disguises are identically distributed with covers.
                    constants = [
                        disguise_draw.fraction(-1, 1)
                        if self.config.exact
                        else disguise_draw.uniform(-1.0, 1.0)
                        for _ in self.input_vector
                    ]
                    fakes = self._hiding_polynomials(
                        disguise_draw.fork("poly", index), constants
                    )
                    vector = tuple(evaluate_all(fakes, node))
                pairs.append((node, vector))
            self._nodes = nodes
            self._cover_positions = positions
        self.send("ompe/points", tuple(pairs))

    # -- steps 3 and 4 ----------------------------------------------------------

    def handle_ot_setups(self) -> None:
        """Blind the cover positions into OT choices."""
        with obs.get_tracer().span(
            "ompe.ot_choice",
            party=self.name,
            phase="ot-choices",
            m=self._cover_count,
        ):
            setups = self.receive("ompe/ot-setups")
            with self.timings.measure("receiver/ot"):
                self._ot_receiver = KOfNReceiver(
                    self.config.resolved_group(), self.rng.fork("ot")
                )
                choices = self._ot_receiver.choose(
                    setups, self._cover_positions, self._pair_count
                )
            self.send("ompe/ot-choices", choices)

    def finish(self) -> Number:
        """Retrieve cover evaluations, interpolate, return ``B(0)``."""
        tracer = obs.get_tracer()
        with tracer.span("ompe.finish", party=self.name, phase="finish"):
            if self._ot_receiver is None:
                raise OMPEError("finish before handle_ot_setups")
            transfers = self.receive("ompe/ot-transfers")
            with self.timings.measure("receiver/ot"):
                payloads = self._ot_receiver.retrieve(transfers)
            with tracer.span(
                "ompe.interpolate",
                party=self.name,
                phase="interpolate",
                covers=len(self._cover_positions),
            ):
                with self.timings.measure("receiver/interpolate"):
                    values = [decode_value(blob) for blob in payloads]
                    nodes = [self._nodes[i] for i in self._cover_positions]
                    if not self.config.exact:
                        values = [float(v) for v in values]
                    secret = lagrange_at_zero(nodes, values)
        return secret
