"""Oblivious Multivariate Polynomial Evaluation (Tassa et al. style)."""

from repro.core.ompe.config import OMPEConfig
from repro.core.ompe.function import OMPEFunction, as_exact_vector, audit_degree
from repro.core.ompe.batch import BatchOutcome, execute_ompe_batch
from repro.core.ompe.precompute import ReceiverPool, SenderPool
from repro.core.ompe.protocol import OMPEOutcome, execute_ompe
from repro.core.ompe.receiver import OMPEReceiver
from repro.core.ompe.sender import OMPESender

__all__ = [
    "BatchOutcome",
    "execute_ompe_batch",
    "OMPEConfig",
    "OMPEFunction",
    "as_exact_vector",
    "audit_degree",
    "OMPEOutcome",
    "ReceiverPool",
    "SenderPool",
    "execute_ompe",
    "OMPEReceiver",
    "OMPESender",
]
