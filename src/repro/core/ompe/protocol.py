"""End-to-end OMPE execution.

:func:`execute_ompe` runs both roles in-process through a measured
channel and returns the receiver's secret output plus a full
:class:`~repro.net.runner.ProtocolReport` (transcript, timings,
simulated network time).  This is the single entry point the
classification and similarity protocols build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro import obs
from repro.core.ompe.config import OMPEConfig
from repro.core.ompe.function import OMPEFunction
from repro.core.ompe.receiver import OMPEReceiver
from repro.core.ompe.sender import OMPESender
from repro.math.polynomials import Number
from repro.net.channel import LinkModel
from repro.net.party import connect_parties
from repro.net.runner import ProtocolReport, finish_report
from repro.utils.rng import ReproRandom
from repro.utils.timer import TimingRecorder


@dataclass(frozen=True)
class OMPEOutcome:
    """Result of one OMPE run.

    ``value`` is the receiver's output ``r_a P(α) + r_b``.  The sender's
    secret randomizers are *not* part of the receiver's view; they are
    surfaced here (from the sender object) only for tests and for
    higher protocols where the same party plays the sender in a later
    phase (similarity evaluation needs ``r_am``, ``r_aw``, ``r_b``).
    """

    value: Number
    amplifier: Number
    offset: Number
    report: ProtocolReport


def execute_ompe(
    function: OMPEFunction,
    input_vector: Sequence[Number],
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
    amplify: bool = True,
    offset: bool = False,
    link: Optional[LinkModel] = None,
    sender_name: str = "alice",
    receiver_name: str = "bob",
    sender_pool=None,
    receiver_pool=None,
) -> OMPEOutcome:
    """Run the full OMPE protocol between two in-process parties.

    ``sender_pool`` / ``receiver_pool`` are optional
    :mod:`repro.core.ompe.precompute` pools; when given, the parties
    draw their randomness from the pools instead of generating it
    online (the paper's Section VI-B.1 optimization).
    """
    config = config or OMPEConfig()
    root = ReproRandom(seed)
    timings = TimingRecorder()
    sender = OMPESender(
        sender_name,
        function,
        config,
        rng=root.fork("sender"),
        amplify=amplify,
        offset=offset,
        timings=timings,
        pool=sender_pool,
    )
    receiver = OMPEReceiver(
        receiver_name,
        input_vector,
        config,
        rng=root.fork("receiver"),
        timings=timings,
        pool=receiver_pool,
    )
    channel = connect_parties(sender, receiver, link=link) if link else connect_parties(
        sender, receiver
    )

    with obs.get_tracer().span(
        "ompe",
        phase="protocol",
        arity=function.arity,
        degree=function.total_degree,
        m=config.cover_count(function.total_degree),
        M=config.pair_count(function.total_degree),
    ) as root_span:
        receiver.send_request()
        sender.handle_request()
        receiver.handle_params()
        sender.handle_points()
        receiver.handle_ot_setups()
        sender.handle_choices()
        value = receiver.finish()
        root_span.set(total_bytes=channel.transcript.total_bytes())

    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_ompe_runs_total", "Completed OMPE protocol executions"
        ).inc()

    report = finish_report(value, channel, timings)
    return OMPEOutcome(
        value=value,
        amplifier=sender.amplifier,
        offset=sender.offset_value,
        report=report,
    )


def run_ompe_sender(
    function: OMPEFunction,
    channel,
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
    amplify: bool = True,
    offset: bool = False,
    name: str = "alice",
    pool=None,
    timings: Optional[TimingRecorder] = None,
) -> OMPEOutcome:
    """Run only the *sender* role over an already-connected channel.

    The distributed counterpart of :func:`execute_ompe`: each process
    calls its own role driver against its endpoint of a
    :class:`~repro.net.wire.WireChannel` (any blocking channel with the
    same contract works).  The drivers reproduce ``execute_ompe``'s
    seed discipline exactly — ``ReproRandom(seed).fork("sender")`` /
    ``.fork("receiver")`` — so a split run with the same seed produces
    bit-identical messages, masked values, and outputs.

    The returned outcome carries this role's view only: ``value`` is
    ``None`` (the output belongs to the receiver) and the report's
    transcript is this endpoint's copy of the conversation.
    """
    config = config or OMPEConfig()
    timings = timings or TimingRecorder()
    sender = OMPESender(
        name,
        function,
        config,
        rng=ReproRandom(seed).fork("sender"),
        amplify=amplify,
        offset=offset,
        timings=timings,
        pool=pool,
    )
    sender.connect(channel)
    with obs.get_tracer().span(
        "ompe.sender", party=name, phase="protocol", degree=function.total_degree
    ):
        sender.handle_request()
        sender.handle_points()
        sender.handle_choices()
    # No drain assertion here: the sender's final step is a send, so any
    # data readable at this instant is the peer's *next* protocol phase
    # racing ahead on a multiplexed connection, not an undrained message
    # of this run.  The receiver side keeps the strict check.
    report = ProtocolReport(
        result=None,
        transcript=channel.transcript,
        timings=timings,
        simulated_network_s=channel.simulated_time,
    )
    return OMPEOutcome(
        value=None,
        amplifier=sender.amplifier,
        offset=sender.offset_value,
        report=report,
    )


def run_ompe_receiver(
    input_vector: Sequence[Number],
    channel,
    config: Optional[OMPEConfig] = None,
    seed: Optional[int] = None,
    name: str = "bob",
    pool=None,
    timings: Optional[TimingRecorder] = None,
) -> OMPEOutcome:
    """Run only the *receiver* role over an already-connected channel.

    See :func:`run_ompe_sender`.  ``value`` is the receiver's secret
    output ``r_a P(α) + r_b``; the sender's randomizers are not in this
    role's view, so ``amplifier``/``offset`` are ``None``.  The
    receiver side owns the ``repro_ompe_runs_total`` increment, keeping
    the shared-registry count identical to an in-process run.
    """
    config = config or OMPEConfig()
    timings = timings or TimingRecorder()
    receiver = OMPEReceiver(
        name,
        input_vector,
        config,
        rng=ReproRandom(seed).fork("receiver"),
        timings=timings,
        pool=pool,
    )
    receiver.connect(channel)
    with obs.get_tracer().span(
        "ompe.receiver", party=name, phase="protocol"
    ):
        receiver.send_request()
        receiver.handle_params()
        receiver.handle_ot_setups()
        value = receiver.finish()
    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_ompe_runs_total", "Completed OMPE protocol executions"
        ).inc()
    report = finish_report(value, channel, timings)
    return OMPEOutcome(value=value, amplifier=None, offset=None, report=report)
