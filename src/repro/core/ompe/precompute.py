"""Offline precomputation for OMPE (paper Section VI-B.1).

The paper notes the privacy overhead "can be further reduced by
generating random polynomials before the scheme".  Everything random in
an OMPE run is independent of the actual query:

* **Sender**: the masking polynomial ``h(u)`` (only its degree depends
  on the function), the amplifier ``r_a``, and the offset ``r_b``.
* **Receiver**: the hiding polynomials can be precomputed as
  *zero-constant* polynomials ``ĝ_i`` (at query time
  ``g_i(v) = t̃_i + ĝ_i(v)`` fixes the constant term), plus the nodes
  ``v_1..v_M``, the cover positions, and the full disguise vectors.

:class:`SenderPool` and :class:`ReceiverPool` pre-generate batches of
these bundles; the sender/receiver classes pop from them during the
online phase.  ``benchmarks/bench_ablation_precompute.py`` measures the
online-latency reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.ompe.config import OMPEConfig, draw_amplifier
from repro.exceptions import OMPEError, ValidationError
from repro.math.polynomials import Number, Polynomial
from repro.utils.rng import ReproRandom


@dataclass(frozen=True)
class SenderBundle:
    """One precomputed sender randomness bundle."""

    mask: Polynomial
    amplifier: Number
    offset: Number


@dataclass(frozen=True)
class ReceiverBundle:
    """One precomputed receiver randomness bundle.

    ``zero_hiders[i]`` is a degree-q polynomial with zero constant term;
    the online phase adds the secret coordinate.  ``disguises`` maps the
    non-cover positions to ready-made disguise vectors.
    """

    zero_hiders: Tuple[Polynomial, ...]
    nodes: Tuple[Number, ...]
    cover_positions: Tuple[int, ...]
    disguises: Tuple[Optional[Tuple[Number, ...]], ...]


class SenderPool:
    """Pre-generates sender bundles for a fixed function degree."""

    def __init__(
        self,
        config: OMPEConfig,
        function_degree: int,
        count: int,
        rng: Optional[ReproRandom] = None,
        amplify: bool = True,
        offset: bool = False,
    ) -> None:
        if count < 1:
            raise ValidationError(f"count must be at least 1, got {count}")
        if function_degree < 1:
            raise ValidationError(
                f"function_degree must be at least 1, got {function_degree}"
            )
        self.config = config
        self.function_degree = function_degree
        rng = rng or ReproRandom()
        mask_degree = function_degree * config.security_degree
        self._bundles: List[SenderBundle] = []
        for index in range(count):
            draw = rng.fork("bundle", index)
            mask = Polynomial.random(
                mask_degree,
                draw.fork("mask"),
                constant_term=0,
                coefficient_bound=config.coefficient_bound,
                exact=config.exact,
            )
            amplifier: Number = 1
            if amplify:
                amplifier = draw_amplifier(draw.fork("amplifier"), exact=config.exact)
            offset_value: Number = 0
            if offset:
                offset_draw = draw.fork("offset")
                offset_value = (
                    offset_draw.nonzero_fraction(
                        -config.coefficient_bound, config.coefficient_bound
                    )
                    if config.exact
                    else offset_draw.uniform(
                        -config.coefficient_bound, config.coefficient_bound
                    )
                )
            self._bundles.append(
                SenderBundle(mask=mask, amplifier=amplifier, offset=offset_value)
            )

    def __len__(self) -> int:
        return len(self._bundles)

    def pop(self) -> SenderBundle:
        """Consume one bundle (each must be used at most once).

        Exhaustion contract (pinned by ``tests/core/test_precompute.py``):
        a raw pool raises :class:`~repro.exceptions.OMPEError` when
        popped empty — it never regenerates silently, because a reused
        or implicitly re-derived mask/amplifier would break one-time
        randomness.  Refill is a *caller* policy:
        :class:`~repro.core.classification.session.PrivateClassificationSession`
        and the :mod:`repro.engine` workers construct a fresh pool from
        their own seeded stream when this error would otherwise trip.
        """
        if not self._bundles:
            raise OMPEError("sender precomputation pool exhausted")
        return self._bundles.pop()


class ReceiverPool:
    """Pre-generates receiver bundles for a fixed (arity, degree) shape."""

    def __init__(
        self,
        config: OMPEConfig,
        arity: int,
        function_degree: int,
        count: int,
        rng: Optional[ReproRandom] = None,
    ) -> None:
        if count < 1:
            raise ValidationError(f"count must be at least 1, got {count}")
        if arity < 1:
            raise ValidationError(f"arity must be at least 1, got {arity}")
        self.config = config
        self.arity = arity
        self.function_degree = function_degree
        rng = rng or ReproRandom()
        pair_count = config.pair_count(function_degree)
        cover_count = config.cover_count(function_degree)
        self._bundles: List[ReceiverBundle] = []
        for index in range(count):
            draw = rng.fork("bundle", index)
            zero_hiders = tuple(
                Polynomial.random(
                    config.security_degree,
                    draw.fork("g", position),
                    constant_term=0,
                    coefficient_bound=config.coefficient_bound,
                    exact=config.exact,
                )
                for position in range(arity)
            )
            if config.exact:
                nodes = tuple(
                    draw.fork("nodes").distinct_fractions(
                        pair_count, -config.node_bound, config.node_bound
                    )
                )
            else:
                node_draw = draw.fork("nodes")
                seen = set()
                node_list: List[float] = []
                while len(node_list) < pair_count:
                    value = node_draw.uniform(-config.node_bound, config.node_bound)
                    if abs(value) > 1e-9 and value not in seen:
                        seen.add(value)
                        node_list.append(value)
                nodes = tuple(node_list)
            positions = tuple(
                draw.fork("positions").sample_indices(pair_count, cover_count)
            )
            position_set = set(positions)
            disguise_draw = draw.fork("disguises")
            disguises: List[Optional[Tuple[Number, ...]]] = []
            for pair_index, node in enumerate(nodes):
                if pair_index in position_set:
                    disguises.append(None)
                    continue
                constants = [
                    disguise_draw.fraction(-1, 1)
                    if config.exact
                    else disguise_draw.uniform(-1.0, 1.0)
                    for _ in range(arity)
                ]
                fakes = [
                    Polynomial.random(
                        config.security_degree,
                        disguise_draw.fork("poly", pair_index, position),
                        constant_term=constant,
                        coefficient_bound=config.coefficient_bound,
                        exact=config.exact,
                    )
                    for position, constant in enumerate(constants)
                ]
                disguises.append(tuple(g(node) for g in fakes))
            self._bundles.append(
                ReceiverBundle(
                    zero_hiders=zero_hiders,
                    nodes=nodes,
                    cover_positions=positions,
                    disguises=tuple(disguises),
                )
            )

    def __len__(self) -> int:
        return len(self._bundles)

    def pop(self) -> ReceiverBundle:
        """Consume one bundle (each must be used at most once).

        Same exhaustion contract as :meth:`SenderPool.pop`: raises
        :class:`~repro.exceptions.OMPEError` when empty, never refills
        itself — transparent refill belongs to the session/engine layer.
        """
        if not self._bundles:
            raise OMPEError("receiver precomputation pool exhausted")
        return self._bundles.pop()
