"""OMPE sender (the paper's Alice / trainer side).

Implements the sender steps of Sections III-C and IV-A:

1. On request, generate the masking polynomial ``h(u)`` of degree
   ``deg(P) * q`` with ``h(0) = 0``, draw the positive amplifier ``r_a``
   (and optionally the offset ``r_b``), and announce the interpolation
   parameters.
2. On receiving the ``M`` point/vector pairs, evaluate
   ``A(v_i, z_i) = h(v_i) + r_a · P(z_i) + r_b`` for every pair.
3. Serve the evaluations through an ``m``-out-of-``M`` oblivious
   transfer, learning nothing about which ``m`` were real covers.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.core.ompe.config import OMPEConfig, draw_amplifier
from repro.core.ompe.function import OMPEFunction
from repro.crypto.ot.k_of_n import KOfNSender
from repro.exceptions import OMPEError, ProtocolAbort
from repro.math import fastpath
from repro.math.polynomials import Number, Polynomial
from repro.net.party import Party
from repro.utils.rng import ReproRandom
from repro.utils.serialization import encode_value
from repro.utils.timer import TimingRecorder


class OMPESender(Party):
    """Holds the secret function ``P``; reveals only ``r_a P(α) + r_b``."""

    def __init__(
        self,
        name: str,
        function: OMPEFunction,
        config: OMPEConfig,
        rng: Optional[ReproRandom] = None,
        amplify: bool = True,
        offset: bool = False,
        timings: Optional[TimingRecorder] = None,
        pool=None,
    ) -> None:
        super().__init__(name, rng)
        self.function = function
        self.config = config
        self.amplify = amplify
        self.offset = offset
        self.pool = pool
        if pool is not None and pool.function_degree != function.total_degree:
            raise OMPEError(
                f"precomputation pool was built for degree "
                f"{pool.function_degree}, function has {function.total_degree}"
            )
        self.timings = timings or TimingRecorder()
        self.amplifier: Number = 1
        self.offset_value: Number = 0
        self._mask: Optional[Polynomial] = None
        self._ot_sender: Optional[KOfNSender] = None
        self._cover_count: int = 0

    # -- step 1 -------------------------------------------------------------

    def handle_request(self) -> None:
        """Receive the request; publish masking parameters."""
        with obs.get_tracer().span(
            "ompe.params", party=self.name, phase="params"
        ) as span:
            with self.timings.measure("sender/randomize"):
                arity = self.receive("ompe/request")
                if arity != self.function.arity:
                    raise ProtocolAbort(
                        f"receiver announced arity {arity}, function has "
                        f"{self.function.arity}"
                    )
                if self.pool is not None:
                    bundle = self.pool.pop()
                    self._mask = bundle.mask
                    self.amplifier = bundle.amplifier
                    self.offset_value = bundle.offset
                else:
                    mask_degree = (
                        self.function.total_degree * self.config.security_degree
                    )
                    self._mask = Polynomial.random(
                        mask_degree,
                        self.rng.fork("mask"),
                        constant_term=0,
                        coefficient_bound=self.config.coefficient_bound,
                        exact=self.config.exact,
                    )
                    if self.amplify:
                        self.amplifier = draw_amplifier(
                            self.rng.fork("amplifier"), exact=self.config.exact
                        )
                    if self.offset:
                        draw = self.rng.fork("offset")
                        self.offset_value = (
                            draw.nonzero_fraction(
                                -self.config.coefficient_bound,
                                self.config.coefficient_bound,
                            )
                            if self.config.exact
                            else draw.uniform(
                                -self.config.coefficient_bound,
                                self.config.coefficient_bound,
                            )
                        )
                self._cover_count = self.config.cover_count(
                    self.function.total_degree
                )
                pair_count = self.config.pair_count(self.function.total_degree)
            span.set(
                m=self._cover_count,
                M=pair_count,
                degree=self.function.total_degree,
            )
            self.send(
                "ompe/params",
                (self.function.total_degree, self._cover_count, pair_count),
            )

    # -- steps 2 and 3 -------------------------------------------------------

    def handle_points(self) -> None:
        """Evaluate ``A`` on all pairs and open the OT phase."""
        tracer = obs.get_tracer()
        pairs = self.receive("ompe/points")
        expected = self.config.pair_count(self.function.total_degree)
        if len(pairs) != expected:
            raise ProtocolAbort(
                f"expected {expected} point/vector pairs, got {len(pairs)}"
            )
        if self._mask is None:
            raise OMPEError("handle_points before handle_request")
        with tracer.span(
            "ompe.evaluate", party=self.name, phase="evaluate", pairs=len(pairs)
        ):
            with self.timings.measure("sender/evaluate"):
                # With identity amplifier/offset (amplify=False runs,
                # e.g. the similarity protocol's third OMPE), skip the
                # no-op Fraction multiply/add on the hot path — the
                # values are unchanged (x*1 == x, x+0 == x exactly).
                # Exact mode only: float -0.0 + 0 would flip its sign
                # bit and change the encoded transcript.
                skip = fastpath.enabled() and self.config.exact
                skip_amplifier = skip and self.amplifier == 1
                skip_offset = skip and self.offset_value == 0
                evaluations: List[bytes] = []
                for node, vector in pairs:
                    if len(vector) != self.function.arity:
                        raise ProtocolAbort(
                            f"vector of length {len(vector)} for arity "
                            f"{self.function.arity}"
                        )
                    value = self.function(vector)
                    if not skip_amplifier:
                        value = self.amplifier * value
                    value = self._mask(node) + value
                    if not skip_offset:
                        value = value + self.offset_value
                    evaluations.append(encode_value(value))
        with tracer.span(
            "ompe.ot_setup",
            party=self.name,
            phase="ot-setups",
            m=self._cover_count,
        ):
            with self.timings.measure("sender/ot"):
                self._ot_sender = KOfNSender(
                    self.config.resolved_group(), self.rng.fork("ot")
                )
                setups = self._ot_sender.setup(self._cover_count)
                self._evaluations = evaluations
            self.send("ompe/ot-setups", setups)

    def handle_choices(self) -> None:
        """Answer the receiver's OT choices."""
        with obs.get_tracer().span(
            "ompe.ot_transfer", party=self.name, phase="ot-transfers"
        ):
            choices = self.receive("ompe/ot-choices")
            if self._ot_sender is None:
                raise OMPEError("handle_choices before handle_points")
            with self.timings.measure("sender/ot"):
                transfers = self._ot_sender.transfer(self._evaluations, choices)
            self.send("ompe/ot-transfers", transfers)
