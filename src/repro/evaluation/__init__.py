"""Evaluation harness: regenerate every table and figure of the paper."""

from repro.evaluation import extensions, figures, tables  # noqa: F401 (registry side effects)
from repro.evaluation.harness import (
    ExperimentResult,
    available_experiments,
    run_experiment,
    write_metrics_snapshot,
)
from repro.evaluation.report import render_markdown, render_text, run_all

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "run_experiment",
    "write_metrics_snapshot",
    "render_markdown",
    "render_text",
    "run_all",
]
