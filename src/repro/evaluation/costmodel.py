"""Analytic communication-cost model, validated against transcripts.

Every message of the OMPE protocol has a size that is a closed-form
function of the configuration: the points message carries ``M`` nodes
plus ``M·n`` coordinates, the OT phase carries ``m`` parallel sessions
of ``M`` wrapped evaluations over a ``bits``-bit group, and so on.
:func:`predict_classification_bytes` computes that closed form;
``tests/evaluation/test_costmodel.py`` checks it against measured
transcripts (within a tolerance covering the variable-length integer
encodings).  Operators can budget bandwidth without running protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.ompe.config import OMPEConfig
from repro.crypto.hashing import TAG_BYTES
from repro.exceptions import ValidationError

#: Canonical phase label (see :func:`repro.net.transcript.phase_of`)
#: for each breakdown field — the shared vocabulary between predicted
#: and measured per-phase byte accounting.
PHASE_FIELDS = {
    "request": "request_bytes",
    "params": "params_bytes",
    "points": "points_bytes",
    "ot-setups": "ot_setup_bytes",
    "ot-choices": "ot_choice_bytes",
    "ot-transfers": "ot_transfer_bytes",
}


@dataclass(frozen=True)
class CostBreakdown:
    """Wire bytes per protocol phase (predicted or measured)."""

    request_bytes: int
    params_bytes: int
    points_bytes: int
    ot_setup_bytes: int
    ot_choice_bytes: int
    ot_transfer_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.request_bytes
            + self.params_bytes
            + self.points_bytes
            + self.ot_setup_bytes
            + self.ot_choice_bytes
            + self.ot_transfer_bytes
        )

    def by_phase(self) -> Dict[str, int]:
        """Mapping of canonical phase label to bytes."""
        return {phase: getattr(self, field) for phase, field in PHASE_FIELDS.items()}


def breakdown_from_transcript(transcript) -> CostBreakdown:
    """Measured per-phase bytes of one protocol run, in the model's shape.

    Uses :meth:`~repro.net.transcript.Transcript.bytes_by_phase` so the
    validation path, the live metrics, and the drift detector all share
    one byte-accounting definition.
    """
    by_phase = transcript.bytes_by_phase()
    return CostBreakdown(
        **{
            field: by_phase.get(phase, 0)
            for phase, field in PHASE_FIELDS.items()
        }
    )


#: Average wire size of one exact-rational scalar (a degree-q hiding
#: polynomial evaluation).  Calibrated against measured transcripts
#: over the default coefficient/node grids.
def _scalar_bytes(security_degree: int) -> int:
    return 18 + round(3.5 * security_degree)


#: Average wire size of one encoded evaluation ``h(v) + r_a P(G(v))``:
#: the rational's bit length compounds with the total composed degree
#: ``q * deg(P)``.
def _evaluation_bytes(security_degree: int, function_degree: int) -> int:
    return 24 + 7 * security_degree * function_degree


#: Wire size of one big-int group element (tag + length + sign framing).
def _element_bytes(group_bytes: int) -> int:
    return 6 + group_bytes


def predict_classification_bytes(
    config: OMPEConfig,
    dimension: int,
    function_degree: int = 1,
) -> CostBreakdown:
    """Predict the wire cost of one private classification.

    Accurate to ~25% for exact mode with default bounds (the rational
    encodings are variable-length); the *scaling* in ``M``, ``n``, and
    the group size is exact.
    """
    if dimension < 1:
        raise ValidationError(f"dimension must be at least 1, got {dimension}")
    if function_degree < 1:
        raise ValidationError(
            f"function_degree must be at least 1, got {function_degree}"
        )
    m = config.cover_count(function_degree)
    M = config.pair_count(function_degree)
    q = config.security_degree
    group_bytes = (config.resolved_group().p.bit_length() + 7) // 8
    element = _element_bytes(group_bytes)
    scalar = _scalar_bytes(q)
    evaluation = _evaluation_bytes(q, function_degree)

    # Container/record framing of the wire codec: every container
    # (tuple/list/dict/bytes/str) costs a 5-byte tag + count header, and
    # every registered dataclass costs 5 bytes plus its type name.
    frame = 5
    setup_record = frame + len("ot/setup") + (frame + 16) + frame
    choice_record = frame + len("ot/choice") + (frame + 16) + frame
    transfer_record = frame + len("ot/transfer") + (frame + 16) + 2 * frame

    # Points: M pairs, each (node scalar, n-coordinate vector).
    points = frame + M * (2 * frame + (1 + dimension) * scalar)
    # OT setup / choice: m session records x (session id + one element).
    ot_setup = frame + m * (setup_record + element)
    ot_choice = frame + m * (choice_record + element)
    # OT transfer: m session records, each M ephemeral points + M
    # wrapped blobs (framed evaluation ciphertext + MAC tag).
    ot_transfer = frame + m * (
        transfer_record + M * element + M * (frame + evaluation + TAG_BYTES)
    )

    return CostBreakdown(
        request_bytes=7,
        params_bytes=frame + 3 * 7,
        points_bytes=points,
        ot_setup_bytes=ot_setup,
        ot_choice_bytes=ot_choice,
        ot_transfer_bytes=ot_transfer,
    )


def predict_similarity_bytes(config: OMPEConfig, dimension: int) -> int:
    """Lower-bound the wire cost of one private linear similarity run.

    Three OMPE runs: two dot products over ``dimension`` inputs
    (degree 1) and one 2-variate degree-4 polynomial, plus the clear
    norm exchange.  This is a *lower bound*: the area run's inputs
    ``x₁, x₂`` are already products of long rationals, so its scalars
    exceed the calibrated first-run sizes (measured runs land within
    about 1.5x of the bound).
    """
    dot_product = predict_classification_bytes(config, dimension, 1).total_bytes
    area = predict_classification_bytes(config, 2, 4).total_bytes
    clear_exchange = 5 + 2 * _scalar_bytes(config.security_degree)
    return 2 * dot_product + area + clear_exchange
