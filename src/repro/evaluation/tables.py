"""Regeneration of the paper's Table I and Table II.

* :func:`run_table1` — "Data Classification Accuracy": linear vs
  polynomial SVM accuracy on the 17 dataset analogs, alongside the
  paper's reported values.
* :func:`run_table2` — "Privacy-preserving Data Similarity Evaluation":
  four diabetes subsets (192 items each per the paper), pairwise
  compared by (a) the average per-dimension two-sample K-S statistic
  and (b) our private triangle metric scaled by 10³, asserting the two
  orderings agree.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence

import numpy as np

from repro.core.ompe import OMPEConfig
from repro.core.similarity import (
    MetricParams,
    evaluate_similarity_private,
)
from repro.evaluation.harness import ExperimentResult, register
from repro.exceptions import ValidationError
from repro.math.statistics import (
    ks_average_over_dimensions,
    spearman_correlation,
)
from repro.ml.datasets import load_dataset, table1_dataset_names
from repro.ml.datasets.registry import TABLE1_POLY_DEGREE, get_spec
from repro.ml.svm import accuracy, train_svm


def train_table1_models(name: str, seed: int = 2016):
    """Train the (linear, polynomial) model pair for one Table I row."""
    spec = get_spec(name)
    data = load_dataset(name, seed=seed)
    linear_model = train_svm(
        data.X_train, data.y_train, kernel="linear", C=spec.linear_C
    )
    polynomial_model = train_svm(
        data.X_train,
        data.y_train,
        kernel="poly",
        C=spec.poly_C,
        degree=TABLE1_POLY_DEGREE,
        a0=1.0 / data.dimension,
        b0=0.0,
    )
    return data, linear_model, polynomial_model


def run_table1(
    seed: int = 2016, datasets: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """Regenerate Table I on the synthetic analogs."""
    names = list(datasets) if datasets is not None else table1_dataset_names()
    rows: List[dict] = []
    for name in names:
        spec = get_spec(name)
        data, linear_model, polynomial_model = train_table1_models(name, seed)
        rows.append(
            {
                "dataset": name,
                "paper_linear": spec.paper_linear_accuracy,
                "paper_polynomial": spec.paper_polynomial_accuracy,
                "our_linear": accuracy(linear_model.predict(data.X_test), data.y_test),
                "our_polynomial": accuracy(
                    polynomial_model.predict(data.X_test), data.y_test
                ),
                "test_size": data.test_size,
                "dimensions": data.dimension,
            }
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Data Classification Accuracy (paper Table I)",
        columns=[
            "dataset",
            "paper_linear",
            "paper_polynomial",
            "our_linear",
            "our_polynomial",
            "test_size",
            "dimensions",
        ],
        rows=rows,
        notes=(
            "Synthetic analogs: compare relationships (which kernel wins, "
            "by roughly how much), not absolute digits — see DESIGN.md §4."
        ),
    )


#: Paper Table II ground truth: subset pair -> (K-S average, 10^3 T).
PAPER_TABLE2 = {
    ("S1", "S2"): (8.557, 30.646),
    ("S1", "S3"): (7.578, 27.736),
    ("S1", "S4"): (3.231, 9.470),
    ("S2", "S3"): (6.264, 13.786),
    ("S2", "S4"): (1.539, 5.858),
    ("S3", "S4"): (2.757, 8.171),
}


#: Latent 2-D drift positions of the four subsets.  Pairwise distances
#: approximate the paper's subset ordering (S1 vs S2 farthest, S1 vs S4
#: among the closest).  The paper's exact K-S averages violate the
#: triangle inequality (d(S2,S4) + d(S1,S4) < d(S1,S2)), so no drift
#: geometry can match them all; we reproduce the trend.
_SUBSET_DRIFT = ((0.0, 0.0), (1.5, 0.0), (0.85, 0.6), (0.28, 0.1))

#: Default generation seed for the subset recipe (any seed preserves
#: the qualitative trend; this one gives perfect rank agreement, the
#: paper's own table does too).
TABLE2_SUBSET_SEED = 4


def _diabetes_subsets(
    seed: int = TABLE2_SUBSET_SEED, subset_size: int = 192, count: int = 4
):
    """Four drifting diabetes-like subsets (192 items each per the paper).

    The paper splits the real diabetes file into four subsets that
    clearly differ in distribution (K-S averages range 1.5–8.6).  We
    reproduce that structure from 2-D latent drifts: each subset's
    feature distribution *and* its labeling hyperplane shift together
    with its drift vector, so the distributional distance (what K-S
    averages measure) and the trained-model distance (what the triangle
    metric measures) move in lockstep — the paper's "same trend" claim
    becomes a testable property.
    """
    if count != len(_SUBSET_DRIFT):
        raise ValidationError(f"the drift recipe defines {len(_SUBSET_DRIFT)} subsets")
    dimension = get_spec("diabetes").analog_dimension or 8
    rng = np.random.default_rng(seed)
    base_direction = rng.normal(size=dimension)
    base_direction /= np.linalg.norm(base_direction)
    # Two orthogonal drift directions in feature space.
    drift_one = rng.normal(size=dimension)
    drift_one -= drift_one @ base_direction * base_direction
    drift_one /= np.linalg.norm(drift_one)
    drift_two = rng.normal(size=dimension)
    drift_two -= drift_two @ base_direction * base_direction
    drift_two -= drift_two @ drift_one * drift_one
    drift_two /= np.linalg.norm(drift_two)

    subsets = []
    for index in range(count):
        u, v = _SUBSET_DRIFT[index]
        mean_shift = 0.4 * (u * drift_one + v * drift_two)
        X = rng.uniform(-1.0, 1.0, size=(subset_size, dimension))
        X = np.clip(X + mean_shift, -1.0, 1.0)
        direction = base_direction + 1.0 * (u * drift_one + v * drift_two)
        direction /= np.linalg.norm(direction)
        offsets = X @ direction
        y = np.where(offsets - np.median(offsets) >= 0.0, 1.0, -1.0)
        flips = rng.random(subset_size) < 0.02
        y = np.where(flips, -y, y)
        subsets.append((X, y))
    return subsets


def run_table2(
    seed: int = TABLE2_SUBSET_SEED,
    subset_size: int = 192,
    config: Optional[OMPEConfig] = None,
    params: Optional[MetricParams] = None,
) -> ExperimentResult:
    """Regenerate Table II: K-S average vs private triangle metric."""
    config = config or OMPEConfig()
    params = params or MetricParams()
    subsets = _diabetes_subsets(seed, subset_size=subset_size)
    models = [
        train_svm(X, y, kernel="linear", C=10.0, seed=seed) for X, y in subsets
    ]
    rows: List[dict] = []
    ks_values: List[float] = []
    t_values: List[float] = []
    for (i, j) in combinations(range(len(subsets)), 2):
        pair_name = f"S{i+1} vs S{j+1}"
        ks_average = ks_average_over_dimensions(subsets[i][0], subsets[j][0])
        outcome = evaluate_similarity_private(
            models[i], models[j], params=params, config=config, seed=seed + 31 * i + j
        )
        scaled_t = 1e3 * outcome.t
        paper_ks, paper_t = PAPER_TABLE2[(f"S{i+1}", f"S{j+1}")]
        rows.append(
            {
                "pair": pair_name,
                "paper_ks_average": paper_ks,
                "paper_scaled_t": paper_t,
                "our_ks_average": ks_average,
                "our_scaled_t": scaled_t,
            }
        )
        ks_values.append(ks_average)
        t_values.append(scaled_t)
    correlation = spearman_correlation(ks_values, t_values)
    return ExperimentResult(
        experiment_id="table2",
        title="Privacy-preserving Data Similarity Evaluation (paper Table II)",
        columns=[
            "pair",
            "paper_ks_average",
            "paper_scaled_t",
            "our_ks_average",
            "our_scaled_t",
        ],
        rows=rows,
        notes=(
            f"Spearman rank correlation between K-S averages and our metric: "
            f"{correlation:.3f} (paper claims 'same trend of comparisons'; "
            "its own table has one inversion, S2S3 vs S1S4)."
        ),
    )


register("table1", run_table1)
register("table2", run_table2)
