"""Regeneration of the paper's Figs. 5–10 (data series).

Each runner returns an :class:`~repro.evaluation.harness.ExperimentResult`
whose rows are the plotted points/bars of the corresponding figure:

* Fig. 5 — model-estimation attack under collusion (2/4/10/20/50
  pooled samples): direction errors stay large and non-decreasing.
* Fig. 6 — decision-function retrieval with ``r_a`` disabled: exact
  recovery from n+1 queries.
* Fig. 7 — linear classification accuracy, original vs privacy-
  preserving (bars must match).
* Fig. 8 — nonlinear (polynomial kernel) accuracy, same comparison.
* Fig. 9 — classification time vs data size, 4 series.
* Fig. 10 — similarity-evaluation time vs hyperplane dimension.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.baselines import classify_plain, similarity_plain
from repro.core.classification import (
    classify_linear_batch,
    classify_nonlinear_batch,
    predicted_labels,
)
from repro.core.ompe import OMPEConfig
from repro.core.privacy import DistanceRetrievalAttack, ModelEstimationAttack
from repro.core.similarity import MetricParams, evaluate_similarity_private
from repro.evaluation.harness import ExperimentResult, register
from repro.evaluation.tables import train_table1_models
from repro.ml.datasets import a_family_names, two_gaussians
from repro.ml.datasets.registry import get_spec
from repro.ml.svm import accuracy, train_svm
from repro.ml.svm.model import make_linear_model
from repro.utils.rng import ReproRandom

#: Datasets whose bars appear in Figs. 7 and 8 (the paper's selections).
FIG7_DATASETS = (
    "splice",
    "madelon",
    "diabetes",
    "german.numer",
    "australian",
    "cod-rna",
    "ionosphere",
    "breast-cancer",
)
FIG8_DATASETS = (
    "cod-rna",
    "splice",
    "diabetes",
    "australian",
    "ionosphere",
    "german.numer",
    "breast-cancer",
    "madelon",
)


def run_fig5(
    seed: int = 2016,
    counts: Sequence[int] = (2, 4, 10, 20, 50),
    train_size: int = 1000,
    through_protocol: bool = False,
) -> ExperimentResult:
    """Fig. 5: estimation from amplified results keeps rambling."""
    data = two_gaussians(
        "fig5", dimension=2, train_size=train_size, test_size=10, seed=seed
    )
    model = train_svm(data.X_train, data.y_train, kernel="linear", C=10.0)
    true_weights = model.weight_vector()
    attack = ModelEstimationAttack(model)
    rows: List[dict] = []
    for index, estimate in enumerate(
        attack.sweep(counts, seed=seed, through_protocol=through_protocol)
    ):
        rows.append(
            {
                "samples": estimate.sample_count,
                "estimated_w1": estimate.weights[0],
                "estimated_w2": estimate.weights[1],
                "estimated_bias": estimate.bias,
                "direction_error_deg": estimate.direction_error_degrees(true_weights),
            }
        )
    return ExperimentResult(
        experiment_id="fig5",
        title="Model Estimation under collusion (paper Fig. 5)",
        columns=[
            "samples",
            "estimated_w1",
            "estimated_w2",
            "estimated_bias",
            "direction_error_deg",
        ],
        rows=rows,
        notes=(
            "Estimates stay 'rambling': errors do not shrink as colluders "
            "pool more amplified results."
        ),
    )


def run_fig6(seed: int = 2016, through_protocol: bool = True) -> ExperimentResult:
    """Fig. 6: exact retrieval when the amplifier is (wrongly) disabled."""
    data = two_gaussians("fig6", dimension=2, train_size=200, test_size=10, seed=seed)
    model = train_svm(data.X_train, data.y_train, kernel="linear", C=10.0)
    true_weights = model.weight_vector()
    attack = DistanceRetrievalAttack(model)
    rng = ReproRandom(seed)
    rows: List[dict] = []
    for query_count in (3, 4, 6):
        queries = np.asarray(
            [
                [rng.uniform(-1.0, 1.0) for _ in range(2)]
                for _ in range(query_count)
            ]
        )
        estimate = attack.run(queries, seed=seed, through_protocol=through_protocol)
        rows.append(
            {
                "queries": query_count,
                "recovered_w1": estimate.weights[0],
                "recovered_w2": estimate.weights[1],
                "recovered_bias": estimate.bias,
                "direction_error_deg": estimate.direction_error_degrees(true_weights),
            }
        )
    return ExperimentResult(
        experiment_id="fig6",
        title="Decision Function Retrieval without r_a (paper Fig. 6)",
        columns=[
            "queries",
            "recovered_w1",
            "recovered_w2",
            "recovered_bias",
            "direction_error_deg",
        ],
        rows=rows,
        notes=(
            "n+1 = 3 unamplified results suffice for exact recovery — the "
            "attack the amplifier r_a exists to block."
        ),
    )


def _accuracy_figure(
    experiment_id: str,
    title: str,
    datasets: Sequence[str],
    nonlinear: bool,
    seed: int,
    query_limit: int,
    config: Optional[OMPEConfig],
) -> ExperimentResult:
    config = config or OMPEConfig()
    rows: List[dict] = []
    for name in datasets:
        data, linear_model, polynomial_model = train_table1_models(name, seed)
        model = polynomial_model if nonlinear else linear_model
        limit = min(query_limit, data.test_size)
        X = data.X_test[:limit]
        y = data.y_test[:limit]
        original = accuracy(model.predict(X), y)
        if nonlinear:
            outcomes = classify_nonlinear_batch(
                model, X, config=config, seed=seed, method="direct"
            )
        else:
            outcomes = classify_linear_batch(model, X, config=config, seed=seed)
        private = accuracy(predicted_labels(outcomes), y)
        rows.append(
            {
                "dataset": name,
                "original_accuracy": original,
                "private_accuracy": private,
                "queries": limit,
            }
        )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=["dataset", "original_accuracy", "private_accuracy", "queries"],
        rows=rows,
        notes=(
            "The protocol is exact (Fraction arithmetic): private bars equal "
            "original bars, the paper's headline functionality claim."
        ),
    )


def run_fig7(
    seed: int = 2016,
    datasets: Sequence[str] = FIG7_DATASETS,
    query_limit: int = 40,
    config: Optional[OMPEConfig] = None,
) -> ExperimentResult:
    """Fig. 7: linear accuracy, original vs privacy-preserving."""
    return _accuracy_figure(
        "fig7",
        "Accuracy of Linear Data Classification (paper Fig. 7)",
        datasets,
        nonlinear=False,
        seed=seed,
        query_limit=query_limit,
        config=config,
    )


def run_fig8(
    seed: int = 2016,
    datasets: Sequence[str] = FIG8_DATASETS,
    query_limit: int = 25,
    config: Optional[OMPEConfig] = None,
) -> ExperimentResult:
    """Fig. 8: nonlinear accuracy, original vs privacy-preserving."""
    return _accuracy_figure(
        "fig8",
        "Accuracy of Nonlinear Data Classification (paper Fig. 8)",
        datasets,
        nonlinear=True,
        seed=seed,
        query_limit=query_limit,
        config=config,
    )


def run_fig9(
    seed: int = 2016,
    datasets: Optional[Sequence[str]] = None,
    queries_per_100_rows: float = 0.25,
    max_queries: int = 100,
    config: Optional[OMPEConfig] = None,
) -> ExperimentResult:
    """Fig. 9: classification time vs data size (a1a–a9a sweep).

    Query counts scale with the paper's test sizes (1605..32561 rows),
    so the x-axis grows like the paper's; the four series are
    linear/nonlinear × original/privacy-preserving.
    """
    config = config or OMPEConfig()
    names = list(datasets) if datasets is not None else a_family_names()
    rows: List[dict] = []
    for name in names:
        spec = get_spec(name)
        data, linear_model, polynomial_model = train_table1_models(name, seed)
        queries = int(
            min(max_queries, max(4, spec.paper_test_size / 100 * queries_per_100_rows))
        )
        # Tile the analog test set up to the query count.
        repeats = int(np.ceil(queries / data.test_size))
        X = np.tile(data.X_test, (repeats, 1))[:queries]
        data_size_kb = queries * data.dimension * 8 / 1024.0

        start = time.perf_counter()
        classify_plain(linear_model, X)
        linear_original_s = time.perf_counter() - start

        start = time.perf_counter()
        classify_plain(polynomial_model, X)
        nonlinear_original_s = time.perf_counter() - start

        start = time.perf_counter()
        classify_linear_batch(linear_model, X, config=config, seed=seed)
        linear_private_s = time.perf_counter() - start

        start = time.perf_counter()
        classify_nonlinear_batch(
            polynomial_model, X, config=config, seed=seed, method="direct"
        )
        nonlinear_private_s = time.perf_counter() - start

        rows.append(
            {
                "dataset": name,
                "queries": queries,
                "data_size_kb": data_size_kb,
                "linear_original_ms": 1e3 * linear_original_s,
                "nonlinear_original_ms": 1e3 * nonlinear_original_s,
                "linear_private_ms": 1e3 * linear_private_s,
                "nonlinear_private_ms": 1e3 * nonlinear_private_s,
            }
        )
    return ExperimentResult(
        experiment_id="fig9",
        title="Computational Cost Comparison of Classification (paper Fig. 9)",
        columns=[
            "dataset",
            "queries",
            "data_size_kb",
            "linear_original_ms",
            "nonlinear_original_ms",
            "linear_private_ms",
            "nonlinear_private_ms",
        ],
        rows=rows,
        notes=(
            "Shape claims: all series grow ~linearly in data size; the "
            "privacy-preserving schemes cost a constant factor more (the "
            "paper reports about 4x on its C++ testbed)."
        ),
    )


def run_fig10(
    seed: int = 2016,
    dimensions: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    config: Optional[OMPEConfig] = None,
    params: Optional[MetricParams] = None,
) -> ExperimentResult:
    """Fig. 10: similarity-evaluation time vs hyperplane dimension."""
    config = config or OMPEConfig()
    params = params or MetricParams()
    rng = ReproRandom(seed)
    rows: List[dict] = []
    for dimension in dimensions:
        draw = rng.fork("dim", dimension)
        weights_a = [draw.uniform(0.2, 1.0) for _ in range(dimension)]
        weights_b = [draw.uniform(0.2, 1.0) for _ in range(dimension)]
        model_a = make_linear_model(weights_a, draw.uniform(-0.2, 0.2))
        model_b = make_linear_model(weights_b, draw.uniform(-0.2, 0.2))

        start = time.perf_counter()
        plain_outcome = similarity_plain(model_a, model_b, params)
        ordinary_ms = 1e3 * (time.perf_counter() - start)

        start = time.perf_counter()
        private_outcome = evaluate_similarity_private(
            model_a, model_b, params=params, config=config, seed=seed + dimension
        )
        private_ms = 1e3 * (time.perf_counter() - start)

        rows.append(
            {
                "dimension": dimension,
                "ordinary_ms": ordinary_ms,
                "private_ms": private_ms,
                "t_plain": plain_outcome.result.t,
                "t_private": private_outcome.t,
                "private_bytes": private_outcome.total_bytes,
            }
        )
    return ExperimentResult(
        experiment_id="fig10",
        title="Computational Cost Comparison of Similarity Evaluation (paper Fig. 10)",
        columns=[
            "dimension",
            "ordinary_ms",
            "private_ms",
            "t_plain",
            "t_private",
            "private_bytes",
        ],
        rows=rows,
        notes=(
            "Shape claims: the privacy-preserving evaluation costs more at "
            "every dimension and its gap grows with dimension (each extra "
            "dimension adds hiding polynomials, not just one multiplication)."
        ),
    )


register("fig5", run_fig5)
register("fig6", run_fig6)
register("fig7", run_fig7)
register("fig8", run_fig8)
register("fig9", run_fig9)
register("fig10", run_fig10)
