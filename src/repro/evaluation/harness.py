"""Experiment registry and shared result structures.

Every table and figure of the paper's evaluation section (Table I,
Table II, Figs. 5–10) has a runner in :mod:`repro.evaluation.tables` or
:mod:`repro.evaluation.figures`.  This module provides the common
result containers and the registry that maps experiment ids to runners
— the per-experiment index of DESIGN.md, as code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class ExperimentResult:
    """A regenerated table or figure.

    ``columns`` names the fields; ``rows`` holds one dict per data row
    (tables) or per series point (figures); ``notes`` records paper-vs-
    measured commentary for EXPERIMENTS.md.  ``metrics`` carries the
    :meth:`~repro.obs.MetricsRegistry.snapshot` captured while the
    experiment ran, when a live registry was installed (``None``
    otherwise).
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[dict]
    notes: str = ""
    metrics: Optional[Dict[str, dict]] = None

    def column(self, name: str) -> List:
        """Extract a column as a list."""
        if name not in self.columns:
            raise ValidationError(
                f"unknown column {name!r}; available: {list(self.columns)}"
            )
        return [row[name] for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned text table."""
        columns = list(self.columns)
        widths = {
            c: max(len(c), *(len(_fmt(row[c])) for row in self.rows)) if self.rows else len(c)
            for c in columns
        }
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(c.ljust(widths[c]) for c in columns))
        lines.append("  ".join("-" * widths[c] for c in columns))
        for row in self.rows:
            lines.append("  ".join(_fmt(row[c]).ljust(widths[c]) for c in columns))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


#: Experiment registry: id -> (title, runner factory).  Populated by
#: tables.py / figures.py at import time via register().
_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str, runner: Callable[..., ExperimentResult]) -> None:
    """Register a runner under an experiment id (e.g. ``table1``)."""
    if experiment_id in _REGISTRY:
        raise ValidationError(f"experiment {experiment_id!r} already registered")
    _REGISTRY[experiment_id] = runner


def available_experiments() -> List[str]:
    """All registered experiment ids."""
    return sorted(_REGISTRY)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id.

    The run executes inside an ``experiment`` span, and when a live
    metrics registry is installed (see :func:`repro.obs.observed`) the
    registry snapshot is attached to the result's ``metrics`` field —
    so regenerating a table also yields its full protocol telemetry.
    """
    try:
        runner = _REGISTRY[experiment_id]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {available_experiments()}"
        ) from None
    with obs.get_tracer().span(
        "experiment", phase="experiment", experiment=experiment_id
    ):
        result = runner(**kwargs)
    metrics = obs.get_metrics()
    if metrics.enabled and result.metrics is None:
        result = replace(result, metrics=metrics.snapshot())
    return result


def write_metrics_snapshot(result: ExperimentResult, path: str) -> bool:
    """Write a result's attached metrics snapshot as JSON.

    Returns ``False`` (writing nothing) when the experiment ran without
    a live registry.
    """
    if result.metrics is None:
        return False
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return True
