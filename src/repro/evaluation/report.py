"""Report generation: run every experiment and render the results.

``python -m repro.evaluation.report`` regenerates all tables/figures
and prints them; :func:`write_experiments_markdown` produces the
paper-vs-measured record used to refresh EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.evaluation import extensions, figures, tables  # noqa: F401 (registry side effects)
from repro.evaluation.harness import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)


def run_all(
    experiment_ids: Optional[Sequence[str]] = None, **kwargs
) -> Dict[str, ExperimentResult]:
    """Run all (or the selected) experiments, returning results by id."""
    ids = list(experiment_ids) if experiment_ids is not None else available_experiments()
    return {experiment_id: run_experiment(experiment_id, **kwargs) for experiment_id in ids}


def render_text(results: Dict[str, ExperimentResult]) -> str:
    """Render all results as plain text."""
    return "\n\n".join(results[key].to_text() for key in sorted(results))


def render_markdown(result: ExperimentResult) -> str:
    """Render one experiment as a GitHub-flavored markdown table."""
    columns = list(result.columns)
    lines = [f"### {result.experiment_id} — {result.title}", ""]
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in result.rows:
        rendered = []
        for column in columns:
            value = row[column]
            rendered.append(f"{value:.4g}" if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(rendered) + " |")
    if result.notes:
        lines.extend(["", f"*{result.notes}*"])
    return "\n".join(lines)


def write_experiments_markdown(
    path: str, results: Optional[Dict[str, ExperimentResult]] = None
) -> None:
    """Write a paper-vs-measured markdown report to ``path``."""
    results = results or run_all()
    sections = [render_markdown(results[key]) for key in sorted(results)]
    body = "# Regenerated evaluation results\n\n" + "\n\n".join(sections) + "\n"
    Path(path).write_text(body, encoding="utf-8")


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print everything (``--plots`` adds charts)."""
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    results = run_all()
    print(render_text(results))
    if "--plots" in argv:
        from repro.evaluation.plotting import render_experiment

        for key in sorted(results):
            chart = render_experiment(results[key])
            if chart:
                print()
                print(chart)


if __name__ == "__main__":
    main()
