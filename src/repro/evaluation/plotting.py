"""Terminal rendering of the regenerated figures (no plotting deps).

The paper's figures are line/bar charts; this module renders their
regenerated data as Unicode charts so
``python -m repro.evaluation.report --plots`` shows the shapes directly
in a terminal, matplotlib-free.  Pure functions over
:class:`~repro.evaluation.harness.ExperimentResult` columns.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.exceptions import ValidationError

#: Glyph ramp for bar charts.
_BLOCKS = "▏▎▍▌▋▊▉█"


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
    value_format: str = "{:.3g}",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValidationError("labels and values must pair up")
    if not labels:
        raise ValidationError("nothing to plot")
    if width < 4:
        raise ValidationError(f"width must be at least 4, got {width}")
    peak = max(values)
    if peak <= 0:
        raise ValidationError("bar chart needs at least one positive value")
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        fraction = max(0.0, value / peak)
        cells = fraction * width
        full = int(cells)
        remainder = cells - full
        bar = "█" * full
        if remainder > 1e-9 and full < width:
            bar += _BLOCKS[min(7, int(remainder * 8))]
        rendered_value = value_format.format(value)
        lines.append(f"{str(label).rjust(label_width)} | {bar} {rendered_value}")
    return "\n".join(lines)


def render_grouped_bars(
    labels: Sequence[str],
    series: Sequence[Sequence[float]],
    series_names: Sequence[str],
    width: int = 40,
    title: str = "",
) -> str:
    """Grouped bars (e.g. Fig. 7's original-vs-private pairs)."""
    if len(series) != len(series_names):
        raise ValidationError("series and series_names must pair up")
    if not series:
        raise ValidationError("nothing to plot")
    for row in series:
        if len(row) != len(labels):
            raise ValidationError("every series must cover every label")
    peak = max(max(row) for row in series)
    if peak <= 0:
        raise ValidationError("bar chart needs at least one positive value")
    label_width = max(
        max(len(str(label)) for label in labels),
        max(len(str(name)) for name in series_names) + 2,
    )
    lines = [title] if title else []
    for index, label in enumerate(labels):
        lines.append(str(label))
        for name, row in zip(series_names, series):
            fraction = max(0.0, row[index] / peak)
            bar = "█" * int(fraction * width)
            lines.append(
                f"{('  ' + str(name)).rjust(label_width)} | {bar} {row[index]:.3g}"
            )
    return "\n".join(lines)


def render_line_chart(
    xs: Sequence[float],
    series: Sequence[Sequence[float]],
    series_names: Sequence[str],
    height: int = 12,
    width: int = 60,
    title: str = "",
    log_y: bool = False,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series gets a distinct marker; ``log_y`` handles the orders-of-
    magnitude spreads of the cost figures (Figs. 9/10).
    """
    if len(series) != len(series_names):
        raise ValidationError("series and series_names must pair up")
    if not series or not xs:
        raise ValidationError("nothing to plot")
    for row in series:
        if len(row) != len(xs):
            raise ValidationError("every series must cover every x")
    if height < 3 or width < 8:
        raise ValidationError("chart too small")

    def transform(value: float) -> float:
        if not log_y:
            return value
        if value <= 0:
            raise ValidationError("log_y requires positive values")
        return math.log10(value)

    flattened = [transform(v) for row in series for v in row]
    y_low, y_high = min(flattened), max(flattened)
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = min(xs), max(xs)
    if x_high == x_low:
        x_high = x_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for series_index, row in enumerate(series):
        marker = markers[series_index % len(markers)]
        for x, value in zip(xs, row):
            column = int((x - x_low) / (x_high - x_low) * (width - 1))
            level = (transform(value) - y_low) / (y_high - y_low)
            line = height - 1 - int(level * (height - 1))
            grid[line][column] = marker
    lines = [title] if title else []
    top = f"10^{y_high:.2g}" if log_y else f"{y_high:.3g}"
    bottom = f"10^{y_low:.2g}" if log_y else f"{y_low:.3g}"
    lines.append(f"y: {bottom} .. {top}" + ("  (log scale)" if log_y else ""))
    for row_cells in grid:
        lines.append("|" + "".join(row_cells))
    lines.append("+" + "-" * width)
    lines.append(f" x: {x_low:.3g} .. {x_high:.3g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series_names)
    )
    lines.append(f" {legend}")
    return "\n".join(lines)


def render_experiment(result, width: int = 50) -> Optional[str]:
    """Chart an ExperimentResult when its shape has a natural rendering."""
    if result.experiment_id in ("fig7", "fig8"):
        return render_grouped_bars(
            result.column("dataset"),
            [result.column("original_accuracy"), result.column("private_accuracy")],
            ["original", "private"],
            width=width,
            title=result.title,
        )
    if result.experiment_id == "fig9":
        return render_line_chart(
            result.column("data_size_kb"),
            [
                result.column("linear_original_ms"),
                result.column("nonlinear_original_ms"),
                result.column("linear_private_ms"),
                result.column("nonlinear_private_ms"),
            ],
            ["lin-orig", "nl-orig", "lin-priv", "nl-priv"],
            title=result.title,
            log_y=True,
        )
    if result.experiment_id == "fig10":
        return render_line_chart(
            result.column("dimension"),
            [result.column("ordinary_ms"), result.column("private_ms")],
            ["ordinary", "private"],
            title=result.title,
            log_y=True,
        )
    if result.experiment_id == "fig5":
        return render_bar_chart(
            [str(s) for s in result.column("samples")],
            result.column("direction_error_deg"),
            width=width,
            title=result.title + " — direction error (deg) vs pooled samples",
        )
    if result.experiment_id == "table2":
        return render_grouped_bars(
            result.column("pair"),
            [result.column("our_ks_average"),
             [v / 40.0 for v in result.column("our_scaled_t")]],
            ["K-S avg", "T/40"],
            width=width,
            title=result.title,
        )
    return None
