"""Extension experiments beyond the paper's own tables and figures.

The paper evaluates functionality and cost but never plots the
security/cost trade-off its parameters control.  These clearly-labeled
*extension* experiments fill that gap:

* ``ext_security`` — sweep the security degree ``q``: cover-hiding
  entropy (from :mod:`repro.core.privacy.security`), predicted bytes
  (from :mod:`repro.evaluation.costmodel`), and measured bytes/time
  from live protocol runs.
* ``ext_expansion`` — sweep the cover expansion ``k`` (the paper's
  secret random ``m``-multiplier): entropy grows combinatorially while
  cost grows only linearly, the protocol's cheapest security knob.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.core.ompe import OMPEConfig, OMPEFunction, execute_ompe
from repro.core.privacy.security import estimate_security
from repro.evaluation.costmodel import predict_classification_bytes
from repro.evaluation.harness import ExperimentResult, register
from repro.math.groups import fast_group
from repro.math.multivariate import MultivariatePolynomial
from repro.utils.rng import ReproRandom


def _sample_function(dimension: int, seed: int):
    rng = ReproRandom(seed)
    polynomial = MultivariatePolynomial.affine(
        [rng.fraction(-3, 3) for _ in range(dimension)], rng.fraction(-1, 1)
    )
    alpha = tuple(rng.fraction(-1, 1) for _ in range(dimension))
    return OMPEFunction.from_polynomial(polynomial), alpha


def run_ext_security(
    seed: int = 2016,
    security_degrees: Sequence[int] = (1, 2, 3, 4, 6),
    dimension: int = 4,
    cover_expansion: int = 3,
) -> ExperimentResult:
    """Security degree q vs entropy, predicted and measured cost."""
    function, alpha = _sample_function(dimension, seed)
    rows: List[dict] = []
    for q in security_degrees:
        config = OMPEConfig(
            security_degree=q, cover_expansion=cover_expansion, group=fast_group()
        )
        estimate = estimate_security(config, 1)
        predicted = predict_classification_bytes(config, dimension, 1).total_bytes
        start = time.perf_counter()
        outcome = execute_ompe(function, alpha, config=config, seed=seed + q)
        elapsed_ms = 1e3 * (time.perf_counter() - start)
        rows.append(
            {
                "security_degree": q,
                "covers_m": estimate.cover_count,
                "pairs_M": estimate.pair_count,
                "entropy_bits": estimate.cover_entropy_bits,
                "predicted_bytes": predicted,
                "measured_bytes": outcome.report.total_bytes,
                "time_ms": elapsed_ms,
            }
        )
    return ExperimentResult(
        experiment_id="ext_security",
        title="EXTENSION: security degree vs cover entropy and cost",
        columns=[
            "security_degree",
            "covers_m",
            "pairs_M",
            "entropy_bits",
            "predicted_bytes",
            "measured_bytes",
            "time_ms",
        ],
        rows=rows,
        notes=(
            "Not in the paper: quantifies the q knob. Entropy and bytes "
            "both grow superlinearly in q; bytes track the analytic model."
        ),
    )


def run_ext_expansion(
    seed: int = 2016,
    expansions: Sequence[int] = (2, 3, 4, 6, 8),
    dimension: int = 4,
    security_degree: int = 2,
) -> ExperimentResult:
    """Cover expansion k vs entropy and cost (the cheap security knob)."""
    function, alpha = _sample_function(dimension, seed + 1)
    rows: List[dict] = []
    for k in expansions:
        config = OMPEConfig(
            security_degree=security_degree, cover_expansion=k, group=fast_group()
        )
        estimate = estimate_security(config, 1)
        outcome = execute_ompe(function, alpha, config=config, seed=seed + k)
        rows.append(
            {
                "cover_expansion": k,
                "pairs_M": estimate.pair_count,
                "entropy_bits": estimate.cover_entropy_bits,
                "measured_bytes": outcome.report.total_bytes,
                "entropy_per_kb": estimate.cover_entropy_bits
                / (outcome.report.total_bytes / 1024),
            }
        )
    return ExperimentResult(
        experiment_id="ext_expansion",
        title="EXTENSION: cover expansion vs entropy and cost",
        columns=[
            "cover_expansion",
            "pairs_M",
            "entropy_bits",
            "measured_bytes",
            "entropy_per_kb",
        ],
        rows=rows,
        notes=(
            "Not in the paper: entropy log2 C(mk, m) and bytes both grow "
            "with k; entropy-per-kilobyte stays within ~30% across the "
            "sweep, so k is a near-constant-rate security knob (slowly "
            "diminishing returns at large k)."
        ),
    )


register("ext_security", run_ext_security)
register("ext_expansion", run_ext_expansion)
