"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at protocol boundaries.  The
sub-hierarchy mirrors the package layout: math errors, cryptographic
errors, protocol errors, and data/model errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong type, range, or shape)."""


class MathError(ReproError):
    """Base class for mathematical failures."""


class InterpolationError(MathError):
    """Interpolation is impossible (duplicate nodes, too few points)."""


class RootFindingError(MathError):
    """A root finder failed to bracket or converge on a root."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyGenerationError(CryptoError):
    """Key material could not be generated with the given parameters."""


class DecryptionError(CryptoError):
    """A ciphertext failed to decrypt or authenticate."""


class ProtocolError(ReproError):
    """Base class for interactive-protocol failures."""


class ProtocolAbort(ProtocolError):
    """A party aborted the protocol (malformed or out-of-order message)."""


class ObliviousTransferError(ProtocolError):
    """An oblivious-transfer sub-protocol failed."""


class OMPEError(ProtocolError):
    """The oblivious multivariate polynomial evaluation failed."""


class EngineError(ProtocolError):
    """The multi-core protocol engine failed (dead worker, bad job)."""


class EngineTimeout(EngineError):
    """A job exceeded the engine's per-job timeout budget."""


class BatchItemError(ProtocolError):
    """One item of a batched fan-out failed.

    Carries the item's position in the submitted batch (``index``) so a
    caller collecting per-item results can attribute the failure without
    losing its neighbours' outcomes.  The underlying failure is chained
    as ``__cause__`` and summarized in the message.
    """

    def __init__(self, index: int, message: str) -> None:
        super().__init__(f"batch item {index}: {message}")
        self.index = index


class LinkageError(ReproError):
    """The bulk linkage pipeline failed (bad spec, failed chunk)."""


class ResultStoreError(LinkageError):
    """The linkage result store refused an operation (e.g. a resume
    against a store written by a different job spec)."""


class ResultStoreCorruption(ResultStoreError):
    """A chunk file in the result store is corrupt or truncated.

    Raised only when corruption is *unrecoverable*; a resume quarantines
    the damaged file, records an instance of this error in its scan
    report, and recomputes the chunk instead of propagating.
    """

    def __init__(self, chunk_id: str, message: str) -> None:
        super().__init__(f"chunk {chunk_id}: {message}")
        self.chunk_id = chunk_id


class TrainingError(ReproError):
    """SVM training did not converge or received unusable data."""


class DatasetError(ReproError):
    """A dataset could not be generated, parsed, or validated."""


class SimilarityError(ReproError):
    """The similarity-evaluation pipeline failed (e.g. no boundary points)."""
