"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at protocol boundaries.  The
sub-hierarchy mirrors the package layout: math errors, cryptographic
errors, protocol errors, and data/model errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong type, range, or shape)."""


class MathError(ReproError):
    """Base class for mathematical failures."""


class InterpolationError(MathError):
    """Interpolation is impossible (duplicate nodes, too few points)."""


class RootFindingError(MathError):
    """A root finder failed to bracket or converge on a root."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyGenerationError(CryptoError):
    """Key material could not be generated with the given parameters."""


class DecryptionError(CryptoError):
    """A ciphertext failed to decrypt or authenticate."""


class ProtocolError(ReproError):
    """Base class for interactive-protocol failures."""


class ProtocolAbort(ProtocolError):
    """A party aborted the protocol (malformed or out-of-order message)."""


class ObliviousTransferError(ProtocolError):
    """An oblivious-transfer sub-protocol failed."""


class OMPEError(ProtocolError):
    """The oblivious multivariate polynomial evaluation failed."""


class EngineError(ProtocolError):
    """The multi-core protocol engine failed (dead worker, bad job)."""


class EngineTimeout(EngineError):
    """A job exceeded the engine's per-job timeout budget."""


class TrainingError(ReproError):
    """SVM training did not converge or received unusable data."""


class DatasetError(ReproError):
    """A dataset could not be generated, parsed, or validated."""


class SimilarityError(ReproError):
    """The similarity-evaluation pipeline failed (e.g. no boundary points)."""
