"""Tests for repro.utils.rng."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.utils.rng import ReproRandom, derive_seed, fresh_rng, spawn_streams


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_label_sensitivity(self):
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)

    def test_seed_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_label_order_matters(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    @given(st.integers(), st.text(max_size=20))
    @settings(max_examples=50)
    def test_output_is_64_bit(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**64


class TestReproRandom:
    def test_same_seed_same_stream(self):
        a = ReproRandom(5)
        b = ReproRandom(5)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_unseeded_records_its_seed(self):
        a = ReproRandom()
        b = ReproRandom(a.seed)
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_fork_independence(self):
        root = ReproRandom(1)
        child_a = root.fork("a")
        child_b = root.fork("b")
        assert child_a.seed != child_b.seed

    def test_fork_reproducible(self):
        assert ReproRandom(1).fork("x").seed == ReproRandom(1).fork("x").seed

    def test_randbits_range(self):
        rng = ReproRandom(2)
        for _ in range(100):
            assert 0 <= rng.randbits(16) < 2**16

    def test_randbits_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            ReproRandom(1).randbits(0)

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValidationError):
            ReproRandom(1).randint(5, 4)

    def test_randrange_coprime(self):
        rng = ReproRandom(3)
        import math

        for _ in range(50):
            value = rng.randrange_coprime(30)
            assert 1 <= value < 30
            assert math.gcd(value, 30) == 1

    def test_randrange_coprime_rejects_small_modulus(self):
        with pytest.raises(ValidationError):
            ReproRandom(1).randrange_coprime(1)

    def test_fraction_in_range(self):
        rng = ReproRandom(4)
        for _ in range(100):
            value = rng.fraction(-3, 3)
            assert isinstance(value, Fraction)
            assert -3 <= value <= 3

    def test_fraction_rejects_empty_interval(self):
        with pytest.raises(ValidationError):
            ReproRandom(1).fraction(2, 2)

    def test_nonzero_fraction(self):
        rng = ReproRandom(5)
        assert all(rng.nonzero_fraction(-1, 1) != 0 for _ in range(100))

    def test_positive_fraction(self):
        rng = ReproRandom(6)
        assert all(rng.positive_fraction(0, 5) > 0 for _ in range(100))

    def test_positive_fraction_rejects_nonpositive_high(self):
        with pytest.raises(ValidationError):
            ReproRandom(1).positive_fraction(0, 0)

    def test_distinct_fractions_are_distinct(self):
        values = ReproRandom(7).distinct_fractions(50, -2, 2)
        assert len(set(values)) == 50

    def test_distinct_fractions_exclude_zero(self):
        values = ReproRandom(8).distinct_fractions(50, -1, 1)
        assert 0 not in values

    def test_distinct_fractions_impossible_count(self):
        with pytest.raises(ValidationError):
            ReproRandom(1).distinct_fractions(100, 0, 1, grid=10)

    def test_sample_indices_sorted_distinct(self):
        indices = ReproRandom(9).sample_indices(100, 20)
        assert indices == sorted(indices)
        assert len(set(indices)) == 20

    def test_sample_indices_too_many(self):
        with pytest.raises(ValidationError):
            ReproRandom(1).sample_indices(5, 6)

    def test_choice_empty(self):
        with pytest.raises(ValidationError):
            ReproRandom(1).choice([])

    def test_choice_member(self):
        items = ["a", "b", "c"]
        assert ReproRandom(1).choice(items) in items

    def test_bytes_length(self):
        rng = ReproRandom(10)
        assert len(rng.bytes(16)) == 16
        assert rng.bytes(0) == b""

    def test_bytes_negative(self):
        with pytest.raises(ValidationError):
            ReproRandom(1).bytes(-1)

    def test_shuffle_is_permutation(self):
        items = list(range(20))
        shuffled = list(items)
        ReproRandom(11).shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_gauss_runs(self):
        rng = ReproRandom(12)
        samples = [rng.gauss() for _ in range(200)]
        mean = sum(samples) / len(samples)
        assert abs(mean) < 0.3


class TestHelpers:
    def test_fresh_rng_with_labels(self):
        assert fresh_rng(1, "x").seed == ReproRandom(1).fork("x").seed

    def test_spawn_streams(self):
        streams = spawn_streams(1, ["a", "b"])
        assert set(streams) == {"a", "b"}
        assert streams["a"].seed != streams["b"].seed
