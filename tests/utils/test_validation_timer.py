"""Tests for validation helpers and timing utilities."""

import time

import pytest

from repro.exceptions import ValidationError
from repro.utils.timer import Stopwatch, TimingRecorder
from repro.utils.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_probability,
    ensure_same_length,
    ensure_type,
    ensure_vector,
)


class TestValidation:
    def test_ensure_type_pass(self):
        assert ensure_type(5, int, "x") == 5

    def test_ensure_type_fail(self):
        with pytest.raises(ValidationError, match="x must be"):
            ensure_type("5", int, "x")

    def test_ensure_positive_pass(self):
        assert ensure_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_ensure_positive_fail(self, bad):
        with pytest.raises(ValidationError):
            ensure_positive(bad, "x")

    def test_ensure_positive_non_numeric(self):
        with pytest.raises(ValidationError):
            ensure_positive("x", "x")

    def test_ensure_non_negative(self):
        assert ensure_non_negative(0, "x") == 0
        with pytest.raises(ValidationError):
            ensure_non_negative(-0.001, "x")

    def test_ensure_in_range(self):
        assert ensure_in_range(5, 0, 10, "x") == 5
        with pytest.raises(ValidationError):
            ensure_in_range(11, 0, 10, "x")

    def test_ensure_probability(self):
        assert ensure_probability(0.5, "p") == 0.5
        with pytest.raises(ValidationError):
            ensure_probability(1.5, "p")

    def test_ensure_vector_pass(self):
        assert ensure_vector([1, 2.5], "v") == (1, 2.5)

    def test_ensure_vector_length(self):
        assert ensure_vector([1, 2], "v", length=2) == (1, 2)
        with pytest.raises(ValidationError):
            ensure_vector([1, 2], "v", length=3)

    def test_ensure_vector_empty(self):
        with pytest.raises(ValidationError):
            ensure_vector([], "v")

    def test_ensure_vector_non_numeric(self):
        with pytest.raises(ValidationError):
            ensure_vector([1, "a"], "v")

    def test_ensure_vector_non_iterable(self):
        with pytest.raises(ValidationError):
            ensure_vector(5, "v")  # type: ignore[arg-type]

    def test_ensure_same_length(self):
        ensure_same_length([1], [2], "a/b")
        with pytest.raises(ValidationError):
            ensure_same_length([1], [2, 3], "a/b")


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.009
        assert watch.elapsed_ms >= 9.0


class TestTimingRecorder:
    def test_measure_and_total(self):
        recorder = TimingRecorder()
        with recorder.measure("phase"):
            time.sleep(0.005)
        assert recorder.total("phase") >= 0.004
        assert recorder.count("phase") == 1

    def test_add_and_mean(self):
        recorder = TimingRecorder()
        recorder.add("x", 1.0)
        recorder.add("x", 3.0)
        assert recorder.mean("x") == 2.0
        assert recorder.total("x") == 4.0

    def test_unknown_phase_total_is_zero(self):
        assert TimingRecorder().total("nope") == 0.0

    def test_unknown_phase_mean_raises(self):
        with pytest.raises(KeyError):
            TimingRecorder().mean("nope")

    def test_names_sorted(self):
        recorder = TimingRecorder()
        recorder.add("b", 1.0)
        recorder.add("a", 1.0)
        assert recorder.names() == ["a", "b"]

    def test_as_dict(self):
        recorder = TimingRecorder()
        recorder.add("a", 1.0)
        assert recorder.as_dict() == {"a": 1.0}

    def test_merge(self):
        first = TimingRecorder()
        second = TimingRecorder()
        first.add("a", 1.0)
        second.add("a", 2.0)
        second.add("b", 3.0)
        first.merge(second)
        assert first.total("a") == 3.0
        assert first.total("b") == 3.0

    def test_measure_records_on_exception(self):
        recorder = TimingRecorder()
        with pytest.raises(RuntimeError):
            with recorder.measure("x"):
                raise RuntimeError("boom")
        assert recorder.count("x") == 1
