"""Tests for the canonical protocol-value and message codecs."""

import dataclasses
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.utils.serialization import (
    MAX_DECODE_DEPTH,
    decode_message,
    decode_payload,
    decode_value,
    encode_message,
    encode_payload,
    encode_value,
    encoded_payload_size,
    encoded_size,
)


scalars = st.one_of(
    st.integers(min_value=-(10**30), max_value=10**30),
    st.fractions(max_denominator=10**15),
    st.floats(allow_nan=False, allow_infinity=False),
)

# The full message-payload vocabulary, including group-element-sized
# integers (OT transports 2048-bit values as a matter of course).
payload_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**2100), max_value=2**2100),
    st.fractions(max_denominator=10**12),
    st.floats(allow_nan=False, allow_infinity=False),
    st.binary(max_size=64),
    st.text(max_size=32),
)

payloads = st.recursive(
    payload_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(st.text(max_size=8), st.integers()), children, max_size=4
        ),
    ),
    max_leaves=12,
)


class TestRoundTrip:
    @given(scalars)
    @settings(max_examples=200)
    def test_scalar_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    @given(st.lists(scalars, max_size=8).map(tuple))
    @settings(max_examples=100)
    def test_tuple_round_trip(self, values):
        assert decode_value(encode_value(values)) == values

    def test_nested_tuples(self):
        value = (1, (Fraction(1, 3), (2.5, -7)), ())
        assert decode_value(encode_value(value)) == value

    def test_zero(self):
        assert decode_value(encode_value(0)) == 0

    def test_negative_fraction(self):
        value = Fraction(-22, 7)
        assert decode_value(encode_value(value)) == value

    def test_huge_integer(self):
        value = -(2**4096) + 12345
        assert decode_value(encode_value(value)) == value

    def test_type_preserved(self):
        assert isinstance(decode_value(encode_value(Fraction(1, 2))), Fraction)
        assert isinstance(decode_value(encode_value(1)), int)
        assert isinstance(decode_value(encode_value(1.0)), float)


class TestRejections:
    def test_boolean_rejected(self):
        with pytest.raises(ValidationError):
            encode_value(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            encode_value("string")  # type: ignore[arg-type]

    def test_trailing_garbage_rejected(self):
        blob = encode_value(7) + b"\x00"
        with pytest.raises(ValidationError):
            decode_value(blob)

    def test_truncated_rejected(self):
        blob = encode_value(Fraction(355, 113))
        with pytest.raises(ValidationError):
            decode_value(blob[:-2])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            decode_value(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValidationError):
            decode_value(b"Zxyz")


class TestEncodedSize:
    def test_matches_encoding_length(self):
        value = (Fraction(1, 3), 12345, 2.0)
        assert encoded_size(value) == len(encode_value(value))

    def test_grows_with_magnitude(self):
        assert encoded_size(2**200) > encoded_size(2)


# -- message payload codec ----------------------------------------------------


class TestPayloadRoundTrip:
    @given(payloads)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_is_canonical(self, payload):
        """Decoding inverts encoding *and* re-encoding reproduces the
        exact bytes — so types (bool vs int, tuple vs list) survive."""
        blob = encode_payload(payload)
        decoded = decode_payload(blob)
        assert decoded == payload
        assert encode_payload(decoded) == blob

    @given(payloads)
    @settings(max_examples=200, deadline=None)
    def test_size_matches_encoding_length(self, payload):
        """The byte-accounting regression: the size estimator and the
        real encoder must agree exactly, for every payload — this is
        what makes in-memory and TCP byte counts identical."""
        assert encoded_payload_size(payload) == len(encode_payload(payload))

    def test_group_element_sized_integers(self):
        value = -(2**2048) + 987654321
        blob = encode_payload(value)
        assert decode_payload(blob) == value
        assert encoded_payload_size(value) == len(blob)

    def test_registered_dataclasses_round_trip(self, group, fast_config):
        from repro.core.similarity.metric import MetricParams
        from repro.core.similarity.policy import OutputPolicy

        for payload in (
            group,
            fast_config,
            MetricParams(),
            OutputPolicy(),
            OutputPolicy(mode="threshold", threshold=0.5),
            OutputPolicy(mode="top-k", k=5),
            OutputPolicy(mode="permuted"),
        ):
            blob = encode_payload(payload)
            decoded = decode_payload(blob)
            assert decoded == payload
            assert type(decoded) is type(payload)
            assert encoded_payload_size(payload) == len(blob)

    def test_unregistered_dataclass_rejected(self):
        @dataclasses.dataclass
        class Unregistered:
            x: int = 1

        with pytest.raises(ValidationError):
            encode_payload(Unregistered())
        with pytest.raises(ValidationError):
            encoded_payload_size(Unregistered())


class TestPayloadDecoderFuzz:
    """The decoder faces bytes from an untrusted TCP peer: every
    malformed input must raise ValidationError — never a bare
    struct.error, RecursionError, MemoryError, or a hang."""

    @given(st.binary(max_size=256))
    @settings(max_examples=300, deadline=None)
    def test_random_bytes_never_crash(self, blob):
        try:
            decode_payload(blob)
        except ValidationError:
            pass

    @given(payloads, st.data())
    @settings(max_examples=200, deadline=None)
    def test_truncation_always_detected(self, payload, data):
        blob = encode_payload(payload)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        with pytest.raises(ValidationError):
            decode_payload(blob[:cut])

    @given(payloads, st.data())
    @settings(max_examples=200, deadline=None)
    def test_bit_flips_never_crash(self, payload, data):
        blob = bytearray(encode_payload(payload))
        position = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[position] ^= 1 << bit
        try:
            decode_payload(bytes(blob))
        except ValidationError:
            pass  # either a clean rejection or a different valid value

    def test_hostile_container_count_no_allocation(self):
        import struct

        for tag in (b"T", b"L", b"M"):
            blob = tag + struct.pack(">I", 0xFFFFFFFF)
            with pytest.raises(ValidationError):
                decode_payload(blob)

    def test_hostile_varbytes_length_no_allocation(self):
        import struct

        for tag in (b"Y", b"S"):
            blob = tag + struct.pack(">I", 0xFFFFFFFF)
            with pytest.raises(ValidationError):
                decode_payload(blob)

    def test_nesting_depth_bounded(self):
        import struct

        blob = (b"L" + struct.pack(">I", 1)) * (MAX_DECODE_DEPTH + 2) + b"N"
        with pytest.raises(ValidationError, match="depth"):
            decode_payload(blob)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValidationError):
            decode_payload(encode_payload([1, 2]) + b"\x00")


class TestMessageCodec:
    @given(st.text(min_size=1, max_size=24), payloads)
    @settings(max_examples=150, deadline=None)
    def test_round_trip_with_exact_payload_size(self, msg_type, payload):
        blob = encode_message(msg_type, payload)
        decoded_type, decoded_payload, payload_bytes = decode_message(blob)
        assert decoded_type == msg_type
        assert decoded_payload == payload
        assert payload_bytes == encoded_payload_size(payload)
        assert payload_bytes == len(encode_payload(payload))

    def test_empty_type_rejected(self):
        with pytest.raises(ValidationError):
            encode_message("", 1)

    def test_wrong_version_rejected(self):
        blob = bytearray(encode_message("x", 1))
        blob[0] = 99
        with pytest.raises(ValidationError, match="version"):
            decode_message(bytes(blob))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValidationError):
            decode_message(encode_message("x", 1) + b"\x00")

    @given(st.binary(max_size=256))
    @settings(max_examples=300, deadline=None)
    def test_random_frames_never_crash(self, blob):
        try:
            decode_message(blob)
        except ValidationError:
            pass
