"""Tests for the canonical protocol-value codec."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.utils.serialization import decode_value, encode_value, encoded_size


scalars = st.one_of(
    st.integers(min_value=-(10**30), max_value=10**30),
    st.fractions(max_denominator=10**15),
    st.floats(allow_nan=False, allow_infinity=False),
)


class TestRoundTrip:
    @given(scalars)
    @settings(max_examples=200)
    def test_scalar_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    @given(st.lists(scalars, max_size=8).map(tuple))
    @settings(max_examples=100)
    def test_tuple_round_trip(self, values):
        assert decode_value(encode_value(values)) == values

    def test_nested_tuples(self):
        value = (1, (Fraction(1, 3), (2.5, -7)), ())
        assert decode_value(encode_value(value)) == value

    def test_zero(self):
        assert decode_value(encode_value(0)) == 0

    def test_negative_fraction(self):
        value = Fraction(-22, 7)
        assert decode_value(encode_value(value)) == value

    def test_huge_integer(self):
        value = -(2**4096) + 12345
        assert decode_value(encode_value(value)) == value

    def test_type_preserved(self):
        assert isinstance(decode_value(encode_value(Fraction(1, 2))), Fraction)
        assert isinstance(decode_value(encode_value(1)), int)
        assert isinstance(decode_value(encode_value(1.0)), float)


class TestRejections:
    def test_boolean_rejected(self):
        with pytest.raises(ValidationError):
            encode_value(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            encode_value("string")  # type: ignore[arg-type]

    def test_trailing_garbage_rejected(self):
        blob = encode_value(7) + b"\x00"
        with pytest.raises(ValidationError):
            decode_value(blob)

    def test_truncated_rejected(self):
        blob = encode_value(Fraction(355, 113))
        with pytest.raises(ValidationError):
            decode_value(blob[:-2])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            decode_value(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValidationError):
            decode_value(b"Zxyz")


class TestEncodedSize:
    def test_matches_encoding_length(self):
        value = (Fraction(1, 3), 12345, 2.0)
        assert encoded_size(value) == len(encode_value(value))

    def test_grows_with_magnitude(self):
        assert encoded_size(2**200) > encoded_size(2)
