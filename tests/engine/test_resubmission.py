"""Resubmission determinism and multi-model serving in the engine.

Regression suite for the retry path: a retried job must rerun from the
parent's *pristine* copy — same seed, same payload — so retries are
invisible in the results (bit-identical to a clean run), and a job
that exhausts its budget must say *which* job (and linkage chunk tag)
died.  Also pins the keyed-models serving and the ``sync()`` lifecycle
the bulk-linkage pipeline is built on.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.similarity import evaluate_similarity_private
from repro.engine import EnginePolicy, ProtocolEngine
from repro.exceptions import ValidationError
from repro.ml.svm.model import make_linear_model
from repro.obs.metrics import MetricsRegistry

SEED = 20160627


@pytest.fixture(scope="module")
def model():
    return make_linear_model([1.5, -2.0, 0.5], bias=0.25)


@pytest.fixture(scope="module")
def other_model():
    return make_linear_model([1.4, -1.8, 0.6], bias=0.2)


@pytest.fixture
def registry():
    previous = obs.get_metrics()
    registry = MetricsRegistry()
    obs.set_metrics(registry)
    try:
        yield registry
    finally:
        obs.set_metrics(previous)


class TestRetriedJobsAreInvisible:
    def test_retried_similarity_is_bit_identical(
        self, model, other_model, fast_config, registry
    ):
        """A job that fails twice then succeeds returns exactly what an
        unfailed run returns: the resubmission reruns the pristine job
        with its original seed."""
        seed = 4242
        with ProtocolEngine(
            model, config=fast_config, workers=2, seed=SEED,
            policy=EnginePolicy(max_retries=3),
        ) as engine:
            engine.submit_similarity(
                other_model, seed=seed, inject_failures=2
            )
            report = engine.drain()
        (result,) = report.results
        assert result.ok
        assert result.attempts == 3
        reference = evaluate_similarity_private(
            model, other_model, config=fast_config, seed=seed
        )
        assert result.t_squared == reference.t_squared
        assert result.t == reference.t
        assert report.metrics.counter(
            "repro_engine_retries_total"
        ).total() == 2

    def test_retried_classification_keeps_derived_seed(
        self, model, fast_config
    ):
        """Without an explicit seed the retry must reuse the seed the
        job was *submitted* with, not derive a fresh one."""
        clean = self._one_classification(model, fast_config, failures=0)
        retried = self._one_classification(model, fast_config, failures=1)
        assert retried.label == clean.label
        assert retried.value == clean.value

    @staticmethod
    def _one_classification(model, fast_config, failures):
        with ProtocolEngine(
            model, config=fast_config, workers=1, seed=SEED,
            policy=EnginePolicy(max_retries=2),
        ) as engine:
            engine.submit_classification(
                [0.1, 0.2, 0.3], inject_failures=failures
            )
            (result,) = engine.drain().results
        assert result.ok
        return result


class TestExhaustedRetriesAreAttributable:
    def test_error_names_job_and_tag(self, model, other_model, fast_config):
        with ProtocolEngine(
            model, config=fast_config, workers=1, seed=SEED,
            policy=EnginePolicy(max_retries=1),
        ) as engine:
            engine.submit_similarity(
                other_model, inject_failures=5, tag="chunk-abc:R2"
            )
            (result,) = engine.drain().results
        assert not result.ok
        assert result.tag == "chunk-abc:R2"
        assert "job 0" in result.error
        assert "[chunk-abc:R2]" in result.error
        assert "after 2 attempts" in result.error

    def test_untagged_error_still_names_the_job(self, model, fast_config):
        with ProtocolEngine(
            model, config=fast_config, workers=1, seed=SEED,
            policy=EnginePolicy(max_retries=0),
        ) as engine:
            engine.submit_classification([0.1, 0.2, 0.3], inject_failures=5)
            (result,) = engine.drain().results
        assert not result.ok
        assert "job 0 failed after 1 attempts" in result.error


class TestSyncLifecycle:
    def test_sync_settles_waves_without_killing_the_fleet(
        self, model, other_model, fast_config
    ):
        seeds = [101, 102, 103]
        references = [
            evaluate_similarity_private(
                model, other_model, config=fast_config, seed=seed
            )
            for seed in seeds
        ]
        with ProtocolEngine(
            model, config=fast_config, workers=2, seed=SEED
        ) as engine:
            first = []
            for seed in seeds[:2]:
                engine.submit_similarity(other_model, seed=seed)
            first = engine.sync()
            assert engine.sync() == ()  # nothing newly in flight
            engine.submit_similarity(other_model, seed=seeds[2])
            second = engine.sync()
            report = engine.drain()
        assert [r.t_squared for r in first] == [
            ref.t_squared for ref in references[:2]
        ]
        assert [r.t_squared for r in second] == [references[2].t_squared]
        # Results settled by sync() are not re-reported by drain().
        assert report.results == ()

    def test_sync_retries_like_drain(self, model, fast_config):
        with ProtocolEngine(
            model, config=fast_config, workers=1, seed=SEED,
            policy=EnginePolicy(max_retries=2),
        ) as engine:
            engine.submit_classification([0.1, 0.2, 0.3], inject_failures=1)
            (result,) = engine.sync()
            engine.drain()
        assert result.ok
        assert result.attempts == 2


class TestKeyedModels:
    def test_left_key_selects_the_model(
        self, model, other_model, fast_config
    ):
        alt = make_linear_model([0.9, -1.1, 0.3], bias=-0.125)
        with ProtocolEngine(
            models={"a": model, "b": alt}, config=fast_config,
            workers=2, seed=SEED,
        ) as engine:
            engine.submit_similarity(other_model, seed=7, left_key="b")
            engine.submit_similarity(other_model, seed=7, left_key="a")
            results = engine.drain().results
        expected_b = evaluate_similarity_private(
            alt, other_model, config=fast_config, seed=7
        )
        expected_a = evaluate_similarity_private(
            model, other_model, config=fast_config, seed=7
        )
        assert results[0].t_squared == expected_b.t_squared
        assert results[1].t_squared == expected_a.t_squared

    def test_default_model_is_first_sorted_key(
        self, model, other_model, fast_config
    ):
        alt = make_linear_model([0.9, -1.1, 0.3], bias=-0.125)
        with ProtocolEngine(
            models={"z": alt, "a": model}, config=fast_config,
            workers=1, seed=SEED,
        ) as engine:
            engine.submit_similarity(other_model, seed=9)
            (result,) = engine.drain().results
        reference = evaluate_similarity_private(
            model, other_model, config=fast_config, seed=9
        )
        assert result.t_squared == reference.t_squared

    def test_unknown_left_key_fails_loud_with_known_keys(
        self, model, other_model, fast_config
    ):
        with ProtocolEngine(
            models={"a": model}, config=fast_config, workers=1, seed=SEED,
            policy=EnginePolicy(max_retries=0),
        ) as engine:
            engine.submit_similarity(other_model, left_key="missing")
            (result,) = engine.drain().results
        assert not result.ok
        assert "missing" in result.error
        assert "'a'" in result.error

    def test_engine_requires_some_model(self, fast_config):
        with pytest.raises(ValidationError, match="model"):
            ProtocolEngine(config=fast_config)
